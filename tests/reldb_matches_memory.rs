//! Cross-crate equivalence: the relational (SQL) implementations of
//! Algorithms 1–4 produce bit-for-bit the same results as the in-memory
//! matrix/BFS implementations, on non-trivial graphs.

use lsbp::prelude::*;
use lsbp_graph::generators::{dblp_like, erdos_renyi_gnm, kronecker_graph, DblpConfig};
use lsbp_reldb::sql::{belief_table_to_matrix, geodesic_table_to_vec};
use lsbp_reldb::SqlDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_labels(n: usize, k: usize, count: usize, seed: u64) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, k);
    let mut placed = 0;
    while placed < count {
        let v = rng.gen_range(0..n);
        if !e.is_explicit(v) {
            e.set_label(v, rng.gen_range(0..k), 1.0).unwrap();
            placed += 1;
        }
    }
    e
}

#[test]
fn linbp_on_kronecker() {
    let g = kronecker_graph(5);
    let n = g.num_nodes();
    let e = random_labels(n, 3, n / 20, 3);
    let h = CouplingMatrix::fig6b_residual().scale(0.002);
    let db = SqlDb::new(&g, &e, &h);
    for echo in [true, false] {
        let sql_b = db.linbp(5, echo);
        let opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let native = if echo {
            linbp(&g.adjacency(), &e, &h, &opts).unwrap()
        } else {
            linbp_star(&g.adjacency(), &e, &h, &opts).unwrap()
        };
        assert!(
            sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12,
            "echo = {echo}"
        );
    }
}

#[test]
fn sbp_on_dblp_like() {
    let net = dblp_like(&DblpConfig::tiny(), 7);
    let n = net.graph.num_nodes();
    let e = random_labels(n, 4, n / 10, 9);
    let ho = CouplingMatrix::fig11a_residual();
    let db = SqlDb::new(&net.graph, &e, &ho);
    let state = db.sbp();
    let native = sbp(&net.graph.adjacency(), &e, &ho).unwrap();
    let sql_b = belief_table_to_matrix(&state.b, n, 4);
    assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-10);
    assert_eq!(geodesic_table_to_vec(&state.g, n), native.geodesics.g);
}

/// Multi-batch incremental beliefs: three successive Algorithm 3 batches,
/// checked against both the native incremental and from-scratch runs.
#[test]
fn multi_batch_add_explicit() {
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let g = erdos_renyi_gnm(80, 200, 17);
    let adj = g.adjacency();
    let base = random_labels(80, 3, 4, 0);
    let mut db = SqlDb::new(&g, &base, &ho);
    let mut state = db.sbp();
    let mut native_state = sbp(&adj, &base, &ho).unwrap();
    let mut all = base.clone();
    for batch in 1..=3u64 {
        let mut delta = ExplicitBeliefs::new(80, 3);
        let mut rng = StdRng::seed_from_u64(batch);
        for _ in 0..3 {
            let v = rng.gen_range(0..80);
            let c = rng.gen_range(0..3);
            delta.set_label(v, c, 1.0).unwrap();
            all.set_label(v, c, 1.0).unwrap();
        }
        db.sbp_add_explicit(&mut state, &delta);
        native_state = sbp_add_explicit(&adj, &ho, &native_state, &delta).unwrap();
    }
    let scratch = sbp(&adj, &all, &ho).unwrap();
    let sql_b = belief_table_to_matrix(&state.b, 80, 3);
    assert!(sql_b.residual().max_abs_diff(scratch.beliefs.residual()) < 1e-10);
    assert!(
        native_state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-10
    );
    assert_eq!(geodesic_table_to_vec(&state.g, 80), scratch.geodesics.g);
    assert_eq!(native_state.geodesics.g, scratch.geodesics.g);
}

/// Multi-batch incremental edges, SQL and native against from-scratch.
#[test]
fn multi_batch_add_edges() {
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let full = erdos_renyi_gnm(60, 180, 23);
    let (base, extra) = full.split_edges(140);
    let extra_edges: Vec<_> = extra.edges().collect();
    let e = random_labels(60, 3, 5, 4);

    let mut db = SqlDb::new(&base, &e, &ho);
    let mut state = db.sbp();
    let mut native_state = sbp(&base.adjacency(), &e, &ho).unwrap();

    // Apply in two batches of 20.
    let mut grown = base.clone();
    for chunk in extra_edges.chunks(20) {
        for &(s, t, w) in chunk {
            grown.add_edge(s, t, w);
        }
        let adj_now = grown.adjacency();
        db.sbp_add_edges(&mut state, chunk);
        native_state = sbp_add_edges(&adj_now, chunk, &ho, &native_state).unwrap();
    }
    let scratch = sbp(&full.adjacency(), &e, &ho).unwrap();
    let sql_b = belief_table_to_matrix(&state.b, 60, 3);
    assert!(sql_b.residual().max_abs_diff(scratch.beliefs.residual()) < 1e-10);
    assert!(
        native_state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-10
    );
    assert_eq!(geodesic_table_to_vec(&state.g, 60), scratch.geodesics.g);
}

/// Weighted graphs through the relational path.
#[test]
fn weighted_sql_equivalence() {
    let mut g = lsbp_graph::Graph::new(12);
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..25 {
        let s = rng.gen_range(0..12);
        let t = rng.gen_range(0..12);
        if s != t {
            g.add_edge(s, t, rng.gen_range(1..5) as f64 * 0.5);
        }
    }
    let e = random_labels(12, 3, 3, 5);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let db = SqlDb::new(&g, &e, &h);
    let sql_b = db.linbp(5, true);
    let native = linbp(
        &g.adjacency(),
        &e,
        &h,
        &LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12);

    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let db2 = SqlDb::new(&g, &e, &ho);
    let state = db2.sbp();
    let native_sbp = sbp(&g.adjacency(), &e, &ho).unwrap();
    let sql_sbp = belief_table_to_matrix(&state.b, 12, 3);
    assert!(
        sql_sbp
            .residual()
            .max_abs_diff(native_sbp.beliefs.residual())
            < 1e-12
    );
}

//! Golden-value tests for the paper's worked examples: the exact numbers
//! a reader can check against the text.
//!
//! * the Fig. 5c 8-node torus of Example 20 (structure, spectrum,
//!   geodesics),
//! * the Fig. 1c coupling matrix after centering (`Ĥ = H − 1/k`) and
//!   εH-scaling (Definition 3 / Sect. 6.2),
//! * LinBP run iteratively (Eq. 6/7) against the Proposition 7 closed
//!   form, agreeing to 1e-10.

use lsbp::prelude::*;
use lsbp_graph::generators::{fig5c_torus, grid_2d, TORUS_EXPLICIT_NODES, TORUS_V4};
use lsbp_graph::geodesic_numbers;

/// Example 20 / Fig. 5c: the torus is the corona of C4 — an inner 4-cycle
/// with one pendant per inner node. Checked entry by entry.
#[test]
fn torus_golden_structure() {
    let g = fig5c_torus();
    assert_eq!(g.num_nodes(), 8);
    assert_eq!(g.num_edges(), 8);
    let adj = g.adjacency();

    // Degree sequence: pendants v1..v4 have degree 1, inner v5..v8 degree 3.
    let degrees: Vec<usize> = (0..8).map(|v| adj.row_nnz(v)).collect();
    assert_eq!(degrees, vec![1, 1, 1, 1, 3, 3, 3, 3]);

    // Exact edge set (0-based; paper's v{i} is node i−1).
    let expected_edges = [
        (4, 5),
        (5, 6),
        (6, 7),
        (4, 7), // inner cycle v5–v6–v7–v8
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7), // pendants v1→v5 … v4→v8
    ];
    for &(s, t) in &expected_edges {
        assert_eq!(adj.get(s, t), 1.0, "missing edge ({s}, {t})");
        assert_eq!(adj.get(t, s), 1.0, "missing edge ({t}, {s})");
    }
    // No extra entries: 8 undirected edges = 16 stored values, all 1.0.
    assert_eq!(adj.nnz(), 16);
    assert!(adj.is_symmetric(0.0));

    // ρ(A) = 1 + √2 exactly for the corona of C4 ("ρ(A) ≈ 2.414").
    assert!((adj.spectral_radius() - (1.0 + 2.0f64.sqrt())).abs() < 1e-7);
}

/// Example 20's geodesic numbers from the explicit set {v1, v2, v3}:
/// the explicit nodes at 0, their inner neighbours v5/v6/v7 at 1, v8 at 2
/// and v4 at 3.
#[test]
fn torus_golden_geodesics() {
    let adj = fig5c_torus().adjacency();
    let geo = geodesic_numbers(&adj, &TORUS_EXPLICIT_NODES);
    assert_eq!(geo.g, vec![0, 0, 0, 3, 1, 1, 1, 2]);
    assert_eq!(geo.geodesic(TORUS_V4), Some(3));
}

/// Fig. 1c after centering: `Ĥ = H − 1/3`, entry by entry, and the
/// residual is symmetric with all rows/columns summing to 0.
#[test]
fn fig1c_centering_golden() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let h = coupling.residual();
    let third = 1.0 / 3.0;
    let expected = [
        [0.6 - third, 0.3 - third, 0.1 - third],
        [0.3 - third, 0.0 - third, 0.7 - third],
        [0.1 - third, 0.7 - third, 0.2 - third],
    ];
    for r in 0..3 {
        for c in 0..3 {
            assert!(
                (h[(r, c)] - expected[r][c]).abs() < 1e-15,
                "Ĥ[({r},{c})] = {} expected {}",
                h[(r, c)],
                expected[r][c]
            );
            assert_eq!(h[(r, c)], h[(c, r)], "residual must stay symmetric");
        }
        let row_sum: f64 = h.row(r).iter().sum();
        assert!(row_sum.abs() < 1e-15, "row {r} sums to {row_sum}");
        let col_sum: f64 = (0..3).map(|i| h[(i, r)]).sum();
        assert!(col_sum.abs() < 1e-15, "col {r} sums to {col_sum}");
    }
}

/// εH-scaling: `scaled_residual(ε) = ε·Ĥ` exactly, `scaled_residual(1) = Ĥ`,
/// and `raw_at_scale(ε) = 1/k + ε·Ĥ` recovers a positive matrix for every
/// ε below `max_positive_eps` (= 1 for Fig. 1c, from its 0.0 entry).
#[test]
fn fig1c_scaling_golden() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let h = coupling.residual();
    for eps in [0.01, 0.1, 0.5] {
        let scaled = coupling.scaled_residual(eps);
        let raw = coupling.raw_at_scale(eps);
        for r in 0..3 {
            for c in 0..3 {
                assert!((scaled[(r, c)] - eps * h[(r, c)]).abs() < 1e-15);
                assert!((raw[(r, c)] - (1.0 / 3.0 + eps * h[(r, c)])).abs() < 1e-15);
                assert!(raw[(r, c)] > 0.0, "raw coupling must stay positive");
            }
        }
    }
    assert!((coupling.max_positive_eps() - 1.0).abs() < 1e-12);
    assert!(
        coupling
            .scaled_residual(1.0)
            .max_abs_diff(&coupling.residual())
            .abs()
            < 1e-15
    );
}

/// Proposition 7: the iterative LinBP fixpoint equals the closed form
/// `vec(B̂) = (I − Ĥ⊗A + Ĥ²⊗D)⁻¹ vec(Ê)` to 1e-10, on the torus and on a
/// 3×3 grid, for both the dense-LU and the matrix-free Jacobi solver.
#[test]
fn linbp_iterative_matches_proposition7() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let cases: [(lsbp_graph::Graph, &[(usize, usize)]); 2] = [
        (fig5c_torus(), &[(0, 0), (1, 1), (2, 2)]),
        (grid_2d(3, 3), &[(0, 0), (8, 1), (4, 2)]),
    ];
    for (graph, labels) in cases {
        let n = graph.num_nodes();
        let adj = graph.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        for &(v, c) in labels {
            e.set_label(v, c, 1.0).unwrap();
        }
        let h = coupling.scaled_residual(0.1);
        let opts = LinBpOptions {
            max_iter: 100_000,
            tol: 1e-15,
            ..Default::default()
        };

        let iterative = linbp(&adj, &e, &h, &opts).unwrap();
        assert!(iterative.converged);
        let dense = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
        let jacobi = linbp_closed_form_jacobi(&adj, &e, &h, true, &opts).unwrap();
        assert!(
            iterative.beliefs.residual().max_abs_diff(dense.residual()) < 1e-10,
            "iterative vs dense closed form (n = {n})"
        );
        assert!(
            iterative.beliefs.residual().max_abs_diff(jacobi.residual()) < 1e-10,
            "iterative vs Jacobi closed form (n = {n})"
        );

        // Same statement for LinBP* (echo cancellation off in Eq. 4).
        let iterative_star = linbp_star(&adj, &e, &h, &opts).unwrap();
        assert!(iterative_star.converged);
        let dense_star = linbp_closed_form_dense(&adj, &e, &h, false).unwrap();
        assert!(
            iterative_star
                .beliefs
                .residual()
                .max_abs_diff(dense_star.residual())
                < 1e-10,
            "LinBP* iterative vs closed form (n = {n})"
        );
    }
}

/// The closed form reproduces the centering invariant: every belief row of
/// the Proposition 7 solution sums to 0 (Lemma 5 in the paper's framing).
#[test]
fn closed_form_rows_stay_centered() {
    let adj = fig5c_torus().adjacency();
    let mut e = ExplicitBeliefs::new(8, 3);
    for &(v, c) in &[(0usize, 0usize), (1, 1), (2, 2)] {
        e.set_label(v, c, 1.0).unwrap();
    }
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.2);
    let b = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
    for v in 0..8 {
        let s: f64 = b.row(v).iter().sum();
        assert!(s.abs() < 1e-10, "row {v} sums to {s}");
    }
}

/// Example 20's belief propagation read-out on the torus: v1, v2, v3 keep
/// their own labels and v4 follows the class-2 attraction documented in
/// the paper's Fig. 4 discussion (SBP standardized ≈ [−0.069, 1.258,
/// −1.189] ⇒ top class 1 in 0-based ids).
#[test]
fn torus_top_belief_readout() {
    let graph = fig5c_torus();
    let mut e = ExplicitBeliefs::new(8, 3);
    e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
    e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let r = sbp(&graph.adjacency(), &e, &coupling.residual()).unwrap();
    let labels = r.beliefs.top_belief_assignment(1e-9);
    assert_eq!(labels[0], vec![0]);
    assert_eq!(labels[1], vec![1]);
    assert_eq!(labels[2], vec![2]);
    assert_eq!(labels[TORUS_V4], vec![1]);
}

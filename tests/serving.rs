//! End-to-end tests of the serving layer: a real `lsbp-server` core
//! behind a real TCP socket, exercised by `lsbp-client` connections.
//!
//! The central claim under test is **bitwise identity**: whatever the
//! server does — solo solve, admission-coalesced batch, cache hit, or
//! edge-delta patch — every belief vector it returns is bit-for-bit the
//! one the `lsbp` library produces for the same query.

use lsbp::prelude::*;
use lsbp_client::{Client, ClientConfig, ClientError, RetryPolicy, RetryingClient};
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use lsbp_net::{
    ErrorCode, LinBpParams, Request, RequestEnvelope, Response, ResponseEnvelope, RwrParams,
    ServedVia, WireEdge, WireNorm, WireSeed, PROTOCOL_VERSION,
};
use lsbp_server::{serve, DegradationPolicy, ServerConfig, ServerCore};
use lsbp_sparse::CsrMatrix;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

const K: usize = 3;

/// Binds an ephemeral port and serves `core` from a background thread.
/// The server thread exits when a client requests shutdown.
fn spawn_server(config: ServerConfig) -> (SocketAddr, Arc<ServerCore>, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let core = Arc::new(ServerCore::new(config));
    let serve_core = Arc::clone(&core);
    let handle = thread::spawn(move || serve(listener, &serve_core).expect("serve"));
    (addr, core, handle)
}

fn fixture_edges() -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(usize, usize, f64)> = (0..10).map(|i| (i, (i + 1) % 10, 1.0)).collect();
    edges.extend_from_slice(&[(0, 5, 0.5), (2, 7, 1.25), (3, 8, 0.75)]);
    edges
}

fn fixture_adjacency() -> CsrMatrix {
    let mut g = Graph::new(10);
    for (s, t, w) in fixture_edges() {
        g.add_edge(s, t, w);
    }
    g.adjacency()
}

fn wire_edges() -> Vec<WireEdge> {
    fixture_edges()
        .into_iter()
        .map(|(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect()
}

fn coupling() -> Mat {
    CouplingMatrix::fig1c().unwrap().scaled_residual(0.05)
}

fn wire_params(h: &Mat) -> LinBpParams {
    LinBpParams {
        echo: true,
        k: K as u32,
        h_residual: h.as_slice().to_vec(),
        max_iter: 300,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
    }
}

fn lib_opts() -> LinBpOptions {
    LinBpOptions {
        max_iter: 300,
        tol: 1e-12,
        norm: ToleranceNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
        parallelism: ParallelismConfig::from_env(),
    }
}

/// One seeded node per class; `scale` stretches the residual magnitudes
/// (larger seeds take more iterations to converge under an absolute tol).
fn seed_rows(shift: usize, scale: f64) -> Vec<(usize, [f64; K])> {
    vec![
        (shift % 10, [2.0 * scale, -scale, -scale]),
        ((3 + shift) % 10, [-scale, 2.0 * scale, -scale]),
        ((6 + shift) % 10, [-scale, -scale, 2.0 * scale]),
    ]
}

fn wire_seeds(shift: usize, scale: f64) -> Vec<WireSeed> {
    seed_rows(shift, scale)
        .into_iter()
        .map(|(node, row)| WireSeed {
            node: node as u64,
            residual: row.to_vec(),
        })
        .collect()
}

fn lib_seeds(shift: usize, scale: f64) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(10, K);
    for (node, row) in seed_rows(shift, scale) {
        e.set_residual(node, &row).unwrap();
    }
    e
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: belief mismatch at flat index {i}: {g:e} vs {w:e}"
        );
    }
}

/// k concurrent clients against the same graph and parameters: the server
/// coalesces them into one stacked solve, and every answer is bitwise the
/// per-query library solve.
#[test]
fn coalesced_queries_are_bitwise_identical_to_solo_solves() {
    let config = ServerConfig {
        // A wide window so all clients land in one admission batch
        // regardless of scheduling jitter.
        coalesce_window: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, core, handle) = spawn_server(config);
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(1, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let queries = 8;
    let barrier = Barrier::new(queries);
    let payloads: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..queries)
            .map(|q| {
                let (barrier, h) = (&barrier, &h);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    barrier.wait();
                    c.solve_linbp(1, wire_params(h), wire_seeds(q, 1.0))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let adj = fixture_adjacency();
    let opts = lib_opts();
    let mut coalesced = 0;
    for (q, payload) in payloads.iter().enumerate() {
        let reference = linbp(&adj, &lib_seeds(q, 1.0), &h, &opts).unwrap();
        assert!(payload.converged && reference.converged);
        assert_eq!(payload.iterations, reference.iterations as u64);
        assert_bitwise(
            &format!("query {q}"),
            &payload.beliefs,
            reference.beliefs.residual().as_slice(),
        );
        if matches!(payload.served, ServedVia::Coalesced { .. }) {
            coalesced += 1;
        }
    }
    // With a 150 ms window and a start barrier, the queries must have
    // actually shared batches — the bitwise check above is what proves
    // sharing is safe.
    assert!(
        coalesced >= 2,
        "expected admission coalescing to engage, served: {:?}",
        payloads.iter().map(|p| p.served).collect::<Vec<_>>()
    );
    let stats = core.stats();
    assert!(stats.coalesced_batches >= 1);
    assert!(stats.largest_batch >= 2);
    // Stacking q queries costs max(iters) SpMM passes, not Σ iters.
    assert!(stats.spmm_passes < stats.spmm_passes_sequential_equiv);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Queries whose convergence points differ by orders of magnitude still
/// coalesce safely: per-query freeze masks keep each answer identical to
/// its solo solve even though the batch runs to the slowest query's
/// iteration count.
#[test]
fn mixed_convergence_batch_matches_per_query_solves() {
    let config = ServerConfig {
        coalesce_window: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, _core, handle) = spawn_server(config);
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(7, 10, true, wire_edges()).unwrap();

    let h = coupling();
    // Same params (so the queries group), wildly different seed scales
    // (so their convergence iterations differ under the absolute tol).
    let scales = [1.0, 1e8];
    let barrier = Barrier::new(scales.len());
    let payloads: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = scales
            .iter()
            .map(|&scale| {
                let (barrier, h) = (&barrier, &h);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    barrier.wait();
                    c.solve_linbp(7, wire_params(h), wire_seeds(0, scale))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let adj = fixture_adjacency();
    let opts = lib_opts();
    for (payload, &scale) in payloads.iter().zip(&scales) {
        let reference = linbp(&adj, &lib_seeds(0, scale), &h, &opts).unwrap();
        assert!(payload.converged && reference.converged);
        assert_eq!(
            payload.iterations, reference.iterations as u64,
            "scale {scale}: freeze mask must preserve the solo iteration count"
        );
        assert_bitwise(
            &format!("scale {scale}"),
            &payload.beliefs,
            reference.beliefs.residual().as_slice(),
        );
    }
    // The point of the fixture: the two queries converge at genuinely
    // different iterations.
    assert_ne!(payloads[0].iterations, payloads[1].iterations);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A full admission queue rejects further queries with `Overloaded`
/// instead of buffering without bound.
#[test]
fn admission_backpressure_rejects_with_overloaded() {
    // No TCP needed: drive the core directly so the queue can be held
    // full (the long window keeps parked jobs parked).
    let core = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_secs(30),
        max_batch: 64,
        max_pending: 2,
        ..ServerConfig::default()
    });
    let register = Request::RegisterGraph {
        graph_id: 1,
        n_nodes: 10,
        symmetric: true,
        edges: wire_edges(),
    };
    assert!(matches!(
        core.handle_blocking(register),
        Response::Registered { .. }
    ));

    let h = coupling();
    let (tx, rx) = mpsc::channel();
    for q in 0..3 {
        let tx = tx.clone();
        core.submit(
            Request::SolveLinBp {
                graph_id: 1,
                params: wire_params(&h),
                seeds: wire_seeds(q, 1.0),
            },
            Box::new(move |r| drop(tx.send((q, r)))),
        );
    }
    // Only the third query (queue already holds max_pending = 2) answers
    // immediately — with Overloaded.
    let (q, response) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(q, 2);
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Dropping the core force-drains the two parked queries; their
    // responders must still fire (with real results).
    drop(core);
    for _ in 0..2 {
        let (_, response) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(response, Response::Beliefs(_)));
    }
}

/// Cache behavior across an edge delta: repeat queries hit the cache,
/// the delta patches (not invalidates) LinBP entries, and the patched
/// entry is bitwise the library patch path.
#[test]
fn edge_delta_patches_cache_bitwise() {
    let (addr, core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(3, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let first = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(first.served, ServedVia::Solo);

    let again = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(again.served, ServedVia::Cache);
    assert_bitwise("cache hit", &again.beliefs, &first.beliefs);
    assert_eq!(core.stats().cache_hits, 1);

    let raw_deltas = [(1usize, 2usize, 0.5), (0, 4, 0.75)];
    let deltas: Vec<WireEdge> = raw_deltas
        .iter()
        .map(|&(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect();
    let (version, patched, invalidated) = client.edge_delta(3, true, deltas).unwrap();
    assert_eq!(version, 2);
    assert_eq!(patched, 1, "the cached LinBP entry must be patched forward");
    assert_eq!(invalidated, 0);

    let requeried = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(requeried.served, ServedVia::CachePatched);

    // Library patch path on the same inputs.
    let adj = fixture_adjacency();
    let mut both_dirs = Vec::new();
    for &(s, t, w) in &raw_deltas {
        both_dirs.push((s, t, w));
        both_dirs.push((t, s, w));
    }
    let new_adj = adj.try_with_edge_deltas(&both_dirs).unwrap();
    let previous = BeliefMatrix::from_mat(Mat::from_vec(10, K, first.beliefs.clone()));
    let seed = linbp_edge_delta_seed(&adj, &both_dirs, &previous, &h, true).unwrap();
    let patched_ref = linbp_update(&new_adj, &previous, &seed, &h, &lib_opts(), true).unwrap();
    assert_bitwise(
        "patched entry",
        &requeried.beliefs,
        patched_ref.beliefs.residual().as_slice(),
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Hostile or invalid inputs come back as typed errors — never panics,
/// never poisoned batches.
#[test]
fn invalid_requests_get_typed_errors() {
    let (addr, _core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    fn expect_err<T: std::fmt::Debug>(r: Result<T, ClientError>, want: ErrorCode, label: &str) {
        match r {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, want, "{label}"),
            other => panic!("{label}: expected {want:?}, got {other:?}"),
        }
    }

    let h = coupling();
    // Unknown graph.
    expect_err(
        client.solve_linbp(99, wire_params(&h), wire_seeds(0, 1.0)),
        ErrorCode::UnknownGraph,
        "unknown graph",
    );
    client.register_graph(1, 10, true, wire_edges()).unwrap();
    // Duplicate registration.
    expect_err(
        client.register_graph(1, 10, true, wire_edges()),
        ErrorCode::GraphAlreadyRegistered,
        "duplicate register",
    );
    // k = 1 would panic ExplicitBeliefs::new if it reached the solver.
    let mut bad = wire_params(&h);
    bad.k = 1;
    bad.h_residual = vec![0.0];
    expect_err(
        client.solve_linbp(1, bad, vec![]),
        ErrorCode::BadRequest,
        "k too small",
    );
    // Seed node out of range (CooMatrix/ExplicitBeliefs would panic).
    expect_err(
        client.solve_linbp(
            1,
            wire_params(&h),
            vec![WireSeed {
                node: 10,
                residual: vec![2.0, -1.0, -1.0],
            }],
        ),
        ErrorCode::BadRequest,
        "seed out of range",
    );
    // Non-centered seed row.
    expect_err(
        client.solve_linbp(
            1,
            wire_params(&h),
            vec![WireSeed {
                node: 0,
                residual: vec![1.0, 1.0, 1.0],
            }],
        ),
        ErrorCode::BadRequest,
        "uncentered seed",
    );
    // Edge delta out of bounds.
    expect_err(
        client.edge_delta(
            1,
            true,
            vec![WireEdge {
                src: 0,
                dst: 99,
                weight: 1.0,
            }],
        ),
        ErrorCode::BadRequest,
        "delta out of bounds",
    );
    // A malformed frame (bogus request tag inside a valid envelope) gets
    // a typed error too — on a raw socket, below the typed client. The
    // error envelope must echo the salvaged correlation id.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut bogus = 0xDEAD_BEEFu64.to_le_bytes().to_vec(); // request id
    bogus.push(0); // no deadline
    bogus.extend_from_slice(&[0xFF, 0xFF]); // unknown request tag
    lsbp_net::write_frame(&mut raw, &bogus).unwrap();
    let payload = lsbp_net::read_frame(&mut raw)
        .unwrap()
        .expect("server must answer before closing");
    let envelope = ResponseEnvelope::decode(&payload).unwrap();
    assert_eq!(envelope.request_id, 0xDEAD_BEEF);
    match envelope.response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest for bogus tag, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// Fault tolerance: deadlines, panic isolation, slow writers, retries,
// degradation. (The seeded fault-injection storm lives in tests/chaos.rs.)
// ---------------------------------------------------------------------------

/// A request whose deadline expires while parked in the admission queue
/// is answered with `DeadlineExceeded` at drain time — without burning a
/// solve slot and without touching its batch-mates.
#[test]
fn deadline_expired_while_parked_is_answered_typed() {
    let core = ServerCore::new(ServerConfig {
        // A window long enough that drain is triggered by batch-full, so
        // the expiry happens strictly while parked.
        coalesce_window: Duration::from_secs(10),
        max_batch: 2,
        ..ServerConfig::default()
    });
    assert!(matches!(
        core.handle_blocking(Request::RegisterGraph {
            graph_id: 1,
            n_nodes: 10,
            symmetric: true,
            edges: wire_edges(),
        }),
        Response::Registered { .. }
    ));

    let h = coupling();
    let (tx, rx) = mpsc::channel();
    let tx1 = tx.clone();
    core.submit_at(
        Request::SolveLinBp {
            graph_id: 1,
            params: wire_params(&h),
            seeds: wire_seeds(0, 1.0),
        },
        Some(Instant::now() + Duration::from_millis(50)),
        Box::new(move |r| drop(tx1.send((0, r)))),
    );
    thread::sleep(Duration::from_millis(120)); // let the budget lapse
    core.submit_at(
        Request::SolveLinBp {
            graph_id: 1,
            params: wire_params(&h),
            seeds: wire_seeds(1, 1.0),
        },
        None,
        Box::new(move |r| drop(tx.send((1, r)))),
    );

    let mut responses = std::collections::HashMap::new();
    for _ in 0..2 {
        let (q, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        responses.insert(q, r);
    }
    match &responses[&0] {
        Response::Error {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*code, ErrorCode::DeadlineExceeded);
            assert!(retry_after_ms.is_some(), "deadline errors carry a hint");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    match &responses[&1] {
        Response::Beliefs(payload) => {
            let reference =
                linbp(&fixture_adjacency(), &lib_seeds(1, 1.0), &h, &lib_opts()).unwrap();
            assert_bitwise(
                "batch-mate of expired job",
                &payload.beliefs,
                reference.beliefs.residual().as_slice(),
            );
        }
        other => panic!("expected Beliefs, got {other:?}"),
    }
    let stats = core.stats();
    assert_eq!(stats.rejected_deadline, 1);
}

/// An already-expired deadline is rejected at admission, straight off the
/// wire, and the connection remains usable.
#[test]
fn expired_deadline_is_rejected_at_admission() {
    let (addr, core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(1, 10, true, wire_edges()).unwrap();

    let h = coupling();
    client.set_deadline_ms(Some(0));
    match client.solve_linbp(1, wire_params(&h), wire_seeds(0, 1.0)) {
        Err(ClientError::Server {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, ErrorCode::DeadlineExceeded);
            assert!(retry_after_ms.is_some());
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Same connection, budget cleared: everything still works.
    client.set_deadline_ms(None);
    let payload = client
        .solve_linbp(1, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    let reference = linbp(&fixture_adjacency(), &lib_seeds(0, 1.0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "post-deadline solve",
        &payload.beliefs,
        reference.beliefs.residual().as_slice(),
    );
    assert_eq!(core.stats().rejected_deadline, 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A panic inside a solve answers that batch with `Internal` and leaves
/// the server fully operational: same connection, other graphs, registry
/// and cache all intact.
#[test]
fn panicking_solve_is_isolated_from_the_event_loop() {
    let (addr, core, handle) = spawn_server(ServerConfig {
        // Fault-injection hook: graph 13 panics inside the solver.
        panic_on_graph: Some(13),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(13, 10, true, wire_edges()).unwrap();
    client.register_graph(14, 10, true, wire_edges()).unwrap();

    let h = coupling();
    match client.solve_linbp(13, wire_params(&h), wire_seeds(0, 1.0)) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("panic"), "message was: {message}");
        }
        other => panic!("expected Internal from panicking solve, got {other:?}"),
    }

    // The same connection survived the panic, and an unrelated graph
    // solves bitwise-clean.
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
    let payload = client
        .solve_linbp(14, wire_params(&h), wire_seeds(2, 1.0))
        .unwrap();
    let reference = linbp(&fixture_adjacency(), &lib_seeds(2, 1.0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "solve after panic",
        &payload.beliefs,
        reference.beliefs.residual().as_slice(),
    );
    let health = client.health().unwrap();
    assert_eq!(health.graphs, 2, "registry intact after panic");
    assert_eq!(core.stats().panics_caught, 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A peer that requests a pile of large responses and never reads them
/// is evicted once its buffered response bytes exceed `max_write_buf` —
/// while a well-behaved client on the same server is answered bitwise.
#[test]
fn slow_writer_is_evicted_without_harming_others() {
    // Large enough that one belief payload (n·k·8 ≈ 2.4 MB) cannot hide
    // in kernel socket buffers — the server's own write buffer must hold
    // the bytes, which is what the bound evicts on.
    let n: usize = 100_000;
    let (addr, _core, handle) = spawn_server(ServerConfig {
        // One belief payload for the big ring is ~2.4 MB, far past this.
        max_write_buf: 64 * 1024,
        write_stall_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    let ring: Vec<WireEdge> = (0..n)
        .map(|i| WireEdge {
            src: i as u64,
            dst: ((i + 1) % n) as u64,
            weight: 1.0,
        })
        .collect();
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(42, n as u64, true, ring).unwrap();

    let h = coupling();
    let seeds = vec![
        WireSeed {
            node: 0,
            residual: vec![2.0, -1.0, -1.0],
        },
        WireSeed {
            node: (n / 2) as u64,
            residual: vec![-1.0, 2.0, -1.0],
        },
    ];
    let solve = Request::SolveLinBp {
        graph_id: 42,
        params: wire_params(&h),
        seeds: seeds.clone(),
    };

    // The slow writer: pipeline eight large solves, read nothing.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    for rid in 1..=8u64 {
        let payload = RequestEnvelope::new(rid, solve.clone()).encode();
        slow.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        slow.write_all(&payload).unwrap();
    }

    // Meanwhile a well-behaved client gets its (identical) answer.
    let payload = client.solve_linbp(42, wire_params(&h), seeds).unwrap();
    let mut ring_graph = Graph::new(n);
    for i in 0..n {
        ring_graph.add_edge(i, (i + 1) % n, 1.0);
    }
    let mut explicit = ExplicitBeliefs::new(n, K);
    explicit.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    explicit.set_residual(n / 2, &[-1.0, 2.0, -1.0]).unwrap();
    let reference = linbp(&ring_graph.adjacency(), &explicit, &h, &lib_opts()).unwrap();
    assert_bitwise(
        "well-behaved client during slow-writer abuse",
        &payload.beliefs,
        reference.beliefs.residual().as_slice(),
    );

    // The slow writer must be evicted (EOF or reset), not served forever
    // from an unbounded buffer. Drain with a timeout so a regression
    // fails fast instead of hanging.
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let mut sink = vec![0u8; 64 * 1024];
    loop {
        match slow.read(&mut sink) {
            Ok(0) => break, // clean close
            Ok(_) => {}     // residual buffered bytes
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                break
            }
            Err(e) => panic!("expected eviction, got {e}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "slow writer was never evicted"
        );
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Under real overload (full admission group), a `RetryingClient`
/// backs off per the server's hint and recovers the answer — bitwise.
#[test]
fn retrying_client_recovers_from_overload() {
    let (addr, core, handle) = spawn_server(ServerConfig {
        coalesce_window: Duration::from_millis(150),
        max_pending: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(5, 10, true, wire_edges()).unwrap();

    let h = coupling();
    // Occupier: parks one job, filling the group (max_pending = 1).
    let occupier = {
        let h = h.clone();
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.solve_linbp(5, wire_params(&h), wire_seeds(3, 1.0))
                .unwrap()
        })
    };
    thread::sleep(Duration::from_millis(30)); // let the occupier park

    let mut retrying = RetryingClient::new(
        addr.to_string(),
        ClientConfig::default(),
        RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(30),
            max_delay: Duration::from_millis(500),
            seed: 7,
        },
    );
    let payload = retrying
        .solve_linbp(5, wire_params(&h), &wire_seeds(4, 1.0))
        .expect("retry policy must recover the answer");
    let reference = linbp(&fixture_adjacency(), &lib_seeds(4, 1.0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "retried solve",
        &payload.beliefs,
        reference.beliefs.residual().as_slice(),
    );
    occupier.join().unwrap();
    assert!(
        core.stats().rejected_overloaded >= 1,
        "the test must have exercised a real rejection"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// `Health` answers instantly with liveness numbers, and every rejection
/// path increments its typed counter.
#[test]
fn health_ping_and_rejection_counters() {
    let (addr, core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let health = client.health().unwrap();
    assert_eq!(health.protocol_version, PROTOCOL_VERSION);
    assert_eq!(health.graphs, 0);
    assert_eq!(health.queue_depth, 0);

    client.register_graph(1, 10, true, wire_edges()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.graphs, 1);

    let h = coupling();
    // Two invalid requests: unknown graph, then malformed params.
    let _ = client.solve_linbp(99, wire_params(&h), wire_seeds(0, 1.0));
    let mut bad = wire_params(&h);
    bad.k = 1;
    bad.h_residual = vec![0.0];
    let _ = client.solve_linbp(1, bad, vec![]);
    let stats = core.stats();
    assert_eq!(stats.rejected_invalid, 2);
    assert_eq!(stats.rejected_overloaded, 0);
    assert_eq!(stats.rejected_deadline, 0);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite regression: a frame header claiming an absurd length is
/// rejected with a clean typed error the moment the 4th header byte
/// arrives — even dribbled one byte at a time — and a partial header
/// followed by silence never wedges the accept loop.
#[test]
fn oversized_header_dribble_gets_clean_bad_request() {
    let (addr, _core, handle) = spawn_server(ServerConfig::default());

    // Dribble a 1 GiB claim one byte at a time.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_nodelay(true).unwrap();
    for byte in (1u32 << 30).to_le_bytes() {
        raw.write_all(&[byte]).unwrap();
        thread::sleep(Duration::from_millis(5));
    }
    let payload = lsbp_net::read_frame(&mut raw)
        .unwrap()
        .expect("server must answer the oversize claim before closing");
    let envelope = ResponseEnvelope::decode(&payload).unwrap();
    match envelope.response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest for oversized claim, got {other:?}"),
    }
    // And the connection is then closed, not left buffering.
    assert!(lsbp_net::read_frame(&mut raw).unwrap().is_none());

    // A half-header that goes silent: drop it and make sure the server
    // still serves everyone else.
    let mut stall = TcpStream::connect(addr).unwrap();
    stall.write_all(&[0x10, 0x00]).unwrap();
    drop(stall);

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Opt-in `StaleCache` degradation: when the admission group is full, a
/// query whose exact answer exists for an **older** graph version is
/// served that answer, labelled `ServedVia::Stale`, instead of being
/// rejected.
#[test]
fn stale_cache_degradation_serves_old_version_when_overloaded() {
    let core = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_millis(200),
        max_pending: 1,
        degradation: DegradationPolicy::StaleCache,
        ..ServerConfig::default()
    });
    assert!(matches!(
        core.handle_blocking(Request::RegisterGraph {
            graph_id: 9,
            n_nodes: 10,
            symmetric: true,
            edges: wire_edges(),
        }),
        Response::Registered { .. }
    ));

    let rwr_params = RwrParams {
        k: K as u32,
        restart: 0.15,
        max_iter: 300,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
    };
    let rwr_query = |seeds| Request::SolveRwr {
        graph_id: 9,
        params: rwr_params,
        seeds,
    };
    // Populate the cache at v1 (blocks for one coalesce window).
    let v1 = match core.handle_blocking(rwr_query(wire_seeds(0, 1.0))) {
        Response::Beliefs(p) => p,
        other => panic!("expected Beliefs, got {other:?}"),
    };

    // Advance the graph to v2. RWR entries cannot be patched; under
    // StaleCache they are retained at their old version instead of
    // discarded.
    match core.handle_blocking(Request::EdgeDelta {
        graph_id: 9,
        symmetric: true,
        deltas: vec![WireEdge {
            src: 0,
            dst: 4,
            weight: 0.5,
        }],
    }) {
        Response::DeltaApplied { invalidated, .. } => assert!(invalidated >= 1),
        other => panic!("expected DeltaApplied, got {other:?}"),
    }

    // Fill the v2 group (max_pending = 1), then ask again: full group +
    // a v1 answer on file = degraded stale serve.
    let (tx, rx) = mpsc::channel();
    core.submit(
        rwr_query(wire_seeds(0, 1.0)),
        Box::new(move |r| drop(tx.send(r))),
    );
    let degraded = match core.handle_blocking(rwr_query(wire_seeds(0, 1.0))) {
        Response::Beliefs(p) => p,
        other => panic!("expected degraded Beliefs, got {other:?}"),
    };
    assert_eq!(degraded.served, ServedVia::Stale { version: 1 });
    assert_bitwise("stale serve == v1 answer", &degraded.beliefs, &v1.beliefs);
    assert_eq!(core.stats().degraded_stale, 1);

    // The parked v2 job still drains with a real (fresh) solve.
    match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
        Response::Beliefs(fresh) => {
            assert!(!matches!(fresh.served, ServedVia::Stale { .. }));
        }
        other => panic!("expected fresh Beliefs for parked job, got {other:?}"),
    }
}

/// Opt-in `ClampIter` degradation: past the backlog high-water mark,
/// expensive queries get their iteration budget clamped — and the served
/// answer is bitwise the library solve at the clamped budget.
#[test]
fn clamp_iter_degradation_is_bitwise_at_the_clamped_budget() {
    let core = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_millis(150),
        max_pending: 2, // high-water mark = 1 parked job
        degradation: DegradationPolicy::ClampIter(50),
        ..ServerConfig::default()
    });
    assert!(matches!(
        core.handle_blocking(Request::RegisterGraph {
            graph_id: 2,
            n_nodes: 10,
            symmetric: true,
            edges: wire_edges(),
        }),
        Response::Registered { .. }
    ));

    let h = coupling();
    // Park one job (distinct params => its own group, un-clamped since
    // the backlog was empty when it arrived).
    let mut parked_params = wire_params(&h);
    parked_params.tol = 1e-10;
    let (tx, rx) = mpsc::channel();
    let tx_parked = tx.clone();
    core.submit(
        Request::SolveLinBp {
            graph_id: 2,
            params: parked_params,
            seeds: wire_seeds(1, 1.0),
        },
        Box::new(move |r| drop(tx_parked.send(("parked", r)))),
    );

    // Now the backlog is at the high-water mark: this query's 300
    // iterations are clamped to 50.
    core.submit(
        Request::SolveLinBp {
            graph_id: 2,
            params: wire_params(&h),
            seeds: wire_seeds(0, 1.0),
        },
        Box::new(move |r| drop(tx.send(("clamped", r)))),
    );

    let mut clamped_payload = None;
    for _ in 0..2 {
        let (who, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match r {
            Response::Beliefs(p) => {
                if who == "clamped" {
                    clamped_payload = Some(p);
                }
            }
            other => panic!("{who}: expected Beliefs, got {other:?}"),
        }
    }
    let clamped = clamped_payload.expect("clamped query answered");
    let mut clamped_opts = lib_opts();
    clamped_opts.max_iter = 50;
    let reference = linbp(&fixture_adjacency(), &lib_seeds(0, 1.0), &h, &clamped_opts).unwrap();
    assert_eq!(clamped.iterations, reference.iterations as u64);
    assert_bitwise(
        "clamped solve == library at clamped budget",
        &clamped.beliefs,
        reference.beliefs.residual().as_slice(),
    );
    assert_eq!(core.stats().degraded_clamped, 1);
}

/// Per-process scratch directory for server spill tests; each test
/// keys its own subdirectory so runs never share files.
fn spill_scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lsbp-serve-spill-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spilling server config with several shards and a deliberately tiny
/// buffer-pool budget, so every solve iteration evicts and demand-loads
/// shards from disk — a destroyed or truncated spill file surfaces
/// immediately instead of hiding behind a warm single-shard pool.
fn spill_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        spill_dir: Some(dir.to_path_buf()),
        parallelism: ParallelismConfig::serial()
            .with_shards(4)
            .with_memory_budget(1),
        ..ServerConfig::default()
    }
}

/// A rejected duplicate registration must not touch the live entry's
/// spill file: the graph keeps solving out-of-core, bitwise equal to
/// the library, after the duplicate is turned away.
#[test]
fn duplicate_register_with_spill_keeps_live_graph_servable() {
    let dir = spill_scratch("dup-register");
    let core = ServerCore::new(spill_config(&dir));
    let register = |edges: Vec<WireEdge>| Request::RegisterGraph {
        graph_id: 9,
        n_nodes: 10,
        symmetric: true,
        edges,
    };
    assert!(matches!(
        core.handle_blocking(register(wire_edges())),
        Response::Registered { .. }
    ));

    let h = coupling();
    let solve = |shift: usize| Request::SolveLinBp {
        graph_id: 9,
        params: wire_params(&h),
        seeds: wire_seeds(shift, 1.0),
    };
    assert!(matches!(
        core.handle_blocking(solve(0)),
        Response::Beliefs(_)
    ));
    assert!(
        core.stats().pager_misses > 0,
        "solves must actually run through the paged operator"
    );

    match core.handle_blocking(register(wire_edges()[..3].to_vec())) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::GraphAlreadyRegistered),
        other => panic!("expected GraphAlreadyRegistered, got {other:?}"),
    }

    // Fresh seeds (no cache hit) force demand loads from the spill file
    // the rejected registration must not have damaged.
    let survived = match core.handle_blocking(solve(1)) {
        Response::Beliefs(p) => p,
        other => panic!("graph unservable after duplicate register: {other:?}"),
    };
    let reference = linbp(&fixture_adjacency(), &lib_seeds(1, 1.0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "post-duplicate solve",
        &survived.beliefs,
        reference.beliefs.residual().as_slice(),
    );
}

/// Racing edge deltas to one spilled graph: every delta must land
/// (distinct versions, none lost to a read-rebuild-publish race) and
/// the surviving paged operator must hold ALL of them.
#[test]
fn racing_edge_deltas_to_spilled_graph_all_land() {
    let dir = spill_scratch("racing-deltas");
    let core = Arc::new(ServerCore::new(spill_config(&dir)));
    assert!(matches!(
        core.handle_blocking(Request::RegisterGraph {
            graph_id: 7,
            n_nodes: 10,
            symmetric: true,
            edges: wire_edges(),
        }),
        Response::Registered { .. }
    ));

    let raw_deltas: Vec<(usize, usize, f64)> = (0..4)
        .map(|t| (t, (t + 5) % 10, 0.3 + t as f64 * 0.1))
        .collect();
    let barrier = Arc::new(Barrier::new(raw_deltas.len()));
    let workers: Vec<_> = raw_deltas
        .iter()
        .map(|&(s, t, w)| {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                core.handle_blocking(Request::EdgeDelta {
                    graph_id: 7,
                    symmetric: true,
                    deltas: vec![WireEdge {
                        src: s as u64,
                        dst: t as u64,
                        weight: w,
                    }],
                })
            })
        })
        .collect();
    let mut versions: Vec<u64> = workers
        .into_iter()
        .map(|w| match w.join().unwrap() {
            Response::DeltaApplied { version, .. } => version,
            other => panic!("expected DeltaApplied, got {other:?}"),
        })
        .collect();
    versions.sort_unstable();
    assert_eq!(
        versions,
        vec![2, 3, 4, 5],
        "each racing delta must claim its own version — a repeat means one update was lost"
    );

    // The published operator must reflect every delta, served from its
    // (undamaged) spill file.
    let h = coupling();
    let got = match core.handle_blocking(Request::SolveLinBp {
        graph_id: 7,
        params: wire_params(&h),
        seeds: wire_seeds(2, 1.0),
    }) {
        Response::Beliefs(p) => p,
        other => panic!("spilled graph unservable after racing deltas: {other:?}"),
    };
    let mut both_dirs = Vec::new();
    for &(s, t, w) in &raw_deltas {
        both_dirs.push((s, t, w));
        both_dirs.push((t, s, w));
    }
    let new_adj = fixture_adjacency()
        .try_with_edge_deltas(&both_dirs)
        .unwrap();
    let reference = linbp(&new_adj, &lib_seeds(2, 1.0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "solve after racing deltas",
        &got.beliefs,
        reference.beliefs.residual().as_slice(),
    );
}

/// Served pager totals must be monotone while versions retire: banking
/// a retiring entry's stats and unregistering it happen atomically, so
/// an observer never sees a version counted twice (or not at all).
#[test]
fn pager_totals_stay_monotone_across_version_retirement() {
    let dir = spill_scratch("monotone-totals");
    let core = Arc::new(ServerCore::new(spill_config(&dir)));
    assert!(matches!(
        core.handle_blocking(Request::RegisterGraph {
            graph_id: 5,
            n_nodes: 10,
            symmetric: true,
            edges: wire_edges(),
        }),
        Response::Registered { .. }
    ));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut last = (0u64, 0u64, 0u64, 0u64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = core.stats();
                let now = (
                    s.pager_hits,
                    s.pager_misses,
                    s.pager_evictions,
                    s.pager_prefetches,
                );
                assert!(
                    now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2 && now.3 >= last.3,
                    "pager totals went backwards: {last:?} -> {now:?}"
                );
                last = now;
            }
        })
    };

    let h = coupling();
    for i in 0..12usize {
        assert!(matches!(
            core.handle_blocking(Request::SolveLinBp {
                graph_id: 5,
                params: wire_params(&h),
                seeds: wire_seeds(i, 1.0 + i as f64 * 0.01),
            }),
            Response::Beliefs(_)
        ));
        assert!(matches!(
            core.handle_blocking(Request::EdgeDelta {
                graph_id: 5,
                symmetric: true,
                deltas: vec![WireEdge {
                    src: (i % 10) as u64,
                    dst: ((i + 3) % 10) as u64,
                    weight: 0.05,
                }],
            }),
            Response::DeltaApplied { .. }
        ));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    poller.join().unwrap();
    let final_stats = core.stats();
    assert!(
        final_stats.pager_misses > 0,
        "retirement churn must have produced pager activity"
    );
}

//! End-to-end tests of the serving layer: a real `lsbp-server` core
//! behind a real TCP socket, exercised by `lsbp-client` connections.
//!
//! The central claim under test is **bitwise identity**: whatever the
//! server does — solo solve, admission-coalesced batch, cache hit, or
//! edge-delta patch — every belief vector it returns is bit-for-bit the
//! one the `lsbp` library produces for the same query.

use lsbp::prelude::*;
use lsbp_client::{Client, ClientError};
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use lsbp_net::{
    ErrorCode, LinBpParams, Request, Response, ServedVia, WireEdge, WireNorm, WireSeed,
};
use lsbp_server::{serve, ServerConfig, ServerCore};
use lsbp_sparse::CsrMatrix;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const K: usize = 3;

/// Binds an ephemeral port and serves `core` from a background thread.
/// The server thread exits when a client requests shutdown.
fn spawn_server(config: ServerConfig) -> (SocketAddr, Arc<ServerCore>, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let core = Arc::new(ServerCore::new(config));
    let serve_core = Arc::clone(&core);
    let handle = thread::spawn(move || serve(listener, &serve_core).expect("serve"));
    (addr, core, handle)
}

fn fixture_edges() -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(usize, usize, f64)> = (0..10).map(|i| (i, (i + 1) % 10, 1.0)).collect();
    edges.extend_from_slice(&[(0, 5, 0.5), (2, 7, 1.25), (3, 8, 0.75)]);
    edges
}

fn fixture_adjacency() -> CsrMatrix {
    let mut g = Graph::new(10);
    for (s, t, w) in fixture_edges() {
        g.add_edge(s, t, w);
    }
    g.adjacency()
}

fn wire_edges() -> Vec<WireEdge> {
    fixture_edges()
        .into_iter()
        .map(|(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect()
}

fn coupling() -> Mat {
    CouplingMatrix::fig1c().unwrap().scaled_residual(0.05)
}

fn wire_params(h: &Mat) -> LinBpParams {
    LinBpParams {
        echo: true,
        k: K as u32,
        h_residual: h.as_slice().to_vec(),
        max_iter: 300,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
    }
}

fn lib_opts() -> LinBpOptions {
    LinBpOptions {
        max_iter: 300,
        tol: 1e-12,
        norm: ToleranceNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
        parallelism: ParallelismConfig::from_env(),
    }
}

/// One seeded node per class; `scale` stretches the residual magnitudes
/// (larger seeds take more iterations to converge under an absolute tol).
fn seed_rows(shift: usize, scale: f64) -> Vec<(usize, [f64; K])> {
    vec![
        (shift % 10, [2.0 * scale, -scale, -scale]),
        ((3 + shift) % 10, [-scale, 2.0 * scale, -scale]),
        ((6 + shift) % 10, [-scale, -scale, 2.0 * scale]),
    ]
}

fn wire_seeds(shift: usize, scale: f64) -> Vec<WireSeed> {
    seed_rows(shift, scale)
        .into_iter()
        .map(|(node, row)| WireSeed {
            node: node as u64,
            residual: row.to_vec(),
        })
        .collect()
}

fn lib_seeds(shift: usize, scale: f64) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(10, K);
    for (node, row) in seed_rows(shift, scale) {
        e.set_residual(node, &row).unwrap();
    }
    e
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: belief mismatch at flat index {i}: {g:e} vs {w:e}"
        );
    }
}

/// k concurrent clients against the same graph and parameters: the server
/// coalesces them into one stacked solve, and every answer is bitwise the
/// per-query library solve.
#[test]
fn coalesced_queries_are_bitwise_identical_to_solo_solves() {
    let config = ServerConfig {
        // A wide window so all clients land in one admission batch
        // regardless of scheduling jitter.
        coalesce_window: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, core, handle) = spawn_server(config);
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(1, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let queries = 8;
    let barrier = Barrier::new(queries);
    let payloads: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..queries)
            .map(|q| {
                let (barrier, h) = (&barrier, &h);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    barrier.wait();
                    c.solve_linbp(1, wire_params(h), wire_seeds(q, 1.0))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let adj = fixture_adjacency();
    let opts = lib_opts();
    let mut coalesced = 0;
    for (q, payload) in payloads.iter().enumerate() {
        let reference = linbp(&adj, &lib_seeds(q, 1.0), &h, &opts).unwrap();
        assert!(payload.converged && reference.converged);
        assert_eq!(payload.iterations, reference.iterations as u64);
        assert_bitwise(
            &format!("query {q}"),
            &payload.beliefs,
            reference.beliefs.residual().as_slice(),
        );
        if matches!(payload.served, ServedVia::Coalesced { .. }) {
            coalesced += 1;
        }
    }
    // With a 150 ms window and a start barrier, the queries must have
    // actually shared batches — the bitwise check above is what proves
    // sharing is safe.
    assert!(
        coalesced >= 2,
        "expected admission coalescing to engage, served: {:?}",
        payloads.iter().map(|p| p.served).collect::<Vec<_>>()
    );
    let stats = core.stats();
    assert!(stats.coalesced_batches >= 1);
    assert!(stats.largest_batch >= 2);
    // Stacking q queries costs max(iters) SpMM passes, not Σ iters.
    assert!(stats.spmm_passes < stats.spmm_passes_sequential_equiv);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Queries whose convergence points differ by orders of magnitude still
/// coalesce safely: per-query freeze masks keep each answer identical to
/// its solo solve even though the batch runs to the slowest query's
/// iteration count.
#[test]
fn mixed_convergence_batch_matches_per_query_solves() {
    let config = ServerConfig {
        coalesce_window: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, _core, handle) = spawn_server(config);
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(7, 10, true, wire_edges()).unwrap();

    let h = coupling();
    // Same params (so the queries group), wildly different seed scales
    // (so their convergence iterations differ under the absolute tol).
    let scales = [1.0, 1e8];
    let barrier = Barrier::new(scales.len());
    let payloads: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = scales
            .iter()
            .map(|&scale| {
                let (barrier, h) = (&barrier, &h);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    barrier.wait();
                    c.solve_linbp(7, wire_params(h), wire_seeds(0, scale))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let adj = fixture_adjacency();
    let opts = lib_opts();
    for (payload, &scale) in payloads.iter().zip(&scales) {
        let reference = linbp(&adj, &lib_seeds(0, scale), &h, &opts).unwrap();
        assert!(payload.converged && reference.converged);
        assert_eq!(
            payload.iterations, reference.iterations as u64,
            "scale {scale}: freeze mask must preserve the solo iteration count"
        );
        assert_bitwise(
            &format!("scale {scale}"),
            &payload.beliefs,
            reference.beliefs.residual().as_slice(),
        );
    }
    // The point of the fixture: the two queries converge at genuinely
    // different iterations.
    assert_ne!(payloads[0].iterations, payloads[1].iterations);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A full admission queue rejects further queries with `Overloaded`
/// instead of buffering without bound.
#[test]
fn admission_backpressure_rejects_with_overloaded() {
    // No TCP needed: drive the core directly so the queue can be held
    // full (the long window keeps parked jobs parked).
    let core = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_secs(30),
        max_batch: 64,
        max_pending: 2,
        ..ServerConfig::default()
    });
    let register = Request::RegisterGraph {
        graph_id: 1,
        n_nodes: 10,
        symmetric: true,
        edges: wire_edges(),
    };
    assert!(matches!(
        core.handle_blocking(register),
        Response::Registered { .. }
    ));

    let h = coupling();
    let (tx, rx) = mpsc::channel();
    for q in 0..3 {
        let tx = tx.clone();
        core.submit(
            Request::SolveLinBp {
                graph_id: 1,
                params: wire_params(&h),
                seeds: wire_seeds(q, 1.0),
            },
            Box::new(move |r| drop(tx.send((q, r)))),
        );
    }
    // Only the third query (queue already holds max_pending = 2) answers
    // immediately — with Overloaded.
    let (q, response) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(q, 2);
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Dropping the core force-drains the two parked queries; their
    // responders must still fire (with real results).
    drop(core);
    for _ in 0..2 {
        let (_, response) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(response, Response::Beliefs(_)));
    }
}

/// Cache behavior across an edge delta: repeat queries hit the cache,
/// the delta patches (not invalidates) LinBP entries, and the patched
/// entry is bitwise the library patch path.
#[test]
fn edge_delta_patches_cache_bitwise() {
    let (addr, core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(3, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let first = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(first.served, ServedVia::Solo);

    let again = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(again.served, ServedVia::Cache);
    assert_bitwise("cache hit", &again.beliefs, &first.beliefs);
    assert_eq!(core.stats().cache_hits, 1);

    let raw_deltas = [(1usize, 2usize, 0.5), (0, 4, 0.75)];
    let deltas: Vec<WireEdge> = raw_deltas
        .iter()
        .map(|&(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect();
    let (version, patched, invalidated) = client.edge_delta(3, true, deltas).unwrap();
    assert_eq!(version, 2);
    assert_eq!(patched, 1, "the cached LinBP entry must be patched forward");
    assert_eq!(invalidated, 0);

    let requeried = client
        .solve_linbp(3, wire_params(&h), wire_seeds(0, 1.0))
        .unwrap();
    assert_eq!(requeried.served, ServedVia::CachePatched);

    // Library patch path on the same inputs.
    let adj = fixture_adjacency();
    let mut both_dirs = Vec::new();
    for &(s, t, w) in &raw_deltas {
        both_dirs.push((s, t, w));
        both_dirs.push((t, s, w));
    }
    let new_adj = adj.try_with_edge_deltas(&both_dirs).unwrap();
    let previous = BeliefMatrix::from_mat(Mat::from_vec(10, K, first.beliefs.clone()));
    let seed = linbp_edge_delta_seed(&adj, &both_dirs, &previous, &h, true).unwrap();
    let patched_ref = linbp_update(&new_adj, &previous, &seed, &h, &lib_opts(), true).unwrap();
    assert_bitwise(
        "patched entry",
        &requeried.beliefs,
        patched_ref.beliefs.residual().as_slice(),
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Hostile or invalid inputs come back as typed errors — never panics,
/// never poisoned batches.
#[test]
fn invalid_requests_get_typed_errors() {
    let (addr, _core, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    fn expect_err<T: std::fmt::Debug>(r: Result<T, ClientError>, want: ErrorCode, label: &str) {
        match r {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, want, "{label}"),
            other => panic!("{label}: expected {want:?}, got {other:?}"),
        }
    }

    let h = coupling();
    // Unknown graph.
    expect_err(
        client.solve_linbp(99, wire_params(&h), wire_seeds(0, 1.0)),
        ErrorCode::UnknownGraph,
        "unknown graph",
    );
    client.register_graph(1, 10, true, wire_edges()).unwrap();
    // Duplicate registration.
    expect_err(
        client.register_graph(1, 10, true, wire_edges()),
        ErrorCode::GraphAlreadyRegistered,
        "duplicate register",
    );
    // k = 1 would panic ExplicitBeliefs::new if it reached the solver.
    let mut bad = wire_params(&h);
    bad.k = 1;
    bad.h_residual = vec![0.0];
    expect_err(
        client.solve_linbp(1, bad, vec![]),
        ErrorCode::BadRequest,
        "k too small",
    );
    // Seed node out of range (CooMatrix/ExplicitBeliefs would panic).
    expect_err(
        client.solve_linbp(
            1,
            wire_params(&h),
            vec![WireSeed {
                node: 10,
                residual: vec![2.0, -1.0, -1.0],
            }],
        ),
        ErrorCode::BadRequest,
        "seed out of range",
    );
    // Non-centered seed row.
    expect_err(
        client.solve_linbp(
            1,
            wire_params(&h),
            vec![WireSeed {
                node: 0,
                residual: vec![1.0, 1.0, 1.0],
            }],
        ),
        ErrorCode::BadRequest,
        "uncentered seed",
    );
    // Edge delta out of bounds.
    expect_err(
        client.edge_delta(
            1,
            true,
            vec![WireEdge {
                src: 0,
                dst: 99,
                weight: 1.0,
            }],
        ),
        ErrorCode::BadRequest,
        "delta out of bounds",
    );
    // A malformed frame (bogus request tag) gets a typed error too — on a
    // raw socket, below the typed client.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    lsbp_net::write_frame(&mut raw, &[0xFF, 0xFF]).unwrap();
    let payload = lsbp_net::read_frame(&mut raw)
        .unwrap()
        .expect("server must answer before closing");
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest for bogus tag, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

//! The batched multi-query contract: `linbp_batch` / `linbp_star_batch` /
//! `rwr_batch` must be **bitwise identical** to running each query
//! standalone — per-query beliefs, convergence/divergence flags,
//! iteration counts and final deltas — at every thread count, including
//! q = 0, q = 1, and batches mixing fast-converging, slow, and divergent
//! queries (the per-query freeze masks are what this pins down).

use lsbp::prelude::*;
use lsbp_graph::generators::erdos_renyi_gnm;
use lsbp_linalg::Mat;
use proptest::prelude::*;

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn thread_sweep() -> Vec<ParallelismConfig> {
    [1usize, 2, 8]
        .into_iter()
        .map(|t| ParallelismConfig::with_threads(t).with_min_work(1))
        .collect()
}

/// Builds a seed-set from (node, class) pairs, clamped into range.
fn seeds(n: usize, k: usize, picks: &[(usize, usize)]) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, k);
    for &(v, c) in picks {
        let _ = e.set_label(v % n, c % k, 1.0);
    }
    e
}

fn assert_linbp_batch_matches(
    adj: &lsbp_sparse::CsrMatrix,
    queries: &[ExplicitBeliefs],
    h: &Mat,
    opts: &LinBpOptions,
    star: bool,
    label: &str,
) {
    let batch = if star {
        linbp_star_batch(adj, queries, h, opts).unwrap()
    } else {
        linbp_batch(adj, queries, h, opts).unwrap()
    };
    assert_eq!(batch.len(), queries.len(), "{label}");
    for (j, (e, got)) in queries.iter().zip(&batch).enumerate() {
        let want = if star {
            linbp_star(adj, e, h, opts).unwrap()
        } else {
            linbp(adj, e, h, opts).unwrap()
        };
        assert_eq!(got.converged, want.converged, "{label} query {j}");
        assert_eq!(got.diverged, want.diverged, "{label} query {j}");
        assert_eq!(got.iterations, want.iterations, "{label} query {j}");
        assert_eq!(
            got.final_delta.to_bits(),
            want.final_delta.to_bits(),
            "{label} query {j}"
        );
        assert!(
            bits_equal(got.beliefs.residual(), want.beliefs.residual()),
            "{label} query {j}: batched beliefs differ from standalone"
        );
    }
}

/// Empty batch: a no-op, not an error.
#[test]
fn linbp_batch_q0() {
    let adj = erdos_renyi_gnm(30, 60, 1).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let out = linbp_batch(&adj, &[], &h, &LinBpOptions::default()).unwrap();
    assert!(out.is_empty());
    let rw = rwr_batch(&adj, &[], &RwrOptions::default()).unwrap();
    assert!(rw.is_empty());
}

/// Single-query batch is the degenerate case: exactly the standalone run.
#[test]
fn linbp_batch_q1() {
    let adj = erdos_renyi_gnm(60, 150, 2).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.04);
    let q = [seeds(60, 3, &[(0, 0), (13, 1), (41, 2)])];
    for cfg in thread_sweep() {
        let opts = LinBpOptions {
            parallelism: cfg,
            ..Default::default()
        };
        assert_linbp_batch_matches(&adj, &q, &h, &opts, false, "q1");
        assert_linbp_batch_matches(&adj, &q, &h, &opts, true, "q1*");
    }
}

/// A mixed-convergence batch: an empty seed-set (fixed point after one
/// round), ordinary converging queries, and — at a coupling scale past
/// the spectral threshold — diverging ones. Each query must freeze at
/// exactly its standalone iteration.
#[test]
fn linbp_batch_mixed_convergence() {
    let adj = erdos_renyi_gnm(80, 240, 5).adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let queries = [
        seeds(80, 3, &[]), // converges immediately (Ê = 0 is the fixed point)
        seeds(80, 3, &[(3, 0)]),
        seeds(80, 3, &[(7, 1), (22, 2), (55, 0), (61, 1)]),
        seeds(80, 3, &[(2, 2), (9, 0)]),
    ];
    for cfg in thread_sweep() {
        // Convergent scale: queries stop at different iterations.
        let opts = LinBpOptions {
            max_iter: 400,
            tol: 1e-11,
            parallelism: cfg,
            ..Default::default()
        };
        let h = coupling.scaled_residual(0.05);
        assert_linbp_batch_matches(&adj, &queries, &h, &opts, false, "mixed");
        assert_linbp_batch_matches(&adj, &queries, &h, &opts, true, "mixed*");

        // Divergent scale: the seeded queries trip the guard at their own
        // iterations while the empty query still converges.
        let h_div = coupling.scaled_residual(0.9);
        assert_linbp_batch_matches(&adj, &queries, &h_div, &opts, false, "mixed-divergent");
    }
}

/// Timing mode (tol = 0) runs every query the full budget — no freezing.
#[test]
fn linbp_batch_timing_mode() {
    let adj = erdos_renyi_gnm(50, 120, 8).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.03);
    let queries = [seeds(50, 3, &[(1, 0)]), seeds(50, 3, &[(2, 1), (30, 2)])];
    let opts = LinBpOptions {
        max_iter: 7,
        tol: 0.0,
        ..Default::default()
    };
    assert_linbp_batch_matches(&adj, &queries, &h, &opts, false, "timing");
}

/// Batched RWR equals per-query RWR bitwise, across thread counts and
/// walk-count mixes (different seed multiplicities converge at different
/// iterations, exercising the per-walk freeze).
#[test]
fn rwr_batch_matches_standalone() {
    let adj = erdos_renyi_gnm(70, 210, 3).adjacency();
    let queries = [
        seeds(70, 2, &[(0, 0), (69, 1)]),
        seeds(70, 2, &[(5, 0), (6, 0), (7, 0), (50, 1)]),
        seeds(70, 2, &[(11, 0), (12, 1), (13, 0), (14, 1), (15, 0)]),
    ];
    for cfg in thread_sweep() {
        let opts = RwrOptions {
            parallelism: cfg,
            ..Default::default()
        };
        let batch = rwr_batch(&adj, &queries, &opts).unwrap();
        for (j, (e, got)) in queries.iter().zip(&batch).enumerate() {
            let want = rwr(&adj, e, &opts).unwrap();
            assert_eq!(got.converged, want.converged, "query {j}");
            assert_eq!(got.iterations, want.iterations, "query {j}");
            assert!(
                bits_equal(got.beliefs.residual(), want.beliefs.residual()),
                "query {j}: batched RWR beliefs differ from standalone"
            );
        }
    }
}

/// Batched error surface matches the standalone one.
#[test]
fn batch_error_cases() {
    let adj = erdos_renyi_gnm(20, 40, 4).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    // Wrong node count in the second query.
    let bad = [seeds(20, 3, &[(0, 0)]), seeds(21, 3, &[(0, 0)])];
    assert!(matches!(
        linbp_batch(&adj, &bad, &h, &LinBpOptions::default()),
        Err(lsbp::linbp::LinBpError::DimensionMismatch)
    ));
    // Wrong arity.
    let bad_k = [seeds(20, 2, &[(0, 0)])];
    assert!(matches!(
        linbp_batch(&adj, &bad_k, &h, &LinBpOptions::default()),
        Err(lsbp::linbp::LinBpError::CouplingArityMismatch)
    ));
    // A query with an unseeded class aborts the whole RWR batch, exactly
    // like the standalone error.
    let lonely = [seeds(20, 3, &[(0, 0), (5, 1), (9, 2)]), {
        let mut e = ExplicitBeliefs::new(20, 3);
        e.set_label(0, 0, 1.0).unwrap();
        e
    }];
    assert!(matches!(
        rwr_batch(&adj, &lonely, &RwrOptions::default()),
        Err(lsbp::rwr::RwrError::EmptyClass(1))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs, random seed batches, random thread counts: batched
    /// LinBP is bitwise equal to standalone LinBP, query by query.
    #[test]
    fn linbp_batch_random(
        seed in 0u64..500,
        q in 0usize..5,
        threads in 1usize..9,
        eps_pick in 0usize..3,
    ) {
        let n = 40;
        let adj = erdos_renyi_gnm(n, 100, seed).adjacency();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let eps = [0.02, 0.06, 0.12][eps_pick];
        let h = coupling.scaled_residual(eps);
        let queries: Vec<ExplicitBeliefs> = (0..q)
            .map(|j| seeds(n, 3, &[(j * 7 + 1, j), ((j + 2) * 11, j + 1)]))
            .collect();
        let opts = LinBpOptions {
            max_iter: 150,
            tol: 1e-10,
            parallelism: ParallelismConfig::with_threads(threads).with_min_work(1),
            ..Default::default()
        };
        let batch = linbp_batch(&adj, &queries, &h, &opts).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for (e, got) in queries.iter().zip(&batch) {
            let want = linbp(&adj, e, &h, &opts).unwrap();
            prop_assert_eq!(got.converged, want.converged);
            prop_assert_eq!(got.diverged, want.diverged);
            prop_assert_eq!(got.iterations, want.iterations);
            prop_assert_eq!(got.final_delta.to_bits(), want.final_delta.to_bits());
            prop_assert!(bits_equal(got.beliefs.residual(), want.beliefs.residual()));
        }
    }

    /// Same contract for batched RWR over random batches.
    #[test]
    fn rwr_batch_random(seed in 0u64..500, q in 0usize..4, threads in 1usize..9) {
        let n = 35;
        let adj = erdos_renyi_gnm(n, 90, seed).adjacency();
        let queries: Vec<ExplicitBeliefs> = (0..q)
            .map(|j| seeds(n, 2, &[(3 * j + 1, 0), (5 * j + 2, 1)]))
            .collect();
        let opts = RwrOptions {
            parallelism: ParallelismConfig::with_threads(threads).with_min_work(1),
            ..Default::default()
        };
        let batch = rwr_batch(&adj, &queries, &opts).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for (e, got) in queries.iter().zip(&batch) {
            let want = rwr(&adj, e, &opts).unwrap();
            prop_assert_eq!(got.converged, want.converged);
            prop_assert_eq!(got.iterations, want.iterations);
            prop_assert!(bits_equal(got.beliefs.residual(), want.beliefs.residual()));
        }
    }
}

//! The sharded-engine contract: every propagator running on
//! [`ShardedCsr`] — whether through the shard knob on
//! [`ParallelismConfig`] or directly via the `*_on` operator entry points
//! — must be **bitwise identical** to the monolithic [`CsrMatrix`] path
//! at every shard × thread combination, including empty shards,
//! single-row shards, and divergent runs. Re-sharding a live system must
//! never change an answer.

use lsbp::prelude::*;
use lsbp_graph::generators::erdos_renyi_gnm;
use lsbp_linalg::Mat;
use lsbp_sparse::CsrMatrix;
use proptest::prelude::*;

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The acceptance grid: shard counts {1, 2, 8} × threads {1, 4}.
fn shard_thread_grid() -> Vec<ParallelismConfig> {
    let mut grid = Vec::new();
    for threads in [1usize, 4] {
        for shards in [1usize, 2, 8] {
            grid.push(
                ParallelismConfig::with_threads(threads)
                    .with_min_work(1)
                    .with_shards(shards),
            );
        }
    }
    grid
}

fn seeds(n: usize, k: usize, picks: &[(usize, usize)]) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, k);
    for &(v, c) in picks {
        let _ = e.set_label(v % n, c % k, 1.0);
    }
    e
}

fn assert_linbp_equal(got: &LinBpResult, want: &LinBpResult, label: &str) {
    assert_eq!(got.converged, want.converged, "{label}");
    assert_eq!(got.diverged, want.diverged, "{label}");
    assert_eq!(got.iterations, want.iterations, "{label}");
    assert_eq!(
        got.final_delta.to_bits(),
        want.final_delta.to_bits(),
        "{label}"
    );
    assert!(
        bits_equal(got.beliefs.residual(), want.beliefs.residual()),
        "{label}: sharded beliefs differ from monolithic"
    );
}

/// LinBP and LinBP* through the shard knob: every (shards, threads) cell
/// equals the serial monolithic reference bitwise — convergent and
/// divergent (guard-tripping) coupling scales alike.
#[test]
fn linbp_shard_knob_grid() {
    let adj = erdos_renyi_gnm(60, 180, 7).adjacency();
    let e = seeds(60, 3, &[(0, 0), (13, 1), (41, 2)]);
    let coupling = CouplingMatrix::fig1c().unwrap();
    for (eps, label) in [(0.04, "convergent"), (0.9, "divergent")] {
        let h = coupling.scaled_residual(eps);
        let reference_opts = LinBpOptions {
            max_iter: 120,
            tol: 1e-10,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        let want = linbp(&adj, &e, &h, &reference_opts).unwrap();
        let want_star = linbp_star(&adj, &e, &h, &reference_opts).unwrap();
        if label == "divergent" {
            assert!(want_star.diverged, "the divergent case must diverge");
        }
        for cfg in shard_thread_grid() {
            let opts = LinBpOptions {
                parallelism: cfg,
                ..reference_opts
            };
            let got = linbp(&adj, &e, &h, &opts).unwrap();
            assert_linbp_equal(
                &got,
                &want,
                &format!("{label} t={} s={}", cfg.threads(), cfg.shards()),
            );
            let got_star = linbp_star(&adj, &e, &h, &opts).unwrap();
            assert_linbp_equal(
                &got_star,
                &want_star,
                &format!("{label}* t={} s={}", cfg.threads(), cfg.shards()),
            );
        }
    }
}

/// RWR through the shard knob over the same grid.
#[test]
fn rwr_shard_knob_grid() {
    let adj = erdos_renyi_gnm(70, 210, 3).adjacency();
    let e = seeds(70, 2, &[(0, 0), (69, 1), (30, 0)]);
    let want = rwr(
        &adj,
        &e,
        &RwrOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    for cfg in shard_thread_grid() {
        let got = rwr(
            &adj,
            &e,
            &RwrOptions {
                parallelism: cfg,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(got.converged, want.converged);
        assert_eq!(got.iterations, want.iterations);
        assert!(
            bits_equal(got.beliefs.residual(), want.beliefs.residual()),
            "t={} s={}",
            cfg.threads(),
            cfg.shards()
        );
    }
}

/// SBP through the shard knob: beliefs *and* geodesic structure match.
#[test]
fn sbp_shard_knob_grid() {
    let adj = erdos_renyi_gnm(80, 160, 5).adjacency(); // sparse → deep layers
    let e = seeds(80, 3, &[(2, 0), (47, 1), (66, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().residual();
    let want = sbp_with(&adj, &e, &h, &ParallelismConfig::serial()).unwrap();
    for cfg in shard_thread_grid() {
        let got = sbp_with(&adj, &e, &h, &cfg).unwrap();
        assert_eq!(
            got.geodesics.g,
            want.geodesics.g,
            "t={} s={}",
            cfg.threads(),
            cfg.shards()
        );
        assert!(
            bits_equal(got.beliefs.residual(), want.beliefs.residual()),
            "t={} s={}",
            cfg.threads(),
            cfg.shards()
        );
    }
}

/// The batched solvers honor the shard knob too: sharded batched solves
/// equal the monolithic batched solves bitwise (which are themselves
/// pinned bitwise-equal to per-query solves in `batched_solves.rs`).
#[test]
fn batched_solves_shard_knob() {
    let adj = erdos_renyi_gnm(50, 150, 9).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let queries = [
        seeds(50, 3, &[]),
        seeds(50, 3, &[(3, 0)]),
        seeds(50, 3, &[(7, 1), (22, 2), (44, 0)]),
    ];
    let reference_opts = LinBpOptions {
        max_iter: 200,
        tol: 1e-11,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    let want = linbp_batch(&adj, &queries, &h, &reference_opts).unwrap();
    // RWR needs every class seeded per query — its own batch.
    let rwr_queries = [
        seeds(50, 2, &[(0, 0), (49, 1)]),
        seeds(50, 2, &[(5, 0), (6, 0), (30, 1)]),
    ];
    let want_rwr = rwr_batch(
        &adj,
        &rwr_queries,
        &RwrOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    for cfg in shard_thread_grid() {
        let opts = LinBpOptions {
            parallelism: cfg,
            ..reference_opts
        };
        let got = linbp_batch(&adj, &queries, &h, &opts).unwrap();
        for (j, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_linbp_equal(g, w, &format!("batch query {j} s={}", cfg.shards()));
        }
        let got_rwr = rwr_batch(
            &adj,
            &rwr_queries,
            &RwrOptions {
                parallelism: cfg,
                ..Default::default()
            },
        )
        .unwrap();
        for (j, (g, w)) in got_rwr.iter().zip(&want_rwr).enumerate() {
            assert!(
                bits_equal(g.beliefs.residual(), w.beliefs.residual()),
                "rwr batch query {j} s={}",
                cfg.shards()
            );
        }
    }
}

/// Exotic shard layouts through the `*_on` operator entry points: empty
/// shards, single-row shards, and one fat shard — all bitwise equal to
/// the monolithic run for LinBP, RWR and SBP.
#[test]
fn exotic_shard_layouts_via_operator_api() {
    let n = 24;
    let adj = erdos_renyi_gnm(n, 70, 13).adjacency();
    let e = seeds(n, 3, &[(1, 0), (9, 1), (17, 2)]);
    let coupling = CouplingMatrix::fig1c().unwrap();
    let h = coupling.scaled_residual(0.05);
    let hr = coupling.residual();
    let layouts: Vec<Vec<std::ops::Range<usize>>> = vec![
        // Empty shards at the front, middle and back.
        vec![0..0, 0..10, 10..10, 10..n, n..n],
        // All single-row shards.
        (0..n).map(|r| r..r + 1).collect(),
        // One fat shard (the monolithic layout expressed as a shard).
        vec![0..n],
    ];
    let opts = LinBpOptions {
        max_iter: 150,
        tol: 1e-10,
        parallelism: ParallelismConfig::with_threads(4).with_min_work(1),
        ..Default::default()
    };
    let want = linbp(&adj, &e, &h, &opts).unwrap();
    let want_rwr = rwr(
        &adj,
        &e,
        &RwrOptions {
            parallelism: opts.parallelism,
            ..Default::default()
        },
    )
    .unwrap();
    let want_sbp = sbp_with(&adj, &e, &hr, &opts.parallelism).unwrap();
    for (i, layout) in layouts.iter().enumerate() {
        let sharded = ShardedCsr::from_csr_ranges(&adj, layout);
        let got = linbp_on(&sharded, &e, &h, &opts).unwrap();
        assert_linbp_equal(&got, &want, &format!("layout {i}"));
        let got_rwr = rwr_on(
            &sharded,
            &e,
            &RwrOptions {
                parallelism: opts.parallelism,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            bits_equal(got_rwr.beliefs.residual(), want_rwr.beliefs.residual()),
            "layout {i}"
        );
        let got_sbp = sbp_on(&sharded, &e, &hr, &opts.parallelism).unwrap();
        assert_eq!(got_sbp.geodesics.g, want_sbp.geodesics.g, "layout {i}");
        assert!(
            bits_equal(got_sbp.beliefs.residual(), want_sbp.beliefs.residual()),
            "layout {i}"
        );
    }
}

/// `linbp_update_batch` is bitwise identical to per-query `linbp_update`
/// — the batched incremental-maintenance contract — including through the
/// shard knob and for a divergent delta.
#[test]
fn linbp_update_batch_matches_per_query() {
    let n = 40;
    let adj = erdos_renyi_gnm(n, 100, 6).adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let h = coupling.scaled_residual(0.03);
    for cfg in shard_thread_grid() {
        let opts = LinBpOptions {
            max_iter: 5_000,
            tol: 1e-13,
            parallelism: cfg,
            ..Default::default()
        };
        // Three base solutions with different seed-sets.
        let bases: Vec<ExplicitBeliefs> = vec![
            seeds(n, 3, &[(0, 0), (9, 1)]),
            seeds(n, 3, &[(4, 2)]),
            seeds(n, 3, &[]),
        ];
        let prev: Vec<LinBpResult> = bases
            .iter()
            .map(|b| linbp(&adj, b, &h, &opts).unwrap())
            .collect();
        let deltas = vec![
            seeds(n, 3, &[(25, 2)]),
            seeds(n, 3, &[(11, 0), (31, 1)]),
            seeds(n, 3, &[]),
        ];
        for echo in [true, false] {
            let prev_beliefs: Vec<&BeliefMatrix> = prev.iter().map(|r| &r.beliefs).collect();
            let batch = linbp_update_batch(&adj, &prev_beliefs, &deltas, &h, &opts, echo).unwrap();
            assert_eq!(batch.len(), 3);
            for (j, got) in batch.iter().enumerate() {
                let want =
                    lsbp::linbp::linbp_update(&adj, &prev[j].beliefs, &deltas[j], &h, &opts, echo)
                        .unwrap();
                assert_linbp_equal(got, &want, &format!("echo={echo} pair {j}"));
            }
        }
    }
    // A divergent delta run is returned as-is, exactly like linbp_update.
    let h_div = coupling.scaled_residual(0.9);
    let opts = LinBpOptions {
        max_iter: 500,
        ..Default::default()
    };
    let base = seeds(n, 3, &[(0, 0)]);
    let prev = linbp(&adj, &base, &coupling.scaled_residual(0.03), &opts).unwrap();
    let delta = seeds(n, 3, &[(20, 1)]);
    let got = linbp_update_batch(
        &adj,
        &[&prev.beliefs],
        std::slice::from_ref(&delta),
        &h_div,
        &opts,
        true,
    )
    .unwrap();
    let want = lsbp::linbp::linbp_update(&adj, &prev.beliefs, &delta, &h_div, &opts, true).unwrap();
    assert!(want.diverged, "the divergent delta must diverge");
    assert_linbp_equal(&got[0], &want, "divergent delta");
    // Mismatched pairing is a dimension error.
    assert!(matches!(
        linbp_update_batch(&adj, &[&prev.beliefs], &[], &h_div, &opts, true),
        Err(lsbp::linbp::LinBpError::DimensionMismatch)
    ));
}

/// The shard knob never changes the *error* surface either.
#[test]
fn sharded_error_cases_match() {
    let adj = erdos_renyi_gnm(20, 40, 2).adjacency();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let opts = LinBpOptions {
        parallelism: ParallelismConfig::serial().with_shards(4),
        ..Default::default()
    };
    let wrong_n = seeds(21, 3, &[(0, 0)]);
    assert!(matches!(
        linbp(&adj, &wrong_n, &h, &opts),
        Err(lsbp::linbp::LinBpError::DimensionMismatch)
    ));
    let wrong_k = seeds(20, 2, &[(0, 0)]);
    assert!(matches!(
        linbp(&adj, &wrong_k, &h, &opts),
        Err(lsbp::linbp::LinBpError::CouplingArityMismatch)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs × random shard counts × random thread counts:
    /// the sharded engine (knob route *and* operator route) equals the
    /// monolithic run bitwise for LinBP, and the sharded storage
    /// round-trips exactly.
    #[test]
    fn sharded_linbp_random(
        seed in 0u64..500,
        shards in 1usize..12,
        threads in 1usize..9,
        eps_pick in 0usize..3,
    ) {
        let n = 40;
        let adj = erdos_renyi_gnm(n, 100, seed).adjacency();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let eps = [0.02, 0.06, 0.9][eps_pick]; // 0.9 diverges
        let h = coupling.scaled_residual(eps);
        let e = seeds(n, 3, &[(seed as usize % n, 0), ((seed as usize * 7 + 3) % n, 1)]);
        let base_opts = LinBpOptions {
            max_iter: 150,
            tol: 1e-10,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        let want = linbp(&adj, &e, &h, &base_opts).unwrap();
        // Knob route.
        let knob_opts = LinBpOptions {
            parallelism: ParallelismConfig::with_threads(threads)
                .with_min_work(1)
                .with_shards(shards),
            ..base_opts
        };
        let got = linbp(&adj, &e, &h, &knob_opts).unwrap();
        prop_assert_eq!(got.iterations, want.iterations);
        prop_assert_eq!(got.diverged, want.diverged);
        prop_assert!(bits_equal(got.beliefs.residual(), want.beliefs.residual()));
        // Operator route.
        let sharded = ShardedCsr::from_csr(&adj, shards);
        prop_assert_eq!(sharded.to_csr(), adj.clone());
        let got_on = linbp_on(&sharded, &e, &h, &knob_opts).unwrap();
        prop_assert_eq!(got_on.final_delta.to_bits(), want.final_delta.to_bits());
        prop_assert!(bits_equal(got_on.beliefs.residual(), want.beliefs.residual()));
    }

    /// The sharded operator's kernel surface (SpMV/SpMM/transpose/row
    /// stats) matches the monolithic CSR bitwise on random graphs.
    #[test]
    fn sharded_kernels_random(seed in 0u64..500, shards in 1usize..10, threads in 1usize..9) {
        let n = 30;
        let adj = erdos_renyi_gnm(n, 80, seed).adjacency();
        let sharded = ShardedCsr::from_csr(&adj, shards);
        let cfg = ParallelismConfig::with_threads(threads).with_min_work(1);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + seed as usize) % 17) as f64 * 0.1 - 0.8).collect();
        let mut y_mono = vec![0.0; n];
        let mut y_shard = vec![0.0; n];
        CsrMatrix::spmv_into_with(&adj, &x, &mut y_mono, &cfg);
        PropagationOperator::spmv_into_with(&sharded, &x, &mut y_shard, &cfg);
        prop_assert!(y_mono.iter().zip(&y_shard).all(|(a, b)| a.to_bits() == b.to_bits()));
        for k in [2usize, 3, 5] {
            let b = Mat::from_fn(n, k, |r, c| ((r * k + c) % 11) as f64 * 0.07 - 0.3);
            let mut o_mono = Mat::zeros(n, k);
            let mut o_shard = Mat::zeros(n, k);
            CsrMatrix::spmm_into_with(&adj, &b, &mut o_mono, &cfg);
            PropagationOperator::spmm_into_with(&sharded, &b, &mut o_shard, &cfg);
            prop_assert!(bits_equal(&o_mono, &o_shard));
        }
        prop_assert_eq!(PropagationOperator::transpose_with(&sharded, &cfg), adj.transpose_with(&cfg));
        prop_assert_eq!(PropagationOperator::row_sums(&sharded), adj.row_sums());
        prop_assert_eq!(
            PropagationOperator::squared_weight_degrees(&sharded),
            adj.squared_weight_degrees()
        );
    }
}

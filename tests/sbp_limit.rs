//! Theorem 19 (LinBP → SBP as εH → 0⁺) and Lemma 17 (the modified
//! adjacency DAG), beyond the torus.

use lsbp::prelude::*;
use lsbp_graph::generators::{erdos_renyi_gnm, grid_2d};
use lsbp_graph::{geodesic_numbers, UNREACHABLE};
use lsbp_sparse::CooMatrix;

fn seeds(n: usize, nodes: &[(usize, usize)]) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, 3);
    for &(v, c) in nodes {
        e.set_label(v, c, 1.0).unwrap();
    }
    e
}

/// Theorem 19 on a grid: standardized LinBP beliefs converge node-wise to
/// standardized SBP beliefs as εH → 0.
#[test]
fn theorem19_on_grid() {
    let g = grid_2d(6, 6);
    let adj = g.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = seeds(36, &[(0, 0), (35, 1), (17, 2)]);
    let sbp_r = sbp(&adj, &e, &coupling.residual()).unwrap();
    let opts = LinBpOptions {
        max_iter: 100_000,
        tol: 1e-16,
        ..Default::default()
    };
    let h = coupling.scaled_residual(0.005);
    let lin = linbp(&adj, &e, &h, &opts).unwrap();
    assert!(lin.converged);
    let mut max_err = 0.0f64;
    for v in 0..36 {
        let a = lin.beliefs.standardized(v);
        let b = sbp_r.beliefs.standardized(v);
        for (x, y) in a.iter().zip(&b) {
            max_err = max_err.max((x - y).abs());
        }
    }
    assert!(max_err < 0.05, "max standardized deviation {max_err}");
}

/// Theorem 19 on random graphs: the *top belief assignment* of LinBP at
/// small εH equals SBP's up to ties.
#[test]
fn top_beliefs_agree_at_small_eps() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    for seed in 0..4u64 {
        let g = erdos_renyi_gnm(50, 120, seed);
        let adj = g.adjacency();
        let e = seeds(50, &[(0, 0), (11, 1), (29, 2)]);
        let sbp_r = sbp(&adj, &e, &coupling.residual()).unwrap();
        let lin = linbp(
            &adj,
            &e,
            &coupling.scaled_residual(0.002),
            &LinBpOptions {
                max_iter: 100_000,
                tol: 1e-16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(lin.converged, "seed {seed}");
        // Loose tie tolerance on the SBP side (it has exact ties), tight on
        // LinBP: recall of SBP w.r.t. LinBP should be ≈ 1 (Fig. 7g).
        let gt = lin.beliefs.top_belief_assignment(1e-6);
        let ours = sbp_r.beliefs.top_belief_assignment(1e-9);
        let (_, r) = precision_recall(&gt, &ours);
        assert!(r > 0.97, "seed {seed}: recall {r}");
    }
}

/// Lemma 17: SBP over A equals LinBP over the transposed modified
/// adjacency matrix Aᵀ∗ (edges kept only from geodesic layer g to g+1,
/// then transposed). The DAG makes the iteration terminate exactly after
/// `max layer` steps, with *no* approximation.
#[test]
fn lemma17_modified_adjacency() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let ho = coupling.residual();
    for seed in [3u64, 8, 21] {
        let g = erdos_renyi_gnm(40, 90, seed);
        let adj = g.adjacency();
        let e = seeds(40, &[(0, 0), (13, 2)]);
        let geo = geodesic_numbers(&adj, &[0, 13]);

        // Build A∗ (direction low→high geodesic), then transpose: the
        // LinBP update B ← Ê + Aᵀ∗·B·Ĥ pulls from parents.
        let mut coo = CooMatrix::new(40, 40);
        for r in 0..40 {
            for (c, w) in adj.row_iter(r) {
                let (gr, gc) = (geo.g[r], geo.g[c]);
                if gr == UNREACHABLE || gc == UNREACHABLE {
                    continue;
                }
                // Keep r→c when g_c = g_r + 1; transposed entry: (c, r).
                if gc == gr + 1 {
                    coo.push(c, r, w);
                }
            }
        }
        let a_star_t = coo.to_csr();
        // The DAG operator is nilpotent (ρ = 0), so LinBP* converges
        // exactly — even with the *unscaled* Ĥo.
        let lin = linbp_star(
            &a_star_t,
            &e,
            &ho,
            &LinBpOptions {
                max_iter: 200,
                tol: 1e-15,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(lin.converged, "seed {seed}");
        let sbp_r = sbp(&adj, &e, &ho).unwrap();
        assert!(
            lin.beliefs
                .residual()
                .max_abs_diff(sbp_r.beliefs.residual())
                < 1e-10,
            "seed {seed}"
        );
    }
}

/// SBP's standardized assignment is invariant under εH scaling of Ĥ
/// (Sect. 6.2) — unlike LinBP's.
#[test]
fn sbp_scale_invariance() {
    let g = erdos_renyi_gnm(30, 70, 5);
    let adj = g.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = seeds(30, &[(0, 0), (9, 1)]);
    let full = sbp(&adj, &e, &coupling.residual()).unwrap();
    let tiny = sbp(&adj, &e, &coupling.scaled_residual(1e-4)).unwrap();
    for v in 0..30 {
        let a = full.beliefs.standardized(v);
        let b = tiny.beliefs.standardized(v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "node {v}");
        }
    }
}

//! Weighted-graph semantics (Sect. 5.2): weights scale coupling strengths,
//! parallel paths add up, and the degree matrix uses squared weights.

use lsbp::prelude::*;
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted_random(n: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut placed = std::collections::HashSet::new();
    while placed.len() < edges {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t {
            continue;
        }
        let key = (s.min(t), s.max(t));
        if placed.insert(key) {
            g.add_edge(key.0, key.1, rng.gen_range(1..=4) as f64 * 0.5);
        }
    }
    g
}

/// The degree matrix D uses squared weights: validate through the fixed
/// point equation on a weighted graph.
#[test]
fn fixed_point_with_squared_weight_degrees() {
    let g = weighted_random(15, 30, 1);
    let adj = g.adjacency();
    let mut e = ExplicitBeliefs::new(15, 3);
    e.set_label(0, 0, 1.0).unwrap();
    e.set_label(7, 2, 1.0).unwrap();
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let r = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            max_iter: 20_000,
            tol: 1e-15,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.converged);
    let b = r.beliefs.residual();
    // Manually recompute Ê + A·B̂·Ĥ − D·B̂·Ĥ² with d_s = Σ w².
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();
    let ab = adj.spmm(b).matmul(&h);
    let db = Mat::from_fn(15, 3, |row, c| degrees[row] * b[(row, c)]).matmul(&h2);
    let rhs = e.residual_matrix().add(&ab).sub(&db);
    assert!(b.max_abs_diff(&rhs) < 1e-12);
}

/// Closed form matches iterative on weighted graphs too.
#[test]
fn weighted_closed_form_agreement() {
    let g = weighted_random(12, 24, 5);
    let adj = g.adjacency();
    let mut e = ExplicitBeliefs::new(12, 2);
    e.set_label(3, 1, 0.5).unwrap();
    let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.05);
    let exact = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
    let iter = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            max_iter: 50_000,
            tol: 1e-15,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(iter.converged);
    assert!(exact.residual().max_abs_diff(iter.beliefs.residual()) < 1e-10);
}

/// A parallel edge of weight w is equivalent to summing weights into one
/// edge, end to end through LinBP.
#[test]
fn parallel_edges_equal_summed_weight() {
    let mut with_parallel = Graph::new(4);
    with_parallel.add_edge(0, 1, 1.0);
    with_parallel.add_edge(0, 1, 1.5);
    with_parallel.add_edge(1, 2, 1.0);
    with_parallel.add_edge(2, 3, 2.0);
    let mut merged = Graph::new(4);
    merged.add_edge(0, 1, 2.5);
    merged.add_edge(1, 2, 1.0);
    merged.add_edge(2, 3, 2.0);

    let mut e = ExplicitBeliefs::new(4, 2);
    e.set_label(0, 0, 0.1).unwrap();
    let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.05);
    let opts = LinBpOptions {
        max_iter: 10_000,
        tol: 1e-15,
        ..Default::default()
    };
    let a = linbp(&with_parallel.adjacency(), &e, &h, &opts).unwrap();
    let b = linbp(&merged.adjacency(), &e, &h, &opts).unwrap();
    assert!(a.beliefs.residual().max_abs_diff(b.beliefs.residual()) < 1e-12);
}

/// Weighted SBP: heavier shortest paths dominate ties in top-belief
/// assignment.
#[test]
fn weighted_sbp_path_weights() {
    // Two length-2 paths from opposing seeds to node 4; the heavier one
    // wins.
    let mut g = Graph::new(5);
    g.add_edge(0, 2, 3.0); // seed 0 (class 0) — heavy path
    g.add_edge(2, 4, 3.0);
    g.add_edge(1, 3, 1.0); // seed 1 (class 1) — light path
    g.add_edge(3, 4, 1.0);
    let mut e = ExplicitBeliefs::new(5, 2);
    e.set_label(0, 0, 1.0).unwrap();
    e.set_label(1, 1, 1.0).unwrap();
    let ho = CouplingMatrix::fig1a().unwrap().residual();
    let r = sbp(&g.adjacency(), &e, &ho).unwrap();
    assert_eq!(r.beliefs.top_beliefs(4, 1e-9), vec![0]);
    // Path weights: 9 vs 1 — the class-0 belief is 9× the class-1 one in
    // magnitude contribution.
    let e0 = Mat::from_rows(&[&[1.0, -1.0]]);
    let e1 = Mat::from_rows(&[&[-1.0, 1.0]]);
    let expect = e0
        .matmul(&ho)
        .matmul(&ho)
        .scale(9.0)
        .add(&e1.matmul(&ho).matmul(&ho));
    for c in 0..2 {
        assert!((r.beliefs.row(4)[c] - expect[(0, c)]).abs() < 1e-12);
    }
}

/// BP ignores weights (documented behaviour); LinBP respects them — on a
/// weight-asymmetric instance the two split exactly as documented.
#[test]
fn weights_documented_bp_difference() {
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 5.0);
    g.add_edge(1, 2, 1.0);
    let adj = g.adjacency();
    let mut e = ExplicitBeliefs::new(3, 2);
    e.set_label(0, 0, 0.1).unwrap();
    e.set_label(2, 1, 0.1).unwrap();
    // LinBP: node 1 leans class 0 (weight 5 beats weight 1).
    let h = CouplingMatrix::fig1a().unwrap().scaled_residual(0.02);
    let lin = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
    assert_eq!(lin.beliefs.top_beliefs(1, 1e-9), vec![0]);
    // BP: weight-blind, and the two seeds are symmetric — node 1 ties.
    let braw = CouplingMatrix::fig1a().unwrap().raw_at_scale(0.02);
    let bp_r = bp(&adj, &e, &braw, &BpOptions::default()).unwrap();
    let tops = bp_r.beliefs.top_beliefs(1, 1e-9);
    assert_eq!(tops, vec![0, 1], "BP sees a symmetric instance");
}

//! Property-based tests (proptest) on the core invariants, over random
//! graphs, couplings and explicit beliefs.

use lsbp::prelude::*;
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use proptest::prelude::*;

/// Strategy: a connected-ish random graph as an edge list over `n` nodes.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1..4u32), n..(3 * n));
        edges.prop_map(move |list| {
            let mut g = Graph::new(n);
            for (s, t, w) in list {
                if s != t {
                    g.add_edge(s, t, w as f64 * 0.5);
                }
            }
            g
        })
    })
}

/// Strategy: a random symmetric doubly-stochastic 3-class coupling matrix,
/// built by symmetrizing + Sinkhorn-style normalization.
fn coupling_strategy() -> impl Strategy<Value = CouplingMatrix> {
    proptest::collection::vec(0.05..1.0f64, 9).prop_map(|vals| {
        let mut m = Mat::from_fn(3, 3, |r, c| {
            let a = vals[r * 3 + c];
            let b = vals[c * 3 + r];
            0.5 * (a + b)
        });
        // Sinkhorn iterations preserve symmetry for symmetric input.
        for _ in 0..200 {
            for r in 0..3 {
                let s: f64 = m.row(r).iter().sum();
                for c in 0..3 {
                    m[(r, c)] /= s;
                }
            }
            let mut cols = [0.0f64; 3];
            for c in 0..3 {
                cols[c] = (0..3).map(|r| m[(r, c)]).sum();
            }
            for r in 0..3 {
                for c in 0..3 {
                    m[(r, c)] /= cols[c];
                }
            }
        }
        // Final symmetrization to kill the last floating point drift.
        let sym = Mat::from_fn(3, 3, |r, c| 0.5 * (m[(r, c)] + m[(c, r)]));
        CouplingMatrix::new(sym).expect("Sinkhorn should produce a valid coupling")
    })
}

fn explicit_strategy(n: usize) -> impl Strategy<Value = ExplicitBeliefs> {
    proptest::collection::vec((0..n, 0..3usize), 1..5).prop_map(move |labels| {
        let mut e = ExplicitBeliefs::new(n, 3);
        for (v, c) in labels {
            e.set_label(v, c, 1.0).unwrap();
        }
        e
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Residual belief rows stay centered (sum 0) through LinBP — the
    /// centering invariant of Definition 3 is preserved by the update.
    #[test]
    fn linbp_preserves_centering(g in graph_strategy(20), coupling in coupling_strategy()) {
        let n = g.num_nodes();
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(0, 0, 1.0).unwrap();
        // Any εH below the exact threshold.
        let eps = 0.5 * eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
        if !eps.is_finite() || eps <= 0.0 {
            return Ok(());
        }
        let h = coupling.scaled_residual(eps);
        let r = linbp(&adj, &e, &h,
            &LinBpOptions { max_iter: 20_000, tol: 1e-13, ..Default::default() }).unwrap();
        prop_assert!(r.converged);
        for v in 0..n {
            let s: f64 = r.beliefs.row(v).iter().sum();
            prop_assert!(s.abs() < 1e-9, "row {v} sums to {s}");
        }
    }

    /// Lemma 12 as a property: scaling Ê by any λ scales B̂ by λ and leaves
    /// the standardized assignment unchanged.
    #[test]
    fn scaling_explicit_beliefs(
        g in graph_strategy(16),
        coupling in coupling_strategy(),
        lambda in 0.1..20.0f64,
    ) {
        let n = g.num_nodes();
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(0, 1, 1.0).unwrap();
        let eps = 0.5 * eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
        if !eps.is_finite() || eps <= 0.0 {
            return Ok(());
        }
        let h = coupling.scaled_residual(eps);
        let opts = LinBpOptions { max_iter: 30_000, tol: 1e-14, ..Default::default() };
        let r1 = linbp(&adj, &e, &h, &opts).unwrap();
        let r2 = linbp(&adj, &e.scaled(lambda), &h, &opts).unwrap();
        prop_assert!(r1.converged && r2.converged);
        let scaled = r1.beliefs.residual().scale(lambda);
        let err = scaled.max_abs_diff(r2.beliefs.residual());
        let magnitude = r2.beliefs.residual().max_abs().max(1e-12);
        prop_assert!(err / magnitude < 1e-6, "relative error {}", err / magnitude);
    }

    /// The closed form (dense LU) agrees with the iterative fixpoint
    /// whenever the latter converges.
    #[test]
    fn closed_form_oracle(g in graph_strategy(12), coupling in coupling_strategy()) {
        let n = g.num_nodes();
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(n - 1, 2, 1.0).unwrap();
        let eps = 0.6 * eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
        if !eps.is_finite() || eps <= 0.0 {
            return Ok(());
        }
        let h = coupling.scaled_residual(eps);
        let iter = linbp(&adj, &e, &h,
            &LinBpOptions { max_iter: 50_000, tol: 1e-14, ..Default::default() }).unwrap();
        prop_assert!(iter.converged);
        let exact = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
        let err = iter.beliefs.residual().max_abs_diff(exact.residual());
        prop_assert!(err < 1e-7, "max diff {err}");
    }

    /// SBP invariants: explicit nodes keep their beliefs, beliefs stay
    /// centered, unreachable nodes stay zero, and incremental insertion of
    /// one more label equals recomputation.
    #[test]
    fn sbp_invariants(
        g in graph_strategy(20),
        coupling in coupling_strategy(),
        labels in explicit_strategy(20),
    ) {
        let n = g.num_nodes();
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(0, 0, 1.0).unwrap();
        for v in labels.explicit_nodes() {
            if v < n {
                e.set_residual(v, labels.row(v)).unwrap();
            }
        }
        let ho = coupling.residual();
        let r = sbp(&adj, &e, &ho).unwrap();
        for v in e.explicit_nodes() {
            prop_assert_eq!(r.beliefs.row(v), e.row(v));
        }
        for v in 0..n {
            let s: f64 = r.beliefs.row(v).iter().sum();
            prop_assert!(s.abs() < 1e-9);
            if r.geodesics.geodesic(v).is_none() {
                prop_assert!(r.beliefs.row(v).iter().all(|&x| x == 0.0));
            }
        }
        // Incremental = from-scratch for one extra label.
        let extra = n - 1;
        let mut delta = ExplicitBeliefs::new(n, 3);
        delta.set_label(extra, 2, 1.0).unwrap();
        let mut all = e.clone();
        all.set_label(extra, 2, 1.0).unwrap();
        let inc = sbp_add_explicit(&adj, &ho, &r, &delta).unwrap();
        let scratch = sbp(&adj, &all, &ho).unwrap();
        prop_assert_eq!(&inc.geodesics.g, &scratch.geodesics.g);
        let err = inc.beliefs.residual().max_abs_diff(scratch.beliefs.residual());
        prop_assert!(err < 1e-10, "{err}");
    }

    /// Incremental edge insertion equals recomputation for random splits.
    #[test]
    fn sbp_edge_insertion_property(g in graph_strategy(18), keep_frac in 0.5..0.95f64) {
        let coupling = CouplingMatrix::fig1c().unwrap();
        let ho = coupling.residual();
        let n = g.num_nodes();
        if g.num_edges() < 4 {
            return Ok(());
        }
        let keep = ((g.num_edges() as f64) * keep_frac) as usize;
        let (base, extra) = g.split_edges(keep.max(1));
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(0, 0, 1.0).unwrap();
        let prev = sbp(&base.adjacency(), &e, &ho).unwrap();
        let new_edges: Vec<_> = extra.edges().collect();
        let inc = sbp_add_edges(&g.adjacency(), &new_edges, &ho, &prev).unwrap();
        let scratch = sbp(&g.adjacency(), &e, &ho).unwrap();
        prop_assert_eq!(&inc.geodesics.g, &scratch.geodesics.g);
        let err = inc.beliefs.residual().max_abs_diff(scratch.beliefs.residual());
        prop_assert!(err < 1e-9, "{err}");
    }

    /// BP beliefs are valid probability residuals: rows sum to 0 and
    /// probabilities stay in (−1/k, 1 − 1/k).
    #[test]
    fn bp_outputs_valid_distributions(g in graph_strategy(14)) {
        let n = g.num_nodes();
        let adj = g.adjacency();
        let mut e = ExplicitBeliefs::new(n, 3);
        e.set_label(0, 0, 0.3).unwrap();
        let coupling = CouplingMatrix::fig1c().unwrap();
        let r = bp(&adj, &e, &coupling.raw_at_scale(0.2),
            &BpOptions { max_iter: 200, tol: 1e-10, ..Default::default() }).unwrap();
        for v in 0..n {
            let row = r.beliefs.row(v);
            let s: f64 = row.iter().sum();
            prop_assert!(s.abs() < 1e-7);
            for &x in row {
                prop_assert!(x > -1.0 / 3.0 - 1e-9 && x < 2.0 / 3.0 + 1e-9);
            }
        }
    }
}

//! Cross-method agreement: BP ↔ LinBP ↔ LinBP\* ↔ closed form.
//!
//! The paper's central quality claim (Result 4 / Fig. 7f–g): in the
//! convergent εH range, all methods produce (almost) identical top belief
//! assignments, and LinBP's fixpoint is the closed-form solution.

use lsbp::prelude::*;
use lsbp_graph::generators::{erdos_renyi_gnm, grid_2d, kronecker_graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random explicit beliefs in the Kronecker-experiment style: residuals
/// from {−0.1, …, 0.1} on two classes, third as the negative sum.
fn random_explicit(n: usize, k: usize, frac: f64, seed: u64) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, k);
    let count = ((n as f64 * frac).round() as usize).max(1);
    let mut nodes: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = rng.gen_range(i..n);
        nodes.swap(i, j);
    }
    for &v in &nodes[..count] {
        let mut row = vec![0.0; k];
        let mut sum = 0.0;
        for cell in row.iter_mut().take(k - 1) {
            let val = (rng.gen_range(-10i32..=10) as f64) / 100.0;
            *cell = val;
            sum += val;
        }
        row[k - 1] = -sum;
        if row.iter().any(|&x| x != 0.0) {
            e.set_residual(v, &row).unwrap();
        }
    }
    e
}

#[test]
fn linbp_matches_closed_form_on_random_graphs() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    for seed in 0..4u64 {
        let g = erdos_renyi_gnm(40, 100, seed);
        let adj = g.adjacency();
        let e = random_explicit(40, 3, 0.2, seed);
        let eps = 0.8 * eps_max_exact_linbp(&coupling.residual(), &adj, 1e-4);
        let h = coupling.scaled_residual(eps);
        let iterative = linbp(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 50_000,
                tol: 1e-14,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(iterative.converged, "seed {seed}");
        let exact = linbp_closed_form_dense(&adj, &e, &h, true).unwrap();
        assert!(
            iterative.beliefs.residual().max_abs_diff(exact.residual()) < 1e-8,
            "seed {seed}"
        );
    }
}

/// Fig. 7f in miniature: LinBP's top beliefs match BP's (accuracy > 99.9%
/// in the paper; exact agreement expected on these sizes at moderate εH).
#[test]
fn linbp_top_beliefs_match_bp() {
    let coupling = CouplingMatrix::fig6b_residual();
    // Build a valid raw coupling from the Fig. 6b residual at a BP-safe
    // scale.
    let g = kronecker_graph(5); // paper's graph #1: 243 nodes
    let adj = g.adjacency();
    let e = random_explicit(243, 3, 0.05, 42);
    let eps = 0.002;
    let h_res = coupling.scale(eps);
    let h_raw = CouplingMatrix::from_residual(&coupling, eps).unwrap();
    let bp_r = bp(
        &adj,
        &e,
        h_raw.raw(),
        &BpOptions {
            max_iter: 300,
            tol: 1e-12,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(bp_r.converged);
    let lin_r = linbp(
        &adj,
        &e,
        &h_res,
        &LinBpOptions {
            max_iter: 5_000,
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(lin_r.converged);
    let gt = bp_r.beliefs.top_belief_assignment(1e-6);
    let ours = lin_r.beliefs.top_belief_assignment(1e-6);
    let (p, r) = precision_recall(&gt, &ours);
    let acc = f1_score(p, r);
    assert!(acc > 0.995, "accuracy = {acc} (p={p}, r={r})");
}

/// LinBP vs LinBP*: identical top beliefs at small εH (Fig. 7g's flat
/// r = p = 1 region).
#[test]
fn linbp_star_matches_linbp_at_small_eps() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let g = grid_2d(8, 8);
    let adj = g.adjacency();
    let e = random_explicit(64, 3, 0.15, 7);
    let h = coupling.scaled_residual(0.02);
    let opts = LinBpOptions {
        max_iter: 10_000,
        tol: 1e-14,
        ..Default::default()
    };
    let a = linbp(&adj, &e, &h, &opts).unwrap();
    let b = linbp_star(&adj, &e, &h, &opts).unwrap();
    assert!(a.converged && b.converged);
    assert_eq!(
        a.beliefs.top_belief_assignment(1e-9),
        b.beliefs.top_belief_assignment(1e-9)
    );
}

/// On trees BP is exact and LinBP is its linearization: top beliefs agree
/// even at moderate coupling strength.
#[test]
fn tree_agreement() {
    let coupling = CouplingMatrix::fig1a().unwrap();
    let g = lsbp_graph::generators::star(20);
    let adj = g.adjacency();
    let mut e = ExplicitBeliefs::new(20, 2);
    e.set_label(1, 0, 0.1).unwrap();
    e.set_label(2, 0, 0.1).unwrap();
    e.set_label(3, 1, 0.1).unwrap();
    let bp_r = bp(&adj, &e, &coupling.raw_at_scale(0.5), &BpOptions::default()).unwrap();
    let lin_r = linbp(
        &adj,
        &e,
        &coupling.scaled_residual(0.1),
        &LinBpOptions::default(),
    )
    .unwrap();
    assert!(bp_r.converged && lin_r.converged);
    // The hub (node 0) hears two class-0 seeds vs one class-1 seed.
    assert_eq!(bp_r.beliefs.top_beliefs(0, 1e-9), vec![0]);
    assert_eq!(lin_r.beliefs.top_beliefs(0, 1e-9), vec![0]);
}

/// The relational LinBP equals the native one on the paper's graph #1
/// after the paper's 5 timing iterations.
#[test]
fn sql_linbp_on_kronecker_graph1() {
    let g = kronecker_graph(5);
    let e = random_explicit(243, 3, 0.05, 1);
    let h = CouplingMatrix::fig6b_residual().scale(0.001);
    let db = lsbp_reldb::SqlDb::new(&g, &e, &h);
    let sql_b = db.linbp(5, true);
    let native = linbp(
        &g.adjacency(),
        &e,
        &h,
        &LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12);
}

//! Stress tests for the incremental SBP maintenance (Algorithms 3 & 4):
//! larger graphs, repeated batches, overwrites, order invariance.

use lsbp::prelude::*;
use lsbp_graph::generators::{erdos_renyi_gnm, kronecker_graph};
use lsbp_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ho() -> lsbp_linalg::Mat {
    CouplingMatrix::fig1c().unwrap().residual()
}

fn random_labels(n: usize, count: usize, seed: u64) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, 3);
    let mut placed = 0;
    while placed < count {
        let v = rng.gen_range(0..n);
        if !e.is_explicit(v) {
            e.set_label(v, rng.gen_range(0..3), 1.0).unwrap();
            placed += 1;
        }
    }
    e
}

/// A long sequence of single-label insertions on the paper's graph #1.
#[test]
fn sequential_label_insertions_kronecker() {
    let g = kronecker_graph(5);
    let n = g.num_nodes();
    let adj = g.adjacency();
    let h = ho();
    let base = random_labels(n, 5, 1);
    let mut state = sbp(&adj, &base, &h).unwrap();
    let mut all = base.clone();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let v = rng.gen_range(0..n);
        let c = rng.gen_range(0..3);
        let mut delta = ExplicitBeliefs::new(n, 3);
        delta.set_label(v, c, 1.0).unwrap();
        all.set_label(v, c, 1.0).unwrap();
        state = sbp_add_explicit(&adj, &h, &state, &delta).unwrap();
    }
    let scratch = sbp(&adj, &all, &h).unwrap();
    assert_eq!(state.geodesics.g, scratch.geodesics.g);
    assert!(
        state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-10
    );
}

/// Overwriting an existing label (changing a node's class) must update the
/// whole affected region.
#[test]
fn label_overwrite() {
    let g = erdos_renyi_gnm(50, 120, 3);
    let adj = g.adjacency();
    let h = ho();
    let mut base = ExplicitBeliefs::new(50, 3);
    base.set_label(0, 0, 1.0).unwrap();
    base.set_label(25, 1, 1.0).unwrap();
    let state = sbp(&adj, &base, &h).unwrap();
    // Flip node 0 to class 2.
    let mut delta = ExplicitBeliefs::new(50, 3);
    delta.set_label(0, 2, 1.0).unwrap();
    let updated = sbp_add_explicit(&adj, &h, &state, &delta).unwrap();
    let mut all = base.clone();
    all.set_label(0, 2, 1.0).unwrap();
    let scratch = sbp(&adj, &all, &h).unwrap();
    assert!(
        updated
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-10
    );
}

/// Batch order must not matter: applying updates in any order reaches the
/// same final state (the result depends only on the final label set).
#[test]
fn batch_order_invariance() {
    let g = erdos_renyi_gnm(40, 100, 8);
    let adj = g.adjacency();
    let h = ho();
    let base = random_labels(40, 3, 2);
    let prev = sbp(&adj, &base, &h).unwrap();
    let mut d1 = ExplicitBeliefs::new(40, 3);
    d1.set_label(7, 0, 1.0).unwrap();
    let mut d2 = ExplicitBeliefs::new(40, 3);
    d2.set_label(33, 2, 1.0).unwrap();

    let ab = {
        let s = sbp_add_explicit(&adj, &h, &prev, &d1).unwrap();
        sbp_add_explicit(&adj, &h, &s, &d2).unwrap()
    };
    let ba = {
        let s = sbp_add_explicit(&adj, &h, &prev, &d2).unwrap();
        sbp_add_explicit(&adj, &h, &s, &d1).unwrap()
    };
    assert_eq!(ab.geodesics.g, ba.geodesics.g);
    assert!(ab.beliefs.residual().max_abs_diff(ba.beliefs.residual()) < 1e-10);
}

/// Edge insertions that merge two components.
#[test]
fn edge_insertion_merges_components() {
    let mut g = Graph::new(20);
    for i in 0..9 {
        g.add_edge_unweighted(i, i + 1); // component A: 0..=9
    }
    for i in 10..19 {
        g.add_edge_unweighted(i, i + 1); // component B: 10..=19
    }
    let h = ho();
    let mut e = ExplicitBeliefs::new(20, 3);
    e.set_label(0, 0, 1.0).unwrap(); // only component A has labels
    let prev = sbp(&g.adjacency(), &e, &h).unwrap();
    assert_eq!(prev.geodesics.geodesic(15), None);

    let mut grown = g.clone();
    grown.add_edge_unweighted(9, 10);
    let updated = sbp_add_edges(&grown.adjacency(), &[(9, 10, 1.0)], &h, &prev).unwrap();
    let scratch = sbp(&grown.adjacency(), &e, &h).unwrap();
    assert_eq!(updated.geodesics.g, scratch.geodesics.g);
    assert_eq!(updated.geodesics.geodesic(19), Some(19));
    assert!(
        updated
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-12
    );
}

/// Random interleaving of label and edge insertions.
#[test]
fn interleaved_updates() {
    let full = erdos_renyi_gnm(70, 220, 40);
    let (mut current, extra) = full.split_edges(180);
    let extra_edges: Vec<_> = extra.edges().collect();
    let h = ho();
    let mut labels = random_labels(70, 4, 6);
    let mut state = sbp(&current.adjacency(), &labels, &h).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let mut edge_cursor = 0;
    for step in 0..8 {
        if step % 2 == 0 && edge_cursor + 5 <= extra_edges.len() {
            let chunk = &extra_edges[edge_cursor..edge_cursor + 5];
            edge_cursor += 5;
            for &(s, t, w) in chunk {
                current.add_edge(s, t, w);
            }
            state = sbp_add_edges(&current.adjacency(), chunk, &h, &state).unwrap();
        } else {
            let v = rng.gen_range(0..70);
            let c = rng.gen_range(0..3);
            let mut delta = ExplicitBeliefs::new(70, 3);
            delta.set_label(v, c, 1.0).unwrap();
            labels.set_label(v, c, 1.0).unwrap();
            state = sbp_add_explicit(&current.adjacency(), &h, &state, &delta).unwrap();
        }
    }
    let scratch = sbp(&current.adjacency(), &labels, &h).unwrap();
    assert_eq!(state.geodesics.g, scratch.geodesics.g);
    assert!(
        state
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-9
    );
}

/// Parallel (duplicate) edges: weights accumulate and the incremental path
/// agrees with the rebuilt adjacency.
#[test]
fn parallel_edge_weights_accumulate() {
    let mut g = Graph::new(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    let h = ho();
    let mut e = ExplicitBeliefs::new(4, 3);
    e.set_label(0, 0, 1.0).unwrap();
    let prev = sbp(&g.adjacency(), &e, &h).unwrap();
    // Add a parallel edge 0–1 (weight 2) and a fresh edge 2–3.
    let new_edges = [(0usize, 1usize, 2.0f64), (2, 3, 1.0)];
    let mut grown = g.clone();
    for &(s, t, w) in &new_edges {
        grown.add_edge(s, t, w);
    }
    let updated = sbp_add_edges(&grown.adjacency(), &new_edges, &h, &prev).unwrap();
    let scratch = sbp(&grown.adjacency(), &e, &h).unwrap();
    assert!(
        updated
            .beliefs
            .residual()
            .max_abs_diff(scratch.beliefs.residual())
            < 1e-12
    );
    // The 0–1 path now has weight 3.
    let hh = &h;
    let e_row = lsbp_linalg::Mat::from_rows(&[&[2.0, -1.0, -1.0]]);
    let expect = e_row.matmul(hh).scale(3.0);
    for c in 0..3 {
        assert!((updated.beliefs.row(1)[c] - expect[(0, c)]).abs() < 1e-12);
    }
}

//! Query-planner end-to-end suite.
//!
//! Three layers of protection around the cost-bounded planner:
//!
//! 1. **Property tests** — on random chain/star/triangle join graphs with
//!    skewed keys and empty/singleton relations, the planned result, the
//!    fixed left-to-right strategy, and a naive nested-loop reference all
//!    produce the same row multiset.
//! 2. **Plan-quality tests** — on a hub-skewed chain where the fixed FROM
//!    order is asymptotically worse, the planner must defer the hub join;
//!    `EXPLAIN` must round-trip through the parser and print the chosen
//!    order with a pessimistic bound and actual cardinality per node.
//! 3. **Regression pins** — `SqlDb::linbp` / `linbp_batch` / `sbp` output
//!    hashes are pinned to their pre-planner values: the planner must not
//!    perturb the SQL algorithms bit for bit.

use lsbp::prelude::*;
use lsbp_graph::generators::{erdos_renyi_gnm, kronecker_graph};
use lsbp_reldb::parser::{parse, Statement};
use lsbp_reldb::sql::{belief_table_to_matrix, geodesic_table_to_vec};
use lsbp_reldb::{Database, SqlDb, Table, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Random-workload property tests.
// ---------------------------------------------------------------------------

/// One generated table: name, columns, integer rows.
type GenTable = (&'static str, Vec<&'static str>, Vec<Vec<i64>>);

/// A generated multi-way join workload: tables plus equi-join edges as
/// ((table, column), (table, column)).
#[derive(Clone, Debug)]
struct Workload {
    tables: Vec<GenTable>,
    joins: Vec<((usize, usize), (usize, usize))>,
}

fn build_db(w: &Workload) -> Database {
    let mut db = Database::new();
    for (name, cols, rows) in &w.tables {
        let mut t = Table::new(*name, cols);
        for r in rows {
            t.push(r.iter().map(|&v| Value::Int(v)).collect());
        }
        db.insert_table(*name, t);
    }
    db
}

fn sql_text(w: &Workload) -> String {
    let from: Vec<&str> = w.tables.iter().map(|(n, _, _)| *n).collect();
    let mut sql = format!("select * from {}", from.join(", "));
    for (i, ((sa, ca), (sb, cb))) in w.joins.iter().enumerate() {
        sql.push_str(if i == 0 { " where " } else { " and " });
        sql.push_str(&format!(
            "{}.{} = {}.{}",
            w.tables[*sa].0, w.tables[*sa].1[*ca], w.tables[*sb].0, w.tables[*sb].1[*cb]
        ));
    }
    sql
}

/// Naive nested-loop reference: cross product in FROM order, filtered by
/// the join predicates, rows as canonical f64 bits, sorted (multiset).
fn reference(w: &Workload) -> Vec<Vec<u64>> {
    let offsets: Vec<usize> = w
        .tables
        .iter()
        .scan(0usize, |acc, (_, cols, _)| {
            let o = *acc;
            *acc += cols.len();
            Some(o)
        })
        .collect();
    let mut out: Vec<Vec<u64>> = Vec::new();
    if w.tables.iter().any(|(_, _, rows)| rows.is_empty()) {
        return out;
    }
    let n = w.tables.len();
    let mut idx = vec![0usize; n];
    'odometer: loop {
        let row: Vec<i64> = (0..n)
            .flat_map(|s| w.tables[s].2[idx[s]].iter().copied())
            .collect();
        if w.joins
            .iter()
            .all(|&((sa, ca), (sb, cb))| row[offsets[sa] + ca] == row[offsets[sb] + cb])
        {
            out.push(row.iter().map(|&v| (v as f64).to_bits()).collect());
        }
        let mut d = n;
        loop {
            if d == 0 {
                break 'odometer;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < w.tables[d].2.len() {
                break;
            }
            idx[d] = 0;
        }
    }
    out.sort_unstable();
    out
}

fn sorted_rows(t: &Table) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = t
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.as_float().to_bits()).collect())
        .collect();
    rows.sort_unstable();
    rows
}

/// Strategy: one of the three canonical join-graph shapes over three
/// random tables, with keys drawn from a span small enough to force
/// duplicates (skew) or wide enough to stay mostly distinct, and row
/// counts that include empty and singleton relations.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    let table = |span: i64| proptest::collection::vec((0..span, 0..span), 0..18);
    (0..3usize, 2..9i64).prop_flat_map(move |(shape, span)| {
        (table(span), table(span), table(span)).prop_map(move |(r0, r1, r2)| {
            let rows = |v: &[(i64, i64)]| v.iter().map(|&(a, b)| vec![a, b]).collect();
            match shape {
                // Chain: T0 — T1 — T2.
                0 => Workload {
                    tables: vec![
                        ("T0", vec!["k0", "p0"], rows(&r0)),
                        ("T1", vec!["ka", "kb"], rows(&r1)),
                        ("T2", vec!["k2", "p2"], rows(&r2)),
                    ],
                    joins: vec![((0, 0), (1, 0)), ((1, 1), (2, 0))],
                },
                // Star: fact table last in FROM order, so the fixed
                // strategy cross-products the two dimensions first.
                1 => Workload {
                    tables: vec![
                        ("D1", vec!["d", "p"], rows(&r0)),
                        ("D2", vec!["e", "q"], rows(&r1)),
                        ("F", vec!["f1", "f2"], rows(&r2)),
                    ],
                    joins: vec![((2, 0), (0, 0)), ((2, 1), (1, 0))],
                },
                // Triangle: a 3-cycle of equi-joins.
                _ => Workload {
                    tables: vec![
                        ("R", vec!["a", "b"], rows(&r0)),
                        ("S", vec!["c", "d"], rows(&r1)),
                        ("T", vec!["e", "f"], rows(&r2)),
                    ],
                    joins: vec![((0, 1), (1, 0)), ((1, 1), (2, 0)), ((2, 1), (0, 0))],
                },
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Planned execution, the fixed left-to-right strategy, and a naive
    /// nested-loop evaluation agree as row multisets on random
    /// chain/star/triangle workloads with skewed keys and empty or
    /// singleton relations.
    #[test]
    fn planned_matches_fixed_and_nested_loop_reference(w in workload_strategy()) {
        let mut db = build_db(&w);
        let sql = sql_text(&w);
        let planned = db.execute(&sql).unwrap().unwrap();
        let Statement::Select(sel) = parse(&sql).unwrap() else { unreachable!() };
        let fixed = db.run_select_fixed(&sel, "result").unwrap();
        let expect = reference(&w);
        prop_assert_eq!(sorted_rows(&planned), expect);
        prop_assert_eq!(sorted_rows(&fixed), sorted_rows(&planned));
    }
}

// ---------------------------------------------------------------------------
// Plan quality on a skewed chain.
// ---------------------------------------------------------------------------

/// R ⋈ S explodes on a hub key; S ⋈ Sel is tiny. The fixed FROM order
/// hits the hub first; the bound-minimal order defers it.
fn skewed_chain_db(n: i64, hub: i64) -> Database {
    let mut db = Database::new();
    let mut r = Table::new("R", &["k", "p"]);
    let mut s = Table::new("S", &["k", "j"]);
    let mut sel = Table::new("Sel", &["j"]);
    for i in 0..n {
        let k = if i < hub { 0 } else { i };
        r.push(vec![Value::Int(k), Value::Int(i)]);
        let j = if i < hub { n + i } else { i % 50 };
        s.push(vec![Value::Int(k), Value::Int(j)]);
    }
    for j in 0..25 {
        sel.push(vec![Value::Int(j)]);
    }
    db.insert_table("R", r);
    db.insert_table("S", s);
    db.insert_table("Sel", sel);
    db
}

const CHAIN_SQL: &str = "select R.p, Sel.j from R, S, Sel where R.k = S.k and S.j = Sel.j";

/// The planner must pick the bound-minimal join order (hub join last) on
/// a workload where the fixed FROM order is asymptotically worse —
/// quadratic in the hub degree — while producing the identical multiset.
#[test]
fn planner_defers_hub_join_on_skewed_chain() {
    let db = skewed_chain_db(2000, 400);
    let Statement::Select(sel) = parse(CHAIN_SQL).unwrap() else {
        unreachable!()
    };
    let (planned, plan, _) = db.run_select_planned(&sel, "result").unwrap();
    assert_eq!(
        plan.scan_order().last().map(String::as_str),
        Some("R"),
        "hub join should come last, got {:?}",
        plan.scan_order()
    );
    let fixed = db.run_select_fixed(&sel, "result").unwrap();
    assert_eq!(sorted_rows(&planned), sorted_rows(&fixed));
}

/// `EXPLAIN SELECT …` round-trips through the parser and prints one node
/// per line with the chosen join order, a pessimistic bound (`bound<=`)
/// and the actual cardinality (`actual=`) from execution.
#[test]
fn explain_round_trips_with_bounds_and_actuals() {
    let db = skewed_chain_db(500, 100);
    let stmt = parse(&format!("explain {CHAIN_SQL}")).unwrap();
    assert!(matches!(stmt, Statement::Explain { .. }));
    let text = db.explain(&format!("explain {CHAIN_SQL}")).unwrap();
    for needle in ["Project", "HashJoin on", "Scan R", "Scan S", "Scan Sel"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Every plan node line reports a bound, and executed nodes report
    // their actual cardinality.
    for line in text.lines() {
        assert!(line.contains("bound<="), "no bound on line {line:?}");
        assert!(line.contains("actual="), "no actual on line {line:?}");
    }
}

// ---------------------------------------------------------------------------
// Bitwise regression pins for the SQL algorithms.
// ---------------------------------------------------------------------------

fn random_labels(n: usize, k: usize, count: usize, seed: u64) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, k);
    let mut placed = 0;
    while placed < count {
        let v = rng.gen_range(0..n);
        if !e.is_explicit(v) {
            e.set_label(v, rng.gen_range(0..k), 1.0).unwrap();
            placed += 1;
        }
    }
    e
}

/// FNV-1a 64 over little-endian words — stable across platforms.
fn fnv64(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn mat_hash(m: &BeliefMatrix) -> u64 {
    fnv64(m.residual().as_slice().iter().map(|x| x.to_bits()))
}

/// `SqlDb::linbp`, `linbp_batch` and `sbp` build their plans directly on
/// the engine operators (not the SQL-text executor), so the planner must
/// leave their outputs bitwise identical. These constants were captured
/// on the commit immediately before the planner landed.
#[test]
fn sql_algorithms_bitwise_identical_to_pre_planner_outputs() {
    let g = kronecker_graph(5);
    let n = g.num_nodes();
    let e = random_labels(n, 3, n / 20, 3);
    let h = CouplingMatrix::fig6b_residual().scale(0.002);
    let db = SqlDb::new(&g, &e, &h);
    assert_eq!(
        mat_hash(&db.linbp(4, true)),
        0xf34253fd773b7530,
        "linbp echo"
    );
    assert_eq!(
        mat_hash(&db.linbp(4, false)),
        0xaec7474e9f368bad,
        "linbp star"
    );

    let e2 = random_labels(n, 3, 5, 7);
    let batch = db.linbp_batch(&[e.clone(), e2], 3, true);
    assert_eq!(mat_hash(&batch[0]), 0xeb1b8eba26b786cd, "batch query 0");
    assert_eq!(mat_hash(&batch[1]), 0x0ad14b9affeafbc1, "batch query 1");

    let gs = erdos_renyi_gnm(60, 150, 23);
    let es = random_labels(60, 3, 6, 4);
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let sdb = SqlDb::new(&gs, &es, &ho);
    let state = sdb.sbp();
    assert_eq!(
        mat_hash(&belief_table_to_matrix(&state.b, 60, 3)),
        0x0cdda98064fa6a81,
        "sbp beliefs"
    );
    assert_eq!(
        fnv64(
            geodesic_table_to_vec(&state.g, 60)
                .into_iter()
                .map(|x| x as u64)
        ),
        0x5a2daad102a11022,
        "sbp geodesics"
    );
}

//! Lemma 8 / Lemma 9 validation beyond the torus: the spectral criteria
//! are *exact* (iterates converge strictly below the threshold and diverge
//! strictly above), the norm criteria are sufficient-but-not-necessary,
//! and the closed form matches the iterative solution on both sides of the
//! sufficient bound.

use lsbp::prelude::*;
use lsbp_graph::generators::{complete, cycle, erdos_renyi_gnm, grid_2d, star};
use lsbp_graph::Graph;

fn one_seed(n: usize, k: usize) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, k);
    e.set_label(0, 0, 0.1).unwrap();
    e
}

/// Exact criterion sharpness on a spread of topologies and couplings.
#[test]
fn exact_criterion_is_sharp() {
    let cases: Vec<(Graph, CouplingMatrix)> = vec![
        (cycle(10), CouplingMatrix::fig1a().unwrap()),
        (star(12), CouplingMatrix::fig1b().unwrap()),
        (grid_2d(4, 5), CouplingMatrix::fig1c().unwrap()),
        (complete(7), CouplingMatrix::homophily(3, 0.6).unwrap()),
        (
            erdos_renyi_gnm(30, 60, 2),
            CouplingMatrix::heterophily(4, 0.1).unwrap(),
        ),
    ];
    for (graph, coupling) in cases {
        let adj = graph.adjacency();
        let k = coupling.k();
        let e = one_seed(graph.num_nodes(), k);
        let eps_max = eps_max_exact_linbp(&coupling.residual(), &adj, 1e-6);
        let opts = LinBpOptions {
            max_iter: 100_000,
            tol: 1e-13,
            ..Default::default()
        };
        let below = linbp(&adj, &e, &coupling.scaled_residual(eps_max * 0.97), &opts).unwrap();
        assert!(
            below.converged && !below.diverged,
            "{}-node graph should converge at 0.97·eps_max",
            graph.num_nodes()
        );
        let above = linbp(&adj, &e, &coupling.scaled_residual(eps_max * 1.03), &opts).unwrap();
        assert!(
            above.diverged,
            "{}-node graph should diverge at 1.03·eps_max",
            graph.num_nodes()
        );
    }
}

/// Ordering of the bounds: Lemma 23 ≤ Lemma 9 ≤ exact, for both variants.
#[test]
fn bound_hierarchy() {
    for (graph, coupling) in [
        (cycle(9), CouplingMatrix::fig1c().unwrap()),
        (grid_2d(5, 5), CouplingMatrix::fig1a().unwrap()),
        (
            erdos_renyi_gnm(40, 120, 9),
            CouplingMatrix::fig1c().unwrap(),
        ),
    ] {
        let adj = graph.adjacency();
        let ho = coupling.residual();
        let exact = eps_max_exact_linbp(&ho, &adj, 1e-5);
        let exact_star = eps_max_exact_linbp_star(&ho, &adj);
        let suff = eps_max_sufficient_linbp(&ho, &adj);
        let suff_star = eps_max_sufficient_linbp_star(&ho, &adj);
        let l23 = eps_max_lemma23_reexport(&ho, &adj);
        assert!(suff <= exact * 1.001, "Lemma 9 must not exceed exact");
        assert!(
            suff_star <= exact_star * 1.001,
            "Lemma 9* must not exceed exact*"
        );
        assert!(l23 <= suff * 1.001, "Lemma 23 is the loosest");
        // Echo cancellation shrinks the region: exact LinBP ≤ exact LinBP*.
        assert!(exact <= exact_star * 1.001);
    }
}

// `eps_max_lemma23` is exported from the convergence module but not the
// prelude; re-wrap for the test.
fn eps_max_lemma23_reexport(ho: &lsbp_linalg::Mat, adj: &lsbp_sparse::CsrMatrix) -> f64 {
    lsbp::convergence::eps_max_lemma23(ho, adj)
}

/// The closed form solves the system even past the *sufficient* bound —
/// convergence of the iteration is governed only by the exact bound.
#[test]
fn sufficient_is_not_necessary() {
    let graph = grid_2d(4, 4);
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = one_seed(16, 3);
    let suff = eps_max_sufficient_linbp(&coupling.residual(), &adj);
    let exact = eps_max_exact_linbp(&coupling.residual(), &adj, 1e-6);
    assert!(
        suff < exact,
        "this graph must have a gap between the bounds"
    );
    // Pick εH in the gap: past the sufficient bound, still convergent.
    let eps = 0.5 * (suff + exact);
    let opts = LinBpOptions {
        max_iter: 100_000,
        tol: 1e-13,
        ..Default::default()
    };
    let r = linbp(&adj, &e, &coupling.scaled_residual(eps), &opts).unwrap();
    assert!(r.converged && !r.diverged);
}

/// Weighted graphs change both ρ(A) and D; the criteria must track that.
#[test]
fn weighted_criteria() {
    let mut g = Graph::new(6);
    for i in 0..5 {
        g.add_edge(i, i + 1, 2.0); // heavy chain: ρ(A) = 2·ρ(P6)
    }
    let adj = g.adjacency();
    let coupling = CouplingMatrix::fig1a().unwrap();
    let eps_weighted = eps_max_exact_linbp_star(&coupling.residual(), &adj);
    let unweighted = lsbp_graph::generators::path(6).adjacency();
    let eps_unweighted = eps_max_exact_linbp_star(&coupling.residual(), &unweighted);
    assert!(
        (eps_weighted - eps_unweighted / 2.0).abs() < 1e-6,
        "doubling weights halves the εH range"
    );
    let e = one_seed(6, 2);
    let opts = LinBpOptions {
        max_iter: 50_000,
        tol: 1e-13,
        ..Default::default()
    };
    let ok = linbp_star(
        &adj,
        &e,
        &coupling.scaled_residual(eps_weighted * 0.95),
        &opts,
    )
    .unwrap();
    assert!(ok.converged);
    let bad = linbp_star(
        &adj,
        &e,
        &coupling.scaled_residual(eps_weighted * 1.05),
        &opts,
    )
    .unwrap();
    assert!(bad.diverged);
}

/// Appendix G numbers on a mid-size random graph: ρ(A_edge) < ρ(A) and
/// (for this denser graph) ρ(A_edge) + 1 ≈ ρ(A).
#[test]
fn appendix_g_edge_radius_relation() {
    let g = erdos_renyi_gnm(60, 300, 13); // avg degree 10
    let adj = g.adjacency();
    let ra = adj.spectral_radius();
    let re = lsbp::convergence::rho_edge_matrix(&adj);
    assert!(re < ra);
    assert!((re + 1.0 - ra).abs() / ra < 0.12, "ra={ra} re={re}");
}

//! Contract of active-frontier execution (change-tracking iteration
//! skipping in the fused LinBP path): at **every** frontier × shard ×
//! thread × memory-budget combination the solver must be **bitwise
//! identical** to full recomputation — same beliefs, same iteration
//! count, same final delta bits, same converged/diverged flags. The
//! frontier is an execution strategy, never an approximation: a row is
//! skipped only when its output provably holds the exact bits a
//! recomputation would produce.
//!
//! Edge cases pinned here: divergent runs, damping on/off, the L2 and
//! MaxAbs convergence norms, self-loops, empty graphs, single-node
//! graphs, eviction pressure on the paged backend, and the counter
//! invariant `rows_active + rows_skipped = n × iterations`.

use lsbp::prelude::*;
use lsbp_graph::generators::erdos_renyi_gnm;
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use lsbp_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;
use std::path::PathBuf;

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeds(n: usize, k: usize, picks: &[(usize, usize)]) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, k);
    for &(v, c) in picks {
        let _ = e.set_label(v % n, c % k, 1.0);
    }
    e
}

/// Per-process scratch directory for spill files.
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsbp-frontier-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn csr_bytes(m: &CsrMatrix) -> usize {
    (m.n_rows() + 1) * std::mem::size_of::<usize>() + m.nnz() * (4 + 8)
}

/// Full bitwise comparison of two solves, *including* the run shape.
fn assert_runs_identical(got: &LinBpResult, want: &LinBpResult, label: &str) {
    assert_eq!(got.converged, want.converged, "{label}: converged");
    assert_eq!(got.diverged, want.diverged, "{label}: diverged");
    assert_eq!(got.iterations, want.iterations, "{label}: iterations");
    assert_eq!(
        got.final_delta.to_bits(),
        want.final_delta.to_bits(),
        "{label}: final delta bits ({} vs {})",
        got.final_delta,
        want.final_delta
    );
    assert!(
        bits_equal(got.beliefs.residual(), want.beliefs.residual()),
        "{label}: frontier beliefs differ bitwise from full recomputation"
    );
}

/// The counter contract: with the frontier on, every row of every
/// executed sweep is either recomputed or skipped — nothing else. With
/// it off, everything is recomputed.
fn assert_counters(r: &LinBpResult, n: usize, frontier: bool, label: &str) {
    assert_eq!(
        r.rows_active + r.rows_skipped,
        (n * r.iterations) as u64,
        "{label}: rows_active + rows_skipped != n × iterations"
    );
    if !frontier {
        assert_eq!(r.rows_skipped, 0, "{label}: full path reported skips");
    }
}

/// Solves with the frontier off (full recomputation) and on, asserting
/// bitwise identity and the counter invariant; returns the frontier run.
fn frontier_vs_full(
    adj: &CsrMatrix,
    e: &ExplicitBeliefs,
    h: &Mat,
    base: &LinBpOptions,
    label: &str,
) -> LinBpResult {
    let full = linbp(
        adj,
        e,
        h,
        &LinBpOptions {
            parallelism: base.parallelism.with_frontier(false),
            ..*base
        },
    )
    .unwrap();
    let fr = linbp(
        adj,
        e,
        h,
        &LinBpOptions {
            parallelism: base.parallelism.with_frontier(true),
            ..*base
        },
    )
    .unwrap();
    assert_runs_identical(&fr, &full, label);
    assert_counters(&full, adj.n_rows(), false, label);
    assert_counters(&fr, adj.n_rows(), true, label);
    fr
}

#[test]
fn converging_run_bitwise_identical_and_counted() {
    let adj = erdos_renyi_gnm(64, 200, 11).adjacency();
    let e = seeds(64, 3, &[(0, 0), (17, 1), (40, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.04);
    let opts = LinBpOptions {
        max_iter: 200,
        tol: 1e-10,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    let fr = frontier_vs_full(&adj, &e, &h, &opts, "converging");
    assert!(fr.converged, "expected a converging configuration");
}

/// Divergent runs: the guard must trip at the same iteration with the
/// same (exploding) beliefs. Frontier bits on diverging rows change every
/// sweep, so skipping is rare — the contract is identity, not speed.
#[test]
fn divergent_run_trips_guard_identically() {
    let adj = erdos_renyi_gnm(48, 220, 3).adjacency();
    let e = seeds(48, 3, &[(1, 0), (2, 1), (3, 2)]);
    // A huge εH puts the spectral radius far above 1.
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(5.0);
    let opts = LinBpOptions {
        max_iter: 400,
        tol: 1e-12,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    let fr = frontier_vs_full(&adj, &e, &h, &opts, "divergent");
    assert!(fr.diverged, "expected the divergence guard to trip");
}

#[test]
fn damping_on_and_off_both_identical() {
    let adj = erdos_renyi_gnm(56, 180, 9).adjacency();
    let e = seeds(56, 4, &[(5, 0), (6, 1), (7, 2), (8, 3)]);
    let h = CouplingMatrix::homophily(4, 0.6)
        .unwrap()
        .scaled_residual(0.05);
    for damping in [0.0, 0.3] {
        let opts = LinBpOptions {
            max_iter: 150,
            tol: 1e-9,
            damping,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        frontier_vs_full(&adj, &e, &h, &opts, &format!("damping={damping}"));
    }
}

#[test]
fn l2_and_maxabs_norms_both_identical() {
    let adj = erdos_renyi_gnm(56, 180, 5).adjacency();
    let e = seeds(56, 3, &[(2, 0), (30, 1), (50, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    for norm in [ToleranceNorm::MaxAbs, ToleranceNorm::L2] {
        let opts = LinBpOptions {
            max_iter: 150,
            tol: 1e-9,
            norm,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        frontier_vs_full(&adj, &e, &h, &opts, &format!("norm={norm:?}"));
    }
}

/// Self-loops make a row depend on itself — the frontier's dependency
/// rule must still be sound (every plan block depends on itself anyway).
/// The [`Graph`] builder rejects self-loops, so build the CSR directly.
#[test]
fn self_loops_identical() {
    let n = 40;
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 0.5); // self-loop on every node
        coo.push_symmetric(i, (i + 1) % n, 1.0); // a cycle
    }
    let adj = coo.to_csr();
    let e = seeds(n, 3, &[(0, 0), (13, 1), (27, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.03);
    let opts = LinBpOptions {
        max_iter: 200,
        tol: 1e-10,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    frontier_vs_full(&adj, &e, &h, &opts, "self-loops");
}

/// Empty graph (no edges): beliefs are `Ê` after the first sweep and
/// every later sweep must be skipped entirely with an exactly-0 delta.
#[test]
fn empty_graph_freezes_after_first_sweep() {
    let n = 12;
    let adj = Graph::new(n).adjacency();
    let e = seeds(n, 3, &[(0, 0), (5, 1)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.1);
    // Converging mode: stops as soon as the delta is below tol.
    let opts = LinBpOptions {
        max_iter: 50,
        tol: 1e-12,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    frontier_vs_full(&adj, &e, &h, &opts, "empty graph");
    // Timing mode (tol = 0 runs all sweeps): after the first sweep the
    // frontier must skip every row of every remaining sweep.
    let opts = LinBpOptions {
        max_iter: 6,
        tol: 0.0,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    let fr = frontier_vs_full(&adj, &e, &h, &opts, "empty graph, fixed budget");
    assert_eq!(fr.iterations, 6);
    assert!(
        fr.rows_skipped >= (n * (fr.iterations - 2)) as u64,
        "empty graph barely skipped: active={} skipped={}",
        fr.rows_active,
        fr.rows_skipped
    );
    assert_eq!(fr.final_delta.to_bits(), 0.0f64.to_bits());
}

#[test]
fn single_node_identical() {
    let adj = Graph::new(1).adjacency();
    let e = seeds(1, 2, &[(0, 0)]);
    let h = CouplingMatrix::homophily(2, 0.7)
        .unwrap()
        .scaled_residual(0.2);
    for tol in [1e-12, 0.0] {
        let opts = LinBpOptions {
            max_iter: 8,
            tol,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        frontier_vs_full(&adj, &e, &h, &opts, &format!("single node tol={tol}"));
    }
}

/// Frontier × paged backend under real eviction pressure: a budget that
/// holds roughly one shard forces continuous eviction, and the frontier
/// must neither fault frozen shards back in incorrectly nor diverge from
/// the resident full-recomputation reference.
#[test]
fn frontier_under_paged_eviction_pressure() {
    let n = 72;
    let adj = erdos_renyi_gnm(n, 260, 21).adjacency();
    let e = seeds(n, 3, &[(0, 0), (24, 1), (48, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.04);
    let shards = 8usize;
    let budget = csr_bytes(&adj) / shards + 64;
    let reference = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            max_iter: 60,
            tol: 0.0,
            parallelism: ParallelismConfig::serial().with_frontier(false),
            ..Default::default()
        },
    )
    .unwrap();
    for threads in [1usize, 4] {
        let cfg = ParallelismConfig::with_threads(threads)
            .with_min_work(1)
            .with_shards(shards)
            .with_memory_budget(budget)
            .with_frontier(true);
        let path = tmp(&format!("pressure-t{threads}.lsbp"));
        let paged = spill_paged(&adj, &path, &cfg).unwrap();
        let got = linbp_on(
            &paged,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 60,
                tol: 0.0,
                parallelism: cfg,
                ..Default::default()
            },
        )
        .unwrap();
        let label = format!("paged pressure t={threads}");
        assert_runs_identical(&got, &reference, &label);
        assert_counters(&got, n, true, &label);
        let stats = paged.stats();
        assert!(
            stats.evictions > 0,
            "{label}: one-shard budget never evicted (misses={})",
            stats.misses
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance sweep: random graphs and couplings, frontier ⇔ full
    /// bitwise across shards {1, 2, 8} × threads {1, 4} × budgets
    /// {tiny, ample} on both the resident and the paged backend.
    #[test]
    fn frontier_equals_full_across_grid(
        nodes in 16usize..72,
        extra_edges in 0usize..120,
        seed in 0u64..1000,
        eps_mil in 5u64..80,
        damp_sel in 0u8..2,
        tol_mode in 0u8..2,
        shard_sel in 0usize..3,
        thread_sel in 0usize..2,
        tiny_sel in 0u8..2,
    ) {
        let shards = [1usize, 2, 8][shard_sel];
        let threads = [1usize, 4][thread_sel];
        let tiny_budget = tiny_sel == 1;
        let edges = (nodes + extra_edges).min(nodes * (nodes - 1) / 2);
        let graph = erdos_renyi_gnm(nodes, edges, seed);
        let adj = graph.adjacency();
        let e = seeds(nodes, 3, &[(1, 0), (nodes / 2, 1), (nodes - 1, 2)]);
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(eps_mil as f64 / 1000.0);
        let (max_iter, tol) = if tol_mode == 0 { (80, 1e-9) } else { (24, 0.0) };
        let base = LinBpOptions {
            max_iter,
            tol,
            damping: if damp_sel == 0 { 0.0 } else { 0.3 },
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        // Serial resident full recomputation is the reference everything
        // else must hit bit for bit.
        let want = linbp(&adj, &e, &h, &LinBpOptions {
            parallelism: ParallelismConfig::serial().with_frontier(false),
            ..base
        }).unwrap();

        let cfg = ParallelismConfig::with_threads(threads)
            .with_min_work(1)
            .with_shards(shards)
            .with_frontier(true);
        let label = format!(
            "n={nodes} seed={seed} s={shards} t={threads} tol={tol} tiny={tiny_budget}"
        );
        // Resident path (re-shards internally when shards > 1).
        let got = linbp(&adj, &e, &h, &LinBpOptions { parallelism: cfg, ..base }).unwrap();
        assert_runs_identical(&got, &want, &label);
        assert_counters(&got, nodes, true, &label);
        // Paged path under a tiny (always-evicting) or ample budget.
        let budget = if tiny_budget { 1 } else { csr_bytes(&adj) * 4 };
        let cfg = cfg.with_memory_budget(budget);
        let path = tmp(&format!("prop-{nodes}-{seed}-{shards}-{threads}-{tiny_budget}.lsbp"));
        let paged = spill_paged(&adj, &path, &cfg).unwrap();
        let got = linbp_on(&paged, &e, &h, &LinBpOptions { parallelism: cfg, ..base }).unwrap();
        assert_runs_identical(&got, &want, &format!("{label} (paged)"));
        assert_counters(&got, nodes, true, &format!("{label} (paged)"));
    }
}

//! Determinism contract of the parallel inference layer: LinBP, BP and
//! SBP must produce **bitwise identical** results for every thread count
//! (each node's messages/beliefs are computed by the unchanged serial
//! code into disjoint output regions). The min-work floor is forced to 1
//! so these mid-size graphs actually exercise the parallel code paths —
//! the same paths `LSBP_THREADS=1` vs `LSBP_THREADS=4` pin in CI.

use lsbp::prelude::*;
use lsbp_bench::kronecker_style_beliefs;
use lsbp_graph::generators::{erdos_renyi_gnm, kronecker_graph};
use lsbp_linalg::Mat;

fn sweep() -> Vec<ParallelismConfig> {
    [2usize, 3, 8]
        .into_iter()
        .map(|t| ParallelismConfig::with_threads(t).with_min_work(1))
        .collect()
}

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn linbp_bitwise_identical_across_threads() {
    let adj = kronecker_graph(5).adjacency();
    let n = adj.n_rows();
    let e = kronecker_style_beliefs(n, 3, n / 20, 3, false);
    let h = CouplingMatrix::fig6b_residual().scale(0.01);
    let serial = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    for cfg in sweep() {
        let par = linbp(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                parallelism: cfg,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(par.iterations, serial.iterations, "{cfg:?}");
        assert_eq!(par.converged, serial.converged, "{cfg:?}");
        assert_eq!(
            par.final_delta.to_bits(),
            serial.final_delta.to_bits(),
            "{cfg:?}"
        );
        assert!(
            bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
            "LinBP beliefs differ under {cfg:?}"
        );
    }
}

/// The L2 tolerance read-out is deliberately *not* fused into the
/// row-partitioned kernel — it stays one flat fixed-order 4-lane pass —
/// so an L2-norm run must also be bitwise identical at every thread
/// count (same iterations, same final delta, same beliefs).
#[test]
fn linbp_l2_norm_bitwise_identical_across_threads() {
    let adj = erdos_renyi_gnm(200, 600, 23).adjacency();
    let e = kronecker_style_beliefs(200, 3, 15, 4, false);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.04);
    let opts = |cfg| LinBpOptions {
        norm: ToleranceNorm::L2,
        tol: 1e-10,
        parallelism: cfg,
        ..Default::default()
    };
    let serial = linbp(&adj, &e, &h, &opts(ParallelismConfig::serial())).unwrap();
    for cfg in sweep() {
        let par = linbp(&adj, &e, &h, &opts(cfg)).unwrap();
        assert_eq!(par.iterations, serial.iterations, "{cfg:?}");
        assert_eq!(
            par.final_delta.to_bits(),
            serial.final_delta.to_bits(),
            "{cfg:?}"
        );
        assert!(
            bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
            "L2-norm LinBP beliefs differ under {cfg:?}"
        );
    }
}

#[test]
fn linbp_star_bitwise_identical_across_threads() {
    let adj = erdos_renyi_gnm(300, 900, 11).adjacency();
    let e = kronecker_style_beliefs(300, 3, 20, 5, false);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let serial = linbp_star(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    for cfg in sweep() {
        let par = linbp_star(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                parallelism: cfg,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
            "LinBP* beliefs differ under {cfg:?}"
        );
    }
}

#[test]
fn bp_bitwise_identical_across_threads() {
    let adj = erdos_renyi_gnm(250, 700, 9).adjacency();
    let mut e = ExplicitBeliefs::new(250, 3);
    e.set_residual(0, &[0.1, -0.04, -0.06]).unwrap();
    e.set_residual(113, &[-0.05, 0.1, -0.05]).unwrap();
    e.set_residual(204, &[-0.05, -0.05, 0.1]).unwrap();
    let h = CouplingMatrix::fig1c().unwrap().raw_at_scale(0.4);
    for naive in [false, true] {
        for damping in [0.0, 0.3] {
            let base = BpOptions {
                max_iter: 30,
                tol: 0.0,
                naive_products: naive,
                damping,
                ..Default::default()
            };
            let serial = bp(
                &adj,
                &e,
                &h,
                &BpOptions {
                    parallelism: ParallelismConfig::serial(),
                    ..base
                },
            )
            .unwrap();
            for cfg in sweep() {
                let par = bp(
                    &adj,
                    &e,
                    &h,
                    &BpOptions {
                        parallelism: cfg,
                        ..base
                    },
                )
                .unwrap();
                assert_eq!(
                    par.final_delta.to_bits(),
                    serial.final_delta.to_bits(),
                    "naive={naive} damping={damping} {cfg:?}"
                );
                assert!(
                    bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
                    "BP beliefs differ: naive={naive} damping={damping} {cfg:?}"
                );
            }
        }
    }
}

#[test]
fn sbp_bitwise_identical_across_threads() {
    let adj = kronecker_graph(6).adjacency();
    let n = adj.n_rows();
    let e = kronecker_style_beliefs(n, 3, n / 20, 13, false);
    let ho = CouplingMatrix::fig6b_residual();
    let serial = sbp_with(&adj, &e, &ho, &ParallelismConfig::serial()).unwrap();
    for cfg in sweep() {
        let par = sbp_with(&adj, &e, &ho, &cfg).unwrap();
        assert_eq!(par.geodesics.g, serial.geodesics.g, "{cfg:?}");
        assert!(
            bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
            "SBP beliefs differ under {cfg:?}"
        );
    }
}

/// The plain entry points (no explicit config) follow the environment
/// default and still agree with an explicitly serial run — the guarantee
/// that makes running the whole suite under `LSBP_THREADS=4` meaningful.
#[test]
fn env_default_entry_points_match_serial() {
    let adj = erdos_renyi_gnm(120, 360, 21).adjacency();
    let e = kronecker_style_beliefs(120, 3, 10, 2, false);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let default_run = linbp(&adj, &e, &h, &LinBpOptions::default()).unwrap();
    let serial_run = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(bits_equal(
        default_run.beliefs.residual(),
        serial_run.beliefs.residual()
    ));

    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let default_sbp = sbp(&adj, &e, &ho).unwrap();
    let serial_sbp = sbp_with(&adj, &e, &ho, &ParallelismConfig::serial()).unwrap();
    assert!(bits_equal(
        default_sbp.beliefs.residual(),
        serial_sbp.beliefs.residual()
    ));
}

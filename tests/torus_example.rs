//! End-to-end reproduction of Example 20 (the detailed worked example of
//! the paper, Fig. 4 and Fig. 5c).
//!
//! Checks every number the paper reports for the 8-node torus:
//! ρ(A) ≈ 2.414, ρ(Ĥo) ≈ 0.629, the exact convergence thresholds
//! εH ≈ 0.488 (LinBP) and ≈ 0.658 (LinBP\*), the norm-based sufficient
//! thresholds ≈ 0.360 / ≈ 0.455, the SBP standardized beliefs of v4
//! [−0.069, 1.258, −1.189], and the σ(b̂v4) ≈ 3εH·0.332 scaling law of
//! Fig. 4d.

use lsbp::prelude::*;
use lsbp_graph::generators::{fig5c_torus, TORUS_EXPLICIT_NODES, TORUS_V4};
use lsbp_linalg::spectral_radius_dense_symmetric;

fn explicit() -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(8, 3);
    e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
    e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
    e
}

#[test]
fn spectral_radii_match_paper() {
    let adj = fig5c_torus().adjacency();
    assert!((adj.spectral_radius() - 2.414).abs() < 0.001);
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    assert!((spectral_radius_dense_symmetric(&ho) - 0.629).abs() < 0.001);
}

#[test]
fn convergence_thresholds_match_paper() {
    let adj = fig5c_torus().adjacency();
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    assert!((eps_max_exact_linbp(&ho, &adj, 1e-5) - 0.488).abs() < 0.002);
    assert!((eps_max_exact_linbp_star(&ho, &adj) - 0.658).abs() < 0.002);
    assert!((eps_max_sufficient_linbp(&ho, &adj) - 0.360).abs() < 0.005);
    assert!((eps_max_sufficient_linbp_star(&ho, &adj) - 0.455).abs() < 0.005);
}

#[test]
fn sbp_v4_standardized_beliefs() {
    let graph = fig5c_torus();
    let ho = CouplingMatrix::fig1c().unwrap().residual();
    let result = sbp(&graph.adjacency(), &explicit(), &ho).unwrap();
    let std = result.beliefs.standardized(TORUS_V4);
    assert!((std[0] - -0.069).abs() < 1e-3);
    assert!((std[1] - 1.258).abs() < 1e-3);
    assert!((std[2] - -1.189).abs() < 1e-3);
    // Geodesic structure: explicit nodes at 0, v4 at 3.
    for v in TORUS_EXPLICIT_NODES {
        assert_eq!(result.geodesics.geodesic(v), Some(0));
    }
    assert_eq!(result.geodesics.geodesic(TORUS_V4), Some(3));
}

/// Fig. 4(b,c): for decreasing εH, the standardized LinBP and LinBP\*
/// beliefs of v4 converge to the SBP values.
#[test]
fn linbp_converges_to_sbp_with_decreasing_eps() {
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = explicit();
    let sbp_std = sbp(&adj, &e, &coupling.residual())
        .unwrap()
        .beliefs
        .standardized(TORUS_V4);

    let opts = LinBpOptions {
        max_iter: 10_000,
        tol: 1e-15,
        ..Default::default()
    };
    let mut last_err = f64::INFINITY;
    for eps in [0.3, 0.1, 0.03, 0.01] {
        let h = coupling.scaled_residual(eps);
        for echo in [true, false] {
            let r = if echo {
                linbp(&adj, &e, &h, &opts).unwrap()
            } else {
                linbp_star(&adj, &e, &h, &opts).unwrap()
            };
            assert!(r.converged, "eps={eps} echo={echo}");
            let std = r.beliefs.standardized(TORUS_V4);
            let err: f64 = std
                .iter()
                .zip(&sbp_std)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if echo {
                assert!(
                    err < last_err * 1.01,
                    "monotone approach: eps={eps}, err={err}"
                );
                last_err = err;
            }
            if eps <= 0.01 {
                assert!(err < 0.02, "eps={eps} echo={echo}: err={err}");
            }
        }
    }
}

/// Fig. 4(d): σ(b̂v4) = ε³H·σ(Ĥo³(ê1+ê3)) ≈ ε³H·0.332 for small εH.
#[test]
fn sigma_scaling_law() {
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = explicit();
    let opts = LinBpOptions {
        max_iter: 20_000,
        tol: 1e-16,
        ..Default::default()
    };
    for eps in [0.02, 0.01, 0.005] {
        let h = coupling.scaled_residual(eps);
        let r = linbp(&adj, &e, &h, &opts).unwrap();
        assert!(r.converged);
        let sigma = r.beliefs.std_dev(TORUS_V4);
        let predicted = eps.powi(3) * 0.332;
        assert!(
            (sigma - predicted).abs() / predicted < 0.05,
            "eps={eps}: sigma={sigma}, predicted={predicted}"
        );
    }
}

/// Fig. 4(a): standard BP's standardized beliefs at v4 also approach SBP's
/// for small εH.
#[test]
fn bp_approaches_sbp_for_small_eps() {
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = explicit();
    let sbp_std = sbp(&adj, &e, &coupling.residual())
        .unwrap()
        .beliefs
        .standardized(TORUS_V4);
    let r = bp(
        &adj,
        &e,
        &coupling.raw_at_scale(0.02),
        &BpOptions {
            max_iter: 500,
            tol: 1e-13,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.converged);
    let std = r.beliefs.standardized(TORUS_V4);
    for (a, b) in std.iter().zip(&sbp_std) {
        assert!((a - b).abs() < 0.05, "BP {std:?} vs SBP {sbp_std:?}");
    }
}

/// The εH thresholds really separate convergent from divergent *iterative*
/// behaviour (the "end of lines" in Fig. 4b/4c).
#[test]
fn iterates_diverge_past_threshold() {
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let e = explicit();
    let opts = LinBpOptions {
        max_iter: 20_000,
        tol: 1e-15,
        ..Default::default()
    };
    // LinBP: 0.488.
    let ok = linbp(&adj, &e, &coupling.scaled_residual(0.47), &opts).unwrap();
    assert!(ok.converged && !ok.diverged);
    let bad = linbp(&adj, &e, &coupling.scaled_residual(0.51), &opts).unwrap();
    assert!(bad.diverged);
    // LinBP*: 0.658.
    let ok = linbp_star(&adj, &e, &coupling.scaled_residual(0.64), &opts).unwrap();
    assert!(ok.converged && !ok.diverged);
    let bad = linbp_star(&adj, &e, &coupling.scaled_residual(0.68), &opts).unwrap();
    assert!(bad.diverged);
}

//! Contract of the fused LinBP step (PR 4): the one-pass fused kernel
//! ([`CsrMatrix::linbp_step_fused_with`]) must reproduce the unfused
//! reference composition ([`lsbp::linbp::linbp_step`] + the separate
//! convergence pass) — the ISSUE bound is 1e-12, the kernel actually
//! delivers *bitwise* equality because every sub-step keeps the unfused
//! accumulation order — and the solver entry points built on it must stay
//! bitwise identical across thread counts.

use lsbp::prelude::*;
use lsbp_bench::kronecker_style_beliefs;
use lsbp_graph::generators::{erdos_renyi_gnm, kronecker_graph};
use lsbp_linalg::Mat;
use lsbp_sparse::{CsrMatrix, FusedLinBpStep};
use proptest::prelude::*;

fn sweep() -> Vec<ParallelismConfig> {
    [1usize, 2, 8]
        .into_iter()
        .map(|t| ParallelismConfig::with_threads(t).with_min_work(1))
        .collect()
}

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `iters` unfused reference steps (`linbp_step` + max-abs pass),
/// returning the final beliefs and last delta.
#[allow(clippy::too_many_arguments)]
fn unfused_iterations(
    adj: &CsrMatrix,
    e_hat: &Mat,
    h: &Mat,
    h2: Option<&Mat>,
    degrees: &[f64],
    damping: f64,
    iters: usize,
    cfg: &ParallelismConfig,
) -> (Mat, f64) {
    let (n, k) = (e_hat.rows(), e_hat.cols());
    let mut b = e_hat.clone();
    let mut next = Mat::zeros(n, k);
    let mut scratch = LinBpScratch::new(n, k);
    let mut delta = f64::INFINITY;
    for _ in 0..iters {
        linbp_step(adj, e_hat, &b, h, h2, degrees, &mut scratch, &mut next, cfg);
        if damping > 0.0 {
            for (new, &old) in next.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *new = (1.0 - damping) * *new + damping * old;
            }
        }
        delta = next.max_abs_diff_with(&b, cfg);
        std::mem::swap(&mut b, &mut next);
    }
    (b, delta)
}

/// Same trajectory through the fused kernel.
#[allow(clippy::too_many_arguments)]
fn fused_iterations(
    adj: &CsrMatrix,
    e_hat: &Mat,
    h: &Mat,
    h2: Option<&Mat>,
    degrees: &[f64],
    damping: f64,
    iters: usize,
    cfg: &ParallelismConfig,
) -> (Mat, f64) {
    let (n, k) = (e_hat.rows(), e_hat.cols());
    let mut b = e_hat.clone();
    let mut next = Mat::zeros(n, k);
    let mut deltas = [f64::INFINITY];
    let step = FusedLinBpStep {
        e_hat,
        h,
        h2,
        degrees,
        damping,
    };
    for _ in 0..iters {
        adj.linbp_step_fused_with(&b, &step, &mut next, &mut deltas, cfg);
        std::mem::swap(&mut b, &mut next);
    }
    (b, deltas[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused vs. unfused on random graphs: within 1e-12 (the ISSUE
    /// bound) and in fact bitwise equal, for every echo/damping variant
    /// and class count — including k = 5, which exercises the generic
    /// (non-width-specialized) kernel on the single-query path.
    #[test]
    fn fused_step_matches_unfused_reference(
        n in 2usize..40,
        edges in 1usize..120,
        seed in 0u64..1000,
        k in 2usize..6,
        echo_flag in 0usize..2,
        damp_flag in 0usize..2,
    ) {
        let edges = edges.min(n * (n - 1) / 2);
        let adj = erdos_renyi_gnm(n, edges, seed).adjacency();
        let e = kronecker_style_beliefs(n, k, (n / 4).max(1), seed ^ 7, false);
        let e_hat = e.residual_matrix();
        let h = Mat::from_fn(k, k, |r, c| {
            0.07 * ((((r * k + c + seed as usize) % 11) as f64) - 5.0) / 5.0
        });
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let echo = echo_flag == 1;
        let damping = if damp_flag == 1 { 0.2 } else { 0.0 };
        let cfg = ParallelismConfig::serial();
        let (want, want_delta) = unfused_iterations(
            &adj, e_hat, &h, echo.then_some(&h2), &degrees, damping, 4, &cfg);
        let (got, got_delta) = fused_iterations(
            &adj, e_hat, &h, echo.then_some(&h2), &degrees, damping, 4, &cfg);
        prop_assert!(want.max_abs_diff(&got) <= 1e-12, "beyond the 1e-12 contract");
        prop_assert!(bits_equal(&want, &got), "fused != unfused bitwise");
        prop_assert_eq!(want_delta.to_bits(), got_delta.to_bits());
    }

    /// The fused trajectory is bitwise identical across thread counts.
    #[test]
    fn fused_iterations_bitwise_identical_across_threads(
        n in 2usize..40,
        edges in 1usize..120,
        seed in 0u64..1000,
    ) {
        let edges = edges.min(n * (n - 1) / 2);
        let adj = erdos_renyi_gnm(n, edges, seed).adjacency();
        let e = kronecker_style_beliefs(n, 3, (n / 4).max(1), seed, false);
        let e_hat = e.residual_matrix();
        let h = Mat::from_fn(3, 3, |r, c| if r == c { 0.1 } else { -0.05 });
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let serial = fused_iterations(
            &adj, e_hat, &h, Some(&h2), &degrees, 0.0, 5, &ParallelismConfig::serial());
        for cfg in sweep() {
            let par = fused_iterations(&adj, e_hat, &h, Some(&h2), &degrees, 0.0, 5, &cfg);
            prop_assert!(bits_equal(&serial.0, &par.0), "threads = {}", cfg.threads());
            prop_assert_eq!(serial.1.to_bits(), par.1.to_bits(), "threads = {}", cfg.threads());
        }
    }
}

/// The full solver entry point (now fused inside) still reproduces the
/// Prop 7 closed-form fixed point — the golden contract that lets the
/// fused rewrite ride under the existing 1e-10 tolerance.
#[test]
fn solver_on_fused_kernel_satisfies_fixed_point_equation() {
    let adj = kronecker_graph(5).adjacency();
    let n = adj.n_rows();
    let e = kronecker_style_beliefs(n, 3, n / 10, 3, false);
    // Scale safely below the exact spectral threshold (Lemma 8).
    let ho = CouplingMatrix::fig6b_residual();
    let eps = 0.5 * lsbp::convergence::eps_max_exact_linbp(&ho, &adj, 1e-4);
    let h = ho.scale(eps);
    let r = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            max_iter: 5000,
            tol: 1e-12,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.converged, "final_delta = {}", r.final_delta);
    // The fixed point satisfies B̂ = Ê + A·B̂·Ĥ − D·B̂·Ĥ² (Eq. 4): one
    // fused step applied *at* the solution must return the solution.
    let degrees = adj.squared_weight_degrees();
    let h2 = h.matmul(&h);
    let mut out = Mat::zeros(n, 3);
    let mut deltas = [0.0f64];
    adj.linbp_step_fused_with(
        r.beliefs.residual(),
        &FusedLinBpStep {
            e_hat: e.residual_matrix(),
            h: &h,
            h2: Some(&h2),
            degrees: &degrees,
            damping: 0.0,
        },
        &mut out,
        &mut deltas,
        &ParallelismConfig::serial(),
    );
    assert!(out.max_abs_diff(r.beliefs.residual()) < 1e-9);
    assert!(deltas[0] < 1e-9);
}

/// Damping flows through the fused kernel: a damped run equals the
/// damped unfused trajectory bitwise at every thread count.
#[test]
fn damped_solver_bitwise_identical_across_threads() {
    let adj = erdos_renyi_gnm(150, 450, 17).adjacency();
    let e = kronecker_style_beliefs(150, 3, 12, 9, false);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let opts = |cfg| LinBpOptions {
        damping: 0.35,
        max_iter: 60,
        tol: 0.0,
        parallelism: cfg,
        ..Default::default()
    };
    let serial = linbp(&adj, &e, &h, &opts(ParallelismConfig::serial())).unwrap();
    for cfg in sweep() {
        let par = linbp(&adj, &e, &h, &opts(cfg)).unwrap();
        assert!(
            bits_equal(par.beliefs.residual(), serial.beliefs.residual()),
            "damped LinBP differs under {cfg:?}"
        );
        assert_eq!(par.final_delta.to_bits(), serial.final_delta.to_bits());
    }
    // And the damped trajectory equals the unfused damped reference.
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();
    let (unfused, _) = unfused_iterations(
        &adj,
        e.residual_matrix(),
        &h,
        Some(&h2),
        &degrees,
        0.35,
        60,
        &ParallelismConfig::serial(),
    );
    assert!(bits_equal(&unfused, serial.beliefs.residual()));
}

//! The out-of-core contract: every propagator running on a [`PagedCsr`]
//! — the spilled shard store behind a budgeted buffer pool — must be
//! **bitwise identical** to the resident [`CsrMatrix`] path at every
//! budget × shard × thread combination, cold cache and warm cache alike.
//! Eviction pressure mid-solve must never change an answer, and damaged
//! shard files must surface as typed errors, never garbage beliefs.

use lsbp::prelude::*;
use lsbp_graph::generators::erdos_renyi_gnm;
use lsbp_linalg::Mat;
use lsbp_sparse::CsrMatrix;
use proptest::prelude::*;
use std::path::PathBuf;

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeds(n: usize, k: usize, picks: &[(usize, usize)]) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(n, k);
    for &(v, c) in picks {
        let _ = e.set_label(v % n, c % k, 1.0);
    }
    e
}

/// Per-process scratch directory for spill files; tests use distinct
/// file names so they can run concurrently.
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsbp-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Approximate resident bytes of a CSR: row pointers + columns + values.
fn csr_bytes(m: &CsrMatrix) -> usize {
    (m.n_rows() + 1) * std::mem::size_of::<usize>() + m.nnz() * (4 + 8)
}

fn assert_linbp_equal(got: &LinBpResult, want: &LinBpResult, label: &str) {
    assert_eq!(got.converged, want.converged, "{label}");
    assert_eq!(got.diverged, want.diverged, "{label}");
    assert_eq!(got.iterations, want.iterations, "{label}");
    assert_eq!(
        got.final_delta.to_bits(),
        want.final_delta.to_bits(),
        "{label}"
    );
    assert!(
        bits_equal(got.beliefs.residual(), want.beliefs.residual()),
        "{label}: paged beliefs differ from resident"
    );
}

/// The acceptance grid: budgets {tiny, half, ample} × shards {1, 2, 8}
/// × threads {1, 4}, for LinBP, LinBP*, RWR and SBP. Every cell must be
/// bitwise identical to the serial resident reference.
#[test]
fn paged_solves_match_resident_across_budget_grid() {
    let n = 60;
    let adj = erdos_renyi_gnm(n, 180, 7).adjacency();
    let e = seeds(n, 3, &[(0, 0), (13, 1), (41, 2)]);
    let coupling = CouplingMatrix::fig1c().unwrap();
    let h = coupling.scaled_residual(0.04);
    let hr = coupling.residual();
    let reference_opts = LinBpOptions {
        max_iter: 120,
        tol: 1e-10,
        parallelism: ParallelismConfig::serial(),
        ..Default::default()
    };
    let want = linbp(&adj, &e, &h, &reference_opts).unwrap();
    let want_star = linbp_star(&adj, &e, &h, &reference_opts).unwrap();
    let want_rwr = rwr(
        &adj,
        &e,
        &RwrOptions {
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        },
    )
    .unwrap();
    let want_sbp = sbp_with(&adj, &e, &hr, &ParallelismConfig::serial()).unwrap();

    let bytes = csr_bytes(&adj);
    // `tiny` cannot hold even one shard — every access misses and evicts.
    for (budget, bname) in [(1usize, "tiny"), (bytes / 2, "half"), (bytes * 4, "ample")] {
        for threads in [1usize, 4] {
            for shards in [1usize, 2, 8] {
                let cfg = ParallelismConfig::with_threads(threads)
                    .with_min_work(1)
                    .with_shards(shards)
                    .with_memory_budget(budget);
                let path = tmp(&format!("grid-{bname}-t{threads}-s{shards}.lsbp"));
                let paged = spill_paged(&adj, &path, &cfg).unwrap();
                assert!(paged.num_shards() >= 1 && paged.num_shards() <= shards);
                let label = format!("budget={bname} t={threads} s={shards}");
                let opts = LinBpOptions {
                    parallelism: cfg,
                    ..reference_opts
                };
                let got = linbp_on(&paged, &e, &h, &opts).unwrap();
                assert_linbp_equal(&got, &want, &label);
                let got_star = linbp_star_on(&paged, &e, &h, &opts).unwrap();
                assert_linbp_equal(&got_star, &want_star, &format!("{label} (star)"));
                let got_rwr = rwr_on(
                    &paged,
                    &e,
                    &RwrOptions {
                        parallelism: cfg,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(got_rwr.iterations, want_rwr.iterations, "{label}");
                assert!(
                    bits_equal(got_rwr.beliefs.residual(), want_rwr.beliefs.residual()),
                    "{label}: rwr"
                );
                let got_sbp = sbp_on(&paged, &e, &hr, &cfg).unwrap();
                assert_eq!(got_sbp.geodesics.g, want_sbp.geodesics.g, "{label}");
                assert!(
                    bits_equal(got_sbp.beliefs.residual(), want_sbp.beliefs.residual()),
                    "{label}: sbp"
                );
                // Tiny budgets must actually exercise the pager: every
                // shard visit after the first pass is still a miss.
                let stats = paged.stats();
                if bname == "tiny" {
                    assert!(
                        stats.evictions > 0,
                        "{label}: no evictions under 1-byte budget"
                    );
                }
                assert!(
                    stats.hits + stats.misses > 0,
                    "{label}: pager never touched"
                );
            }
        }
    }
}

/// A cold first solve and a warm second solve return bit-identical
/// beliefs, and a generous budget makes the warm pass all hits.
#[test]
fn cold_and_warm_solves_are_bit_identical() {
    let n = 48;
    let adj = erdos_renyi_gnm(n, 140, 11).adjacency();
    let e = seeds(n, 3, &[(3, 0), (20, 1), (33, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
    let cfg = ParallelismConfig::with_threads(2)
        .with_min_work(1)
        .with_shards(4);
    let opts = LinBpOptions {
        max_iter: 100,
        tol: 1e-10,
        parallelism: cfg,
        ..Default::default()
    };
    let path = tmp("cold-warm.lsbp");
    // Unbudgeted (no memory budget set) → everything stays resident
    // after first touch.
    let paged = spill_paged(&adj, &path, &cfg).unwrap();
    let cold = linbp_on(&paged, &e, &h, &opts).unwrap();
    let after_cold = paged.stats();
    assert!(after_cold.misses > 0, "cold run must demand-load shards");
    let warm = linbp_on(&paged, &e, &h, &opts).unwrap();
    let after_warm = paged.stats();
    assert_linbp_equal(&warm, &cold, "warm vs cold");
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm run must not touch the disk again"
    );
    assert_eq!(after_warm.evictions, 0, "unbudgeted pool must never evict");
    // Re-open the same file fresh (cold again) and match the resident run.
    let reopened = open_paged(&path, &cfg).unwrap();
    let want = linbp(&adj, &e, &h, &opts).unwrap();
    let got = linbp_on(&reopened, &e, &h, &opts).unwrap();
    assert_linbp_equal(&got, &want, "reopened vs resident");
}

/// Eviction pressure *mid-solve*: a budget that holds roughly one shard
/// forces the pool to cycle residency on every iteration of a long
/// multi-iteration solve — the answer must not change.
#[test]
fn eviction_under_pressure_mid_solve() {
    let n = 64;
    let adj = erdos_renyi_gnm(n, 220, 23).adjacency();
    let e = seeds(n, 3, &[(5, 0), (31, 1), (50, 2)]);
    let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.06);
    let shards = 8;
    // Budget ≈ one shard: walking 8 shards per iteration evicts 7 times
    // per sweep, interleaved with the solve's own vector updates.
    let budget = csr_bytes(&adj) / shards + 64;
    let cfg = ParallelismConfig::with_threads(4)
        .with_min_work(1)
        .with_shards(shards)
        .with_memory_budget(budget);
    let opts = LinBpOptions {
        max_iter: 200,
        tol: 1e-12,
        parallelism: cfg,
        ..Default::default()
    };
    let want = linbp(
        &adj,
        &e,
        &h,
        &LinBpOptions {
            parallelism: ParallelismConfig::serial(),
            ..opts
        },
    )
    .unwrap();
    let path = tmp("pressure.lsbp");
    let paged = spill_paged(&adj, &path, &cfg).unwrap();
    let got = linbp_on(&paged, &e, &h, &opts).unwrap();
    assert_linbp_equal(&got, &want, "pressure");
    let stats = paged.stats();
    assert!(
        stats.evictions >= shards as u64,
        "one-shard budget must evict continuously, saw {}",
        stats.evictions
    );
}

/// Damaged shard stores surface as typed [`ShardFileError`]s: truncation
/// is caught at `open` (or shard load), bit flips at shard load — never a
/// panic, never silently wrong data.
#[test]
fn damaged_files_are_typed_errors() {
    let adj = erdos_renyi_gnm(30, 90, 3).adjacency();
    let cfg = ParallelismConfig::serial().with_shards(3);
    let path = tmp("damaged.lsbp");
    drop(spill_paged(&adj, &path, &cfg).unwrap());
    let full = std::fs::read(&path).unwrap();

    // Truncations at every granularity: header, directory, mid-block.
    for keep in [0usize, 4, 40, full.len() / 2, full.len() - 1] {
        let tpath = tmp(&format!("trunc-{keep}.lsbp"));
        std::fs::write(&tpath, &full[..keep]).unwrap();
        let verdict = open_paged(&tpath, &cfg)
            .and_then(|p| (0..p.num_shards()).try_for_each(|i| p.load_shard(i)));
        assert!(
            verdict.is_err(),
            "truncated to {keep} of {} bytes must fail typed",
            full.len()
        );
    }

    // A flipped bit in the payload fails the block checksum on load.
    let mut flipped = full.clone();
    let last = flipped.len() - 5;
    flipped[last] ^= 0x40;
    let fpath = tmp("flipped.lsbp");
    std::fs::write(&fpath, &flipped).unwrap();
    let paged = open_paged(&fpath, &cfg).unwrap();
    let verdict = (0..paged.num_shards()).try_for_each(|i| paged.load_shard(i));
    assert!(matches!(verdict, Err(ShardFileError::ChecksumMismatch(_))));

    // Not a shard file at all.
    let gpath = tmp("garbage.lsbp");
    std::fs::write(&gpath, b"definitely not a shard store").unwrap();
    assert!(open_paged(&gpath, &cfg).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random graphs × random budgets × random shard counts: the paged
    /// LinBP run equals the resident run bitwise, and the store
    /// round-trips the exact matrix.
    #[test]
    fn paged_linbp_random(
        seed in 0u64..500,
        shards in 1usize..10,
        threads in 1usize..5,
        budget_frac in 0usize..4,
    ) {
        let n = 36;
        let adj = erdos_renyi_gnm(n, 90, seed).adjacency();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
        let e = seeds(n, 3, &[(seed as usize % n, 0), ((seed as usize * 5 + 2) % n, 1)]);
        let budget = match budget_frac {
            0 => 1,                      // thrash
            1 => csr_bytes(&adj) / 4,
            2 => csr_bytes(&adj) / 2,
            _ => usize::MAX,             // never evict
        };
        let base_opts = LinBpOptions {
            max_iter: 120,
            tol: 1e-10,
            parallelism: ParallelismConfig::serial(),
            ..Default::default()
        };
        let want = linbp(&adj, &e, &h, &base_opts).unwrap();
        let cfg = ParallelismConfig::with_threads(threads)
            .with_min_work(1)
            .with_shards(shards)
            .with_memory_budget(budget);
        let path = tmp(&format!("prop-{seed}-{shards}-{threads}-{budget_frac}.lsbp"));
        let paged = spill_paged(&adj, &path, &cfg).unwrap();
        prop_assert_eq!(paged.to_csr(), adj.clone());
        let got = linbp_on(&paged, &e, &h, &LinBpOptions { parallelism: cfg, ..base_opts }).unwrap();
        prop_assert_eq!(got.iterations, want.iterations);
        prop_assert!(bits_equal(got.beliefs.residual(), want.beliefs.residual()));
        let _ = std::fs::remove_file(&path);
    }

    /// The `shards > n_rows` edge: both the in-memory sharded layout and
    /// the spilled store collapse to at most one shard per row, tile the
    /// row space exactly, and still solve bitwise-identically.
    #[test]
    fn more_shards_than_rows_is_well_formed(
        n in 1usize..7,
        extra in 1usize..60,
        seed in 0u64..100,
    ) {
        let m = (n * n.saturating_sub(1) / 2).min(12);
        let adj = erdos_renyi_gnm(n, m, seed).adjacency();
        let shards = n + extra;
        let sharded = ShardedCsr::from_csr(&adj, shards);
        prop_assert!(sharded.num_shards() <= n.max(1));
        // Shards tile 0..n contiguously.
        let mut next = 0;
        for i in 0..sharded.num_shards() {
            let r = sharded.shard_rows(i);
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n);
        prop_assert_eq!(sharded.to_csr(), adj.clone());
        // Same edge through the paged store.
        let cfg = ParallelismConfig::serial().with_shards(shards);
        let path = tmp(&format!("edge-{n}-{extra}-{seed}.lsbp"));
        let paged = spill_paged(&adj, &path, &cfg).unwrap();
        prop_assert!(paged.num_shards() <= n.max(1));
        prop_assert_eq!(paged.to_csr(), adj.clone());
        let _ = std::fs::remove_file(&path);
    }
}

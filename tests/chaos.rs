//! Chaos suite: a live server under a seeded fault-injection storm.
//!
//! [`lsbp_net::fault`] (behind the test-only `fault-inject` feature)
//! wraps client sockets in a [`FaultInjector`] that truncates frames,
//! stalls mid-frame, flips bits, and drops connections on a seeded
//! schedule. The claims under test:
//!
//! * the server survives every fault — event loop alive, no leaked
//!   parked jobs, registry and cache intact;
//! * a panicking solve answers its own batch `Internal` and nothing
//!   else — jobs parked for other groups drain normally;
//! * after (or during) any amount of abuse, honest queries are answered
//!   **bitwise** identical to in-process library solves;
//! * a [`RetryPolicy`] recovers every idempotent request under real
//!   overload.

use lsbp::prelude::*;
use lsbp_client::{Client, ClientConfig, ClientError, RetryPolicy, RetryingClient};
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use lsbp_net::fault::{Fault, FaultInjector, FaultSchedule};
use lsbp_net::{
    ErrorCode, LinBpParams, Request, RequestEnvelope, Response, WireEdge, WireNorm, WireSeed,
    PROTOCOL_VERSION,
};
use lsbp_server::{serve, ServerConfig, ServerCore};
use lsbp_sparse::CsrMatrix;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const K: usize = 3;

fn spawn_server(config: ServerConfig) -> (SocketAddr, Arc<ServerCore>, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let core = Arc::new(ServerCore::new(config));
    let serve_core = Arc::clone(&core);
    let handle = thread::spawn(move || serve(listener, &serve_core).expect("serve"));
    (addr, core, handle)
}

fn fixture_edges() -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(usize, usize, f64)> = (0..10).map(|i| (i, (i + 1) % 10, 1.0)).collect();
    edges.extend_from_slice(&[(0, 5, 0.5), (2, 7, 1.25), (3, 8, 0.75)]);
    edges
}

fn fixture_adjacency() -> CsrMatrix {
    let mut g = Graph::new(10);
    for (s, t, w) in fixture_edges() {
        g.add_edge(s, t, w);
    }
    g.adjacency()
}

fn wire_edges() -> Vec<WireEdge> {
    fixture_edges()
        .into_iter()
        .map(|(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect()
}

fn coupling() -> Mat {
    CouplingMatrix::fig1c().unwrap().scaled_residual(0.05)
}

fn wire_params(h: &Mat) -> LinBpParams {
    LinBpParams {
        echo: true,
        k: K as u32,
        h_residual: h.as_slice().to_vec(),
        max_iter: 300,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
    }
}

fn lib_opts() -> LinBpOptions {
    LinBpOptions {
        max_iter: 300,
        tol: 1e-12,
        norm: ToleranceNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
        parallelism: ParallelismConfig::from_env(),
    }
}

fn seed_rows(shift: usize) -> Vec<(usize, [f64; K])> {
    vec![
        (shift % 10, [2.0, -1.0, -1.0]),
        ((3 + shift) % 10, [-1.0, 2.0, -1.0]),
        ((6 + shift) % 10, [-1.0, -1.0, 2.0]),
    ]
}

fn wire_seeds(shift: usize) -> Vec<WireSeed> {
    seed_rows(shift)
        .into_iter()
        .map(|(node, row)| WireSeed {
            node: node as u64,
            residual: row.to_vec(),
        })
        .collect()
}

fn lib_seeds(shift: usize) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(10, K);
    for (node, row) in seed_rows(shift) {
        e.set_residual(node, &row).unwrap();
    }
    e
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: belief mismatch at flat index {i}: {g:e} vs {w:e}"
        );
    }
}

/// Frames `payload` and pushes it through a [`FaultInjector`], ignoring
/// every I/O outcome — the injector's job is provocation, not delivery.
fn inject(addr: SocketAddr, fault: Fault, seed: u64, payload: &[u8]) {
    let Ok(stream) = TcpStream::connect(addr) else {
        return;
    };
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut injector = FaultInjector::new(stream, fault, seed);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(payload);
    let _ = injector.write_all(&frame);
    let _ = injector.flush();
    let mut sink = [0u8; 512];
    let _ = injector.read(&mut sink);
}

/// Dozens of seeded fault connections — truncations, stalls, corruption,
/// drops — against a server that must come out the other side answering
/// honest queries bitwise, with nothing parked and nothing lost.
#[test]
fn seeded_fault_storm_leaves_server_intact() {
    let (addr, core, handle) = spawn_server(ServerConfig {
        // Short enough that mid-frame stalls are reaped within the test.
        idle_timeout: Duration::from_millis(500),
        write_stall_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(1, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let baseline = client
        .solve_linbp(1, wire_params(&h), wire_seeds(0))
        .unwrap();
    let reference = linbp(&fixture_adjacency(), &lib_seeds(0), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "baseline before storm",
        &baseline.beliefs,
        reference.beliefs.residual().as_slice(),
    );

    // The storm: every connection gets a schedule-chosen fault applied
    // to a well-formed ping envelope.
    for seed in 0..32u64 {
        let mut schedule = FaultSchedule::new(seed);
        let payload = RequestEnvelope::new(seed, Request::Ping).encode();
        let fault = schedule.next_fault(payload.len() + 4);
        inject(addr, fault, schedule.next_seed(), &payload);
    }

    // The server shrugged: same connection still answers, the registry
    // and cache are intact, nothing is left parked.
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
    let health = client.health().unwrap();
    assert_eq!(health.graphs, 1, "registry survived the storm");
    assert_eq!(health.queue_depth, 0, "no leaked parked jobs");
    assert!(health.cached_entries >= 1, "cache survived the storm");

    let after = client
        .solve_linbp(1, wire_params(&h), wire_seeds(0))
        .unwrap();
    assert_bitwise("post-storm answer", &after.beliefs, &baseline.beliefs);
    // A fresh query (not cached) is also bitwise the library solve.
    let fresh = client
        .solve_linbp(1, wire_params(&h), wire_seeds(5))
        .unwrap();
    let fresh_ref = linbp(&fixture_adjacency(), &lib_seeds(5), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "post-storm fresh solve",
        &fresh.beliefs,
        fresh_ref.beliefs.residual().as_slice(),
    );
    let stats = core.stats();
    assert_eq!(stats.graphs, 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Each named fault variant, pinned explicitly (not schedule-chosen), on
/// a realistic solve request — none may wedge the event loop or leak a
/// parked job.
#[test]
fn explicit_fault_variants_never_wedge_the_loop() {
    let (addr, _core, handle) = spawn_server(ServerConfig {
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(4, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let payload = RequestEnvelope::new(
        7,
        Request::SolveLinBp {
            graph_id: 4,
            params: wire_params(&h),
            seeds: wire_seeds(0),
        },
    )
    .encode();

    let faults = [
        Fault::TruncateAfter { n: 2 }, // partial header
        Fault::TruncateAfter { n: 6 }, // header + partial body
        Fault::DropAfter { n: 5 },     // hard drop mid-frame
        Fault::StallAt {
            offset: 3,
            pause: Duration::from_millis(50),
        },
        Fault::CorruptBits { per_mille: 150 },
        Fault::None, // control: the intact frame must actually be answered
    ];
    for (i, fault) in faults.into_iter().enumerate() {
        inject(addr, fault, 1000 + i as u64, &payload);
    }

    // Nothing wedged: the typed client still gets bitwise answers and
    // the queue is empty.
    let answer = client
        .solve_linbp(4, wire_params(&h), wire_seeds(1))
        .unwrap();
    let reference = linbp(&fixture_adjacency(), &lib_seeds(1), &h, &lib_opts()).unwrap();
    assert_bitwise(
        "solve after explicit faults",
        &answer.beliefs,
        reference.beliefs.residual().as_slice(),
    );
    let health = client.health().unwrap();
    assert_eq!(health.queue_depth, 0, "no leaked parked jobs");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// A panicking solve (fault-injected via `panic_on_graph`) answers its
/// own batch `Internal` while a job parked for a *different* group
/// drains normally with a bitwise-correct answer.
#[test]
fn panicking_solve_spares_parked_jobs() {
    let core = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_secs(10),
        max_batch: 2,
        panic_on_graph: Some(666),
        ..ServerConfig::default()
    });
    for graph_id in [666, 777] {
        assert!(matches!(
            core.handle_blocking(Request::RegisterGraph {
                graph_id,
                n_nodes: 10,
                symmetric: true,
                edges: wire_edges(),
            }),
            Response::Registered { .. }
        ));
    }

    let h = coupling();
    let (tx, rx) = mpsc::channel();
    // Park one job against the healthy graph (window is long, batch of 1).
    let tx_parked = tx.clone();
    core.submit(
        Request::SolveLinBp {
            graph_id: 777,
            params: wire_params(&h),
            seeds: wire_seeds(2),
        },
        Box::new(move |r| drop(tx_parked.send(("parked", r)))),
    );
    // Two queries against the poisoned graph: batch-full triggers an
    // immediate drain, and the solve panics.
    for q in 0..2 {
        let tx = tx.clone();
        core.submit(
            Request::SolveLinBp {
                graph_id: 666,
                params: wire_params(&h),
                seeds: wire_seeds(q),
            },
            Box::new(move |r| drop(tx.send(("poisoned", r)))),
        );
    }

    // Both poisoned queries answer Internal; the event loop (and solver
    // thread) survive.
    for _ in 0..2 {
        let (who, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(who, "poisoned");
        match r {
            Response::Error { code, message, .. } => {
                assert_eq!(code, ErrorCode::Internal);
                assert!(message.contains("panic"), "message was: {message}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }
    assert_eq!(core.stats().panics_caught, 1);

    // The parked job on the healthy graph is NOT stranded: a second
    // same-group query completes its batch, and both answer bitwise.
    let tx_mate = tx.clone();
    core.submit(
        Request::SolveLinBp {
            graph_id: 777,
            params: wire_params(&h),
            seeds: wire_seeds(3),
        },
        Box::new(move |r| drop(tx_mate.send(("mate", r)))),
    );
    let adj = fixture_adjacency();
    let mut seen = 0;
    for _ in 0..2 {
        let (who, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let shift = match who {
            "parked" => 2,
            "mate" => 3,
            other => panic!("unexpected sender {other}"),
        };
        match r {
            Response::Beliefs(payload) => {
                let reference = linbp(&adj, &lib_seeds(shift), &h, &lib_opts()).unwrap();
                assert_bitwise(
                    &format!("{who} after panic"),
                    &payload.beliefs,
                    reference.beliefs.residual().as_slice(),
                );
            }
            other => panic!("{who}: expected Beliefs, got {other:?}"),
        }
        seen += 1;
    }
    assert_eq!(seen, 2);
}

/// Real overload (one admission slot, many clients): every idempotent
/// request is eventually recovered by its retry policy, each answer
/// bitwise the library solve.
#[test]
fn retry_policy_recovers_every_idempotent_request() {
    let (addr, core, handle) = spawn_server(ServerConfig {
        coalesce_window: Duration::from_millis(100),
        max_pending: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.register_graph(5, 10, true, wire_edges()).unwrap();

    let h = coupling();
    let clients = 6;
    let results: Vec<Result<(usize, Vec<f64>), ClientError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let h = &h;
                scope.spawn(move || {
                    let mut retrying = RetryingClient::new(
                        addr.to_string(),
                        ClientConfig::default(),
                        RetryPolicy {
                            max_attempts: 12,
                            base_delay: Duration::from_millis(20),
                            max_delay: Duration::from_millis(400),
                            seed: 0xC0FFEE + t as u64,
                        },
                    );
                    retrying
                        .solve_linbp(5, wire_params(h), &wire_seeds(t))
                        .map(|p| (t, p.beliefs))
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let adj = fixture_adjacency();
    for result in results {
        let (t, beliefs) = result.expect("every idempotent request must be recovered");
        let reference = linbp(&adj, &lib_seeds(t), &h, &lib_opts()).unwrap();
        assert_bitwise(
            &format!("retried client {t}"),
            &beliefs,
            reference.beliefs.residual().as_slice(),
        );
    }
    // The fixture must have caused genuine overload, or the test proves
    // nothing about retries.
    assert!(
        core.stats().rejected_overloaded >= 1,
        "expected at least one Overloaded rejection"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_with_setup`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark a
//! bounded number of timed passes and prints the median — enough for the
//! relative comparisons the paper's figures make (LinBP vs. SBP per-edge
//! work, CSR kernels vs. naive loops), with none of the dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, as criterion provides.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark labelled `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.run_samples(&mut f);
        self.report(&id.id, &samples);
        self
    }

    /// Runs `f` with `input` as a benchmark labelled `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let samples = self.run_samples(&mut |b: &mut Bencher| f(b, input));
        self.report(&id.id, &samples);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}

    fn run_samples<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> Vec<Duration> {
        let n = self.sample_size;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {}/{}: median {:?} over {} samples",
            self.name,
            id,
            median,
            samples.len()
        );
    }
}

/// Passed to benchmark closures to time the measured region.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Minimum measured span per sample: below this, a single `Instant`
    /// pair is dominated by timer resolution, so the batch size doubles
    /// until the accumulated routine time crosses it.
    const MIN_SPAN: Duration = Duration::from_millis(2);

    /// Times repeated calls of `f`, reporting the mean per call. Batches
    /// of doubling size run until the total crosses [`Bencher::MIN_SPAN`],
    /// so sub-microsecond kernels are averaged over many calls while a
    /// single slow call is timed once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch = 1u32;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let total = start.elapsed();
            if total >= Self::MIN_SPAN || batch >= 1 << 20 {
                self.elapsed = total / batch;
                return;
            }
            batch *= 2;
        }
    }

    /// Times repeated calls of `routine` (mean per call), re-running
    /// `setup` before every call and excluding its time from the measure.
    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let mut calls = 0u32;
        let mut total = Duration::ZERO;
        while total < Self::MIN_SPAN && calls < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            calls += 1;
        }
        self.elapsed = total / calls.max(1);
    }
}

/// Declares a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

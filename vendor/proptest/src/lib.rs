//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this miniature
//! implements the same *surface*: range and tuple strategies,
//! `prop_map` / `prop_flat_map`, `collection::vec`, the `proptest!` test
//! runner macro and the `prop_assert!` / `prop_assert_eq!` macros.
//! There is no shrinking — a failing case reports its seed and values
//! instead — which is an acceptable trade for a hermetic, deterministic
//! test suite (cases are derived from a fixed per-test seed).

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG threaded through strategy generation.
pub type TestRng = StdRng;

/// Error produced by a failing `prop_assert!` within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing the same value every time.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[doc(hidden)]
pub use rand as __rand;

/// Derives a per-test deterministic seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {} at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {} failed (seed {seed}): {e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

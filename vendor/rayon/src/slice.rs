//! `par_chunks` / `par_chunks_mut` — the slice helpers of
//! `rayon::slice`, restricted to the `for_each` terminal (optionally
//! through `enumerate`) that this workspace uses.

use crate::ThreadPool;

/// Parallel read-only chunk iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits the slice into chunks of at most `chunk_size` elements for
    /// parallel consumption.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel mutable chunk iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into disjoint mutable chunks of at most
    /// `chunk_size` elements for parallel consumption.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// The persistent pool chunk iterations dispatch to: the innermost
/// [`ThreadPool::install`], or the process-global pool.
fn pool() -> ThreadPool {
    crate::current_pool()
}

/// Pending parallel iteration over read-only chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunks<'a, T> {
        EnumeratedParChunks(self)
    }

    /// Applies `f` to every chunk, potentially in parallel.
    pub fn for_each(self, f: impl Fn(&[T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// [`ParChunks`] with indices attached.
pub struct EnumeratedParChunks<'a, T>(ParChunks<'a, T>);

impl<T: Sync> EnumeratedParChunks<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair, potentially in parallel.
    pub fn for_each(self, f: impl Fn((usize, &[T])) + Sync) {
        let f = &f;
        pool().scope(|s| {
            for (i, chunk) in self.0.slice.chunks(self.0.chunk_size).enumerate() {
                s.spawn(move || f((i, chunk)));
            }
        });
    }
}

/// Pending parallel iteration over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut(self)
    }

    /// Applies `f` to every chunk, potentially in parallel.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// [`ParChunksMut`] with indices attached.
pub struct EnumeratedParChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair, potentially in parallel.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        let f = &f;
        pool().scope(|s| {
            for (i, chunk) in self.0.slice.chunks_mut(self.0.chunk_size).enumerate() {
                s.spawn(move || f((i, chunk)));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data: Vec<i64> = (0..103).collect();
        data.par_chunks_mut(10).for_each(|chunk| {
            for x in chunk {
                *x *= 2;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 2 * i as i64);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_indices() {
        let mut data = [0usize; 25];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 4);
        }
    }

    #[test]
    fn par_chunks_read_sums() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let data: Vec<i64> = (1..=100).collect();
        let total = AtomicI64::new(0);
        data.par_chunks(7).for_each(|chunk| {
            total.fetch_add(chunk.iter().sum::<i64>(), Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }
}

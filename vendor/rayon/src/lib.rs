#![warn(missing_docs)]

//! Offline stand-in for the subset of `rayon` this workspace uses, built
//! around a **persistent worker pool**.
//!
//! The build environment cannot reach crates.io, so this miniature
//! implements the same *surface* the compute crates need — a
//! [`ThreadPool`] (built with [`ThreadPoolBuilder`]), [`join`], a deferred
//! [`scope`]/[`Scope::spawn`] pair, and `par_chunks`/`par_chunks_mut`
//! slice helpers ([`slice`]) — but, unlike the earlier scoped-spawn
//! version, parallel regions dispatch to **long-lived resident workers**
//! instead of spawning fresh OS threads per region:
//!
//! * Every [`ThreadPool`] is a handle onto a [`Registry`]: a set of worker
//!   threads that park on a condvar between regions and wake when work is
//!   injected. Workers are spawned lazily (a pool that never runs a
//!   parallel region owns no OS threads) and live until the last handle to
//!   their registry drops. Dispatching a region costs two mutex hops and a
//!   wake instead of thread creation (~tens of µs saved per region, which
//!   is what makes small kernels worth parallelizing at all).
//! * A parallel region is a batch of tasks pushed into the registry's
//!   shared **injector queue**. Idle workers pull tasks one at a time, so
//!   load balances dynamically like work stealing, just with one lock; the
//!   submitting thread participates too (it drains the same queue), so a
//!   pool of `t` threads still means `t` compute threads and a region can
//!   always make progress even when every resident worker is busy —
//!   nested regions degrade to caller-executed serial work instead of
//!   deadlocking.
//! * [`Scope::spawn`] *defers* tasks: they start when the closure passed
//!   to [`scope`] returns, and [`scope`] returns only after every task
//!   finished. Observable behavior at the join point is the same as real
//!   rayon's.
//!
//! Free functions ([`join`], [`scope`], the slice helpers) run on the
//! lazily-initialized **global pool**, whose size honors the
//! `LSBP_THREADS` environment variable (read **once** per process at
//! first use — see [`default_num_threads`] and the
//! [`set_default_num_threads`] test override). [`shared_pool`] hands out
//! cached persistent pools for non-default thread counts, so callers that
//! sweep thread counts (benchmarks, property tests) also reuse resident
//! workers instead of re-spawning.
//!
//! # Safety
//!
//! Tasks may borrow from the submitting thread's stack (`'env`
//! lifetimes), while resident workers are `'static` threads — bridging
//! the two requires erasing the task lifetime (the same move
//! `std::thread::scope` makes internally). Soundness rests on one
//! invariant, enforced by [`run_region`]: **the submitting call does not
//! return — not even by panic — until every task of its region has
//! finished executing**, so no erased borrow can outlive its referent.
//! Panicking tasks are caught on the worker, carried back, and re-thrown
//! on the submitting thread after the region completes.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod slice;

/// Convenient re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Hard cap on configurable thread counts (guards absurd `LSBP_THREADS`
/// values; far above anything this workspace's kernels can exploit).
pub const MAX_THREADS: usize = 256;

/// Parses a thread-count override, falling back to `fallback` when the
/// value is absent, non-numeric, or out of the `1..=MAX_THREADS` range.
/// A set-but-unusable value also yields a warning naming the variable and
/// the fallback — a silently-ignored `LSBP_THREADS=abc` would otherwise
/// look exactly like a deliberate hardware-sized run.
fn parse_thread_env(value: Option<&str>, fallback: usize) -> (usize, Option<String>) {
    let Some(raw) = value else {
        return (fallback, None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if (1..=MAX_THREADS).contains(&n) => (n, None),
        _ => (
            fallback,
            Some(format!(
                "lsbp: ignoring invalid LSBP_THREADS={raw:?} (expected an integer in \
                 1..={MAX_THREADS}); falling back to {fallback} thread(s)"
            )),
        ),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_THREADS))
        .unwrap_or(1)
}

/// The process-wide default thread-count cell. Initialized exactly once —
/// by [`set_default_num_threads`] if that runs first, otherwise from the
/// environment on the first [`default_num_threads`] call.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// The process-wide default thread count: `LSBP_THREADS` if set to a value
/// in `1..=MAX_THREADS`, otherwise [`std::thread::available_parallelism`].
///
/// The environment is consulted **exactly once** per process — at the
/// first call (equivalently: at global-pool initialization, which calls
/// this) — and the parsed value is cached for the process lifetime.
pub fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        let (threads, warning) = parse_thread_env(
            std::env::var("LSBP_THREADS").ok().as_deref(),
            hardware_threads(),
        );
        if let Some(message) = warning {
            eprintln!("{message}");
        }
        threads
    })
}

/// Installs `threads` (clamped to `1..=MAX_THREADS`) as the process-wide
/// default *before* the environment has been read — the documented
/// override for tests that must not depend on the ambient `LSBP_THREADS`.
///
/// Returns `Err` with the already-cached value when the default was
/// fixed earlier (by a previous call or by any code path that already
/// asked for [`default_num_threads`]); the global pool may already be
/// running at that size. Call it first thing in the process (each cargo
/// integration-test binary is its own process).
pub fn set_default_num_threads(threads: usize) -> Result<(), usize> {
    let t = threads.clamp(1, MAX_THREADS);
    DEFAULT_THREADS
        .set(t)
        .map_err(|_| *DEFAULT_THREADS.get().expect("default just observed set"))
}

// ---------------------------------------------------------------------------
// Regions: one parallel dispatch = one region.
// ---------------------------------------------------------------------------

/// A task whose environment lifetime has been erased (see the module-level
/// safety note).
type RawTask = Box<dyn FnOnce() + Send>;

/// One parallel region: a queue of tasks plus the completion latch the
/// submitting thread blocks on.
struct Region {
    state: Mutex<RegionState>,
    /// Signalled when `pending` reaches 0.
    done: Condvar,
}

struct RegionState {
    tasks: VecDeque<RawTask>,
    /// Tasks not yet *finished* (queued + currently running).
    pending: usize,
    /// First panic payload raised by any task of this region.
    panic: Option<Box<dyn Any + Send>>,
}

impl Region {
    fn new(tasks: VecDeque<RawTask>) -> Self {
        let pending = tasks.len();
        Region {
            state: Mutex::new(RegionState {
                tasks,
                pending,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Pops and runs tasks until the queue is empty. Called by resident
    /// workers and by the submitting thread alike; panics are caught and
    /// parked in the region for the submitter to re-throw.
    fn drain(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().expect("region state poisoned");
                st.tasks.pop_front()
            };
            let Some(task) = task else { return };
            let result = catch_unwind(AssertUnwindSafe(task));
            let mut st = self.state.lock().expect("region state poisoned");
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.pending -= 1;
            if st.pending == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every task finished, then returns the first panic
    /// payload (if any).
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("region state poisoned");
        while st.pending > 0 {
            st = self.done.wait(st).expect("region state poisoned");
        }
        st.panic.take()
    }
}

// ---------------------------------------------------------------------------
// Registry: the resident workers behind one or more ThreadPool handles.
// ---------------------------------------------------------------------------

/// State shared between pool handles and resident workers.
struct RegistryShared {
    inject: Mutex<Injector>,
    /// Signalled when worker slots are injected (or on shutdown).
    work: Condvar,
}

/// The injector queue. Each entry is one *worker slot* for a region: a
/// region needing `w` helpers is pushed `w` times, and each waking worker
/// pops one entry and drains that region. Stale slots (region already
/// drained) are popped and dropped harmlessly.
struct Injector {
    slots: VecDeque<Arc<Region>>,
    shutdown: bool,
}

/// A set of resident worker threads. Workers are spawned lazily, park on
/// [`RegistryShared::work`] between regions, and exit when the registry
/// shuts down (last [`ThreadPool`] handle dropped).
struct Registry {
    shared: Arc<RegistryShared>,
    /// Maximum resident workers: pool threads − 1 (the submitting thread
    /// is the remaining compute thread of every region).
    capacity: usize,
    spawn: Mutex<SpawnState>,
}

struct SpawnState {
    spawned: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Registry {
    fn new(threads: usize) -> Self {
        Registry {
            shared: Arc::new(RegistryShared {
                inject: Mutex::new(Injector {
                    slots: VecDeque::new(),
                    shutdown: false,
                }),
                work: Condvar::new(),
            }),
            capacity: threads.saturating_sub(1),
            spawn: Mutex::new(SpawnState {
                spawned: 0,
                handles: Vec::new(),
            }),
        }
    }

    /// Injects `slots` worker slots for `region`, lazily spawning resident
    /// workers up to the registry capacity.
    fn submit(&self, region: &Arc<Region>, slots: usize) {
        let want = slots.min(self.capacity);
        if want == 0 {
            return;
        }
        {
            let mut sp = self.spawn.lock().expect("registry spawn state poisoned");
            while sp.spawned < want {
                let shared = Arc::clone(&self.shared);
                let name = format!("lsbp-worker-{}", sp.spawned);
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(shared))
                    .expect("could not spawn resident worker thread");
                sp.handles.push(handle);
                sp.spawned += 1;
            }
        }
        {
            let mut inj = self.shared.inject.lock().expect("injector poisoned");
            for _ in 0..want {
                inj.slots.push_back(Arc::clone(region));
            }
        }
        for _ in 0..want {
            self.shared.work.notify_one();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        {
            let mut inj = self.shared.inject.lock().expect("injector poisoned");
            inj.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles = std::mem::take(
            &mut self
                .spawn
                .lock()
                .expect("registry spawn state poisoned")
                .handles,
        );
        for h in handles {
            // A worker only exits its loop between tasks; nothing here can
            // panic, so join failures are impossible in practice.
            let _ = h.join();
        }
    }
}

/// The resident worker main loop: pop a region slot, drain the region,
/// park again. Exits on registry shutdown.
fn worker_loop(shared: Arc<RegistryShared>) {
    loop {
        let region = {
            let mut inj = shared.inject.lock().expect("injector poisoned");
            loop {
                if let Some(region) = inj.slots.pop_front() {
                    break region;
                }
                if inj.shutdown {
                    return;
                }
                inj = shared.work.wait(inj).expect("injector poisoned");
            }
        };
        region.drain();
    }
}

/// Erases the environment lifetime of a task so it can be handed to a
/// `'static` resident worker.
///
/// # Safety
/// The caller must guarantee the task has *finished executing* (or been
/// dropped unexecuted) before anything it borrows is invalidated.
/// [`run_region`] upholds this by blocking — through panics too — until
/// the region's completion latch fires.
unsafe fn erase_task<'env>(task: Box<dyn FnOnce() + Send + 'env>) -> RawTask {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, RawTask>(task)
}

/// Executes `tasks` as one parallel region on `registry`, with the caller
/// participating as one compute thread alongside up to `threads − 1`
/// resident workers. Serial fallback (spawn order, no erasure) when the
/// region is trivial or the pool is single-threaded.
fn run_region<'env>(
    registry: &Registry,
    threads: usize,
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
) {
    if tasks.is_empty() {
        return;
    }
    if threads <= 1 || tasks.len() <= 1 || registry.capacity == 0 {
        for task in tasks {
            task();
        }
        return;
    }
    // SAFETY: this function blocks until `region.wait()` observes every
    // task finished — including when a caller-drained task panics (drain
    // catches it) — so the erased borrows cannot dangle.
    let raw: VecDeque<RawTask> = tasks
        .into_iter()
        .map(|t| unsafe { erase_task(t) })
        .collect();
    let helpers = (threads - 1).min(raw.len());
    let region = Arc::new(Region::new(raw));
    registry.submit(&region, helpers);
    region.drain();
    if let Some(payload) = region.wait() {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// ThreadPool: the public handle.
// ---------------------------------------------------------------------------

/// Error from [`ThreadPoolBuilder::build`] (kept for API compatibility;
/// this implementation cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "could not build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`], mirroring rayon's.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; 0 (the default) means
    /// [`default_num_threads`].
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds a pool owning its own (dedicated) registry of resident
    /// workers. Workers are spawned lazily on the first parallel region
    /// and shut down when the last clone of the pool drops.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads.min(MAX_THREADS)
        };
        Ok(ThreadPool::with_registry(threads))
    }
}

/// A persistent thread pool: a cheaply clonable handle onto a registry of
/// long-lived parked workers. Parallel regions ([`ThreadPool::scope`],
/// [`ThreadPool::join`]) wake resident workers instead of spawning
/// threads; the workers are reused across regions for the lifetime of the
/// pool. The submitting thread always participates in its own region, so
/// a pool of `t` threads runs regions on `t` compute threads (caller +
/// `t − 1` residents).
#[derive(Clone)]
pub struct ThreadPool {
    threads: usize,
    registry: Arc<Registry>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    fn with_registry(threads: usize) -> Self {
        ThreadPool {
            threads,
            registry: Arc::new(Registry::new(threads)),
        }
    }

    /// The number of worker threads parallel regions of this pool use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed as the current one:
    /// [`current_num_threads`] (and thus the free [`join`]/[`scope`] and
    /// the slice helpers) dispatch to this pool inside `op`.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_POOL.with(|c| c.replace(Some(self.clone())));
        // Restore on unwind too, so a panicking op does not leak the
        // override into unrelated code on this thread.
        struct Restore(Option<ThreadPool>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                INSTALLED_POOL.with(|c| *c.borrow_mut() = previous);
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// Runs the two closures, potentially in parallel, returning both
    /// results. `oper_a` runs on the calling thread; `oper_b` is offered
    /// to a resident worker and stolen back by the caller if no worker
    /// picked it up by the time `oper_a` finishes. With one thread this
    /// degenerates to sequential calls.
    pub fn join<RA, RB>(
        &self,
        oper_a: impl FnOnce() -> RA + Send,
        oper_b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 || self.registry.capacity == 0 {
            return (oper_a(), oper_b());
        }
        let mut rb: Option<RB> = None;
        let rb_slot = &mut rb;
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            *rb_slot = Some(oper_b());
        });
        // SAFETY: as in `run_region` — this function waits for the region
        // (even when `oper_a` panics) before any borrow dies.
        let raw: VecDeque<RawTask> = std::iter::once(unsafe { erase_task(task) }).collect();
        let region = Arc::new(Region::new(raw));
        self.registry.submit(&region, 1);
        let ra = catch_unwind(AssertUnwindSafe(oper_a));
        region.drain(); // steal oper_b back if still queued
        let region_panic = region.wait();
        match ra {
            Err(payload) => resume_unwind(payload),
            Ok(ra) => {
                if let Some(payload) = region_panic {
                    resume_unwind(payload);
                }
                (ra, rb.expect("oper_b completed without result"))
            }
        }
    }

    /// Creates a [`Scope`]: tasks spawned inside `f` run after `f`
    /// returns, distributed over this pool's resident workers (plus the
    /// calling thread), and `scope` returns once every task finished. A
    /// panicking task propagates the panic to the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let sc = Scope {
            tasks: Mutex::new(Vec::new()),
        };
        let result = f(&sc);
        let tasks = sc.tasks.into_inner().expect("scope task queue poisoned");
        run_region(&self.registry, self.threads, tasks);
        result
    }
}

/// A collection point for deferred parallel tasks — see
/// [`ThreadPool::scope`] / [`scope`].
pub struct Scope<'env> {
    #[allow(clippy::type_complexity)] // the canonical boxed-task type
    tasks: Mutex<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution when the enclosing scope closure
    /// returns. Tasks may borrow from the environment.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.tasks
            .lock()
            .expect("scope task queue poisoned")
            .push(Box::new(task));
    }
}

// ---------------------------------------------------------------------------
// Global + cached pools, install machinery, free functions.
// ---------------------------------------------------------------------------

thread_local! {
    /// Pool override installed by [`ThreadPool::install`].
    static INSTALLED_POOL: RefCell<Option<ThreadPool>> = const { RefCell::new(None) };
}

/// The lazily-initialized global pool backing the free functions; sized by
/// [`default_num_threads`] (i.e. honoring `LSBP_THREADS`). Its workers are
/// created on the first parallel region and live for the process.
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::with_registry(default_num_threads()))
}

/// A process-shared persistent pool of exactly `threads` compute threads
/// (clamped to `1..=MAX_THREADS`). The default thread count maps to the
/// [`global_pool`]; other counts are built once and cached, so repeated
/// kernel calls (and thread-count sweeps) reuse resident workers instead
/// of constructing pools per call. Cached pools live for the process.
pub fn shared_pool(threads: usize) -> ThreadPool {
    let threads = threads.clamp(1, MAX_THREADS);
    if threads == default_num_threads() {
        return global_pool().clone();
    }
    static CACHE: OnceLock<Mutex<Vec<ThreadPool>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = cache.lock().expect("shared pool cache poisoned");
    if let Some(pool) = pools.iter().find(|p| p.threads == threads) {
        return pool.clone();
    }
    let pool = ThreadPool::with_registry(threads);
    pools.push(pool.clone());
    pool
}

/// The pool the free functions dispatch to: the innermost
/// [`ThreadPool::install`], or the [`global_pool`].
pub(crate) fn current_pool() -> ThreadPool {
    INSTALLED_POOL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| global_pool().clone())
}

/// The thread count parallel operations on this thread will use: the
/// innermost [`ThreadPool::install`], or [`default_num_threads`].
pub fn current_num_threads() -> usize {
    INSTALLED_POOL
        .with(|c| c.borrow().as_ref().map(|p| p.threads))
        .unwrap_or_else(default_num_threads)
}

/// [`ThreadPool::join`] on the current pool.
pub fn join<RA, RB>(
    oper_a: impl FnOnce() -> RA + Send,
    oper_b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    current_pool().join(oper_a, oper_b)
}

/// [`ThreadPool::scope`] on the current pool.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    current_pool().scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread::ThreadId;

    #[test]
    fn parse_thread_env_rules() {
        // Usable values parse silently.
        assert_eq!(parse_thread_env(None, 7), (7, None));
        assert_eq!(parse_thread_env(Some("4"), 7), (4, None));
        assert_eq!(parse_thread_env(Some(" 2 "), 7), (2, None));
        assert_eq!(parse_thread_env(Some("1"), 7), (1, None));
        // Set-but-unusable values fall back AND carry a warning that
        // names the variable, the rejected value, and the fallback.
        for bad in ["0", "-3", "lots", "99999", ""] {
            let (threads, warning) = parse_thread_env(Some(bad), 7);
            assert_eq!(threads, 7, "LSBP_THREADS={bad:?} must fall back");
            let warning = warning.expect("invalid value must warn");
            assert!(
                warning.contains("LSBP_THREADS"),
                "warning names the variable"
            );
            assert!(warning.contains(bad), "warning echoes the rejected value");
            assert!(warning.contains('7'), "warning names the fallback");
        }
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (a, b) = pool.join(|| 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn scope_runs_every_task() {
        for threads in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let counter = AtomicUsize::new(0);
            let mut data = [0usize; 23];
            pool.scope(|s| {
                for (i, slot) in data.iter_mut().enumerate() {
                    let counter = &counter;
                    s.spawn(move || {
                        *slot = i * i;
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 23);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i * i);
            }
        }
    }

    /// Regions are reused across invocations of the same pool: many
    /// consecutive scopes on one pool all complete (workers re-park and
    /// re-wake correctly).
    #[test]
    fn repeated_regions_on_one_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for round in 0..50usize {
            let counter = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..7 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 7, "round {round}");
        }
    }

    /// The satellite contract: worker thread-ids are **stable across
    /// consecutive regions** — tasks run on the same resident OS threads,
    /// not on freshly spawned ones. (Rust `ThreadId`s are never reused
    /// within a process, so a fresh-spawning pool could not pass this.)
    #[test]
    fn worker_thread_ids_stable_across_regions() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let main_id = std::thread::current().id();
        let run_region_ids = || -> Vec<ThreadId> {
            let ids = Mutex::new(Vec::new());
            let barrier = Barrier::new(2);
            pool.scope(|s| {
                for _ in 0..2 {
                    let ids = &ids;
                    let barrier = &barrier;
                    s.spawn(move || {
                        ids.lock().unwrap().push(std::thread::current().id());
                        // Rendezvous forces caller + resident worker to run
                        // one task each, concurrently.
                        barrier.wait();
                    });
                }
            });
            ids.into_inner().unwrap()
        };
        let first = run_region_ids();
        let second = run_region_ids();
        let workers = |ids: &[ThreadId]| -> Vec<ThreadId> {
            ids.iter().copied().filter(|&id| id != main_id).collect()
        };
        let (w1, w2) = (workers(&first), workers(&second));
        assert_eq!(
            w1.len(),
            1,
            "one task per region runs on the resident worker"
        );
        assert_eq!(w2.len(), 1);
        assert_eq!(w1, w2, "the resident worker must be the same OS thread");
    }

    /// A pool never uses more distinct worker threads than its size − 1
    /// (the caller is the remaining compute thread), across many regions.
    #[test]
    fn worker_set_is_bounded_by_pool_size() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let main_id = std::thread::current().id();
        let seen = Mutex::new(HashSet::new());
        for _ in 0..20 {
            pool.scope(|s| {
                for _ in 0..6 {
                    let seen = &seen;
                    s.spawn(move || {
                        seen.lock().unwrap().insert(std::thread::current().id());
                    });
                }
            });
        }
        let mut distinct = seen.into_inner().unwrap();
        distinct.remove(&main_id);
        assert!(
            distinct.len() <= 2,
            "3-thread pool must own at most 2 resident workers, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn install_overrides_current_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Restored afterwards.
        assert_eq!(current_num_threads(), default_num_threads());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn scope_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.scope(|s| {
            s.spawn(|| {});
            s.spawn(|| panic!("boom"));
        });
    }

    /// A panic in `join`'s first closure still waits for the second task
    /// before unwinding (no dangling borrows), and re-raises the original
    /// payload.
    #[test]
    #[should_panic(expected = "join-a")]
    fn join_panic_in_a_is_safe() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let data = [1u8, 2, 3];
        let _ = pool.join(
            || panic!("join-a"),
            || data.iter().map(|&x| x as usize).sum::<usize>(),
        );
    }

    #[test]
    #[should_panic(expected = "join-b")]
    fn join_panic_in_b_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let _ = pool.join(|| 1 + 1, || -> usize { panic!("join-b") });
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), default_num_threads());
    }

    #[test]
    fn shared_pool_is_cached() {
        let a = shared_pool(5);
        let b = shared_pool(5);
        assert!(
            Arc::ptr_eq(&a.registry, &b.registry),
            "same thread count must map to the same resident registry"
        );
        let default = shared_pool(default_num_threads());
        assert!(Arc::ptr_eq(&default.registry, &global_pool().registry));
    }

    /// Nested regions (a scope inside a scoped task) complete without
    /// deadlocking: the inner region's submitter drains its own queue.
    #[test]
    fn nested_scopes_complete() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let inner_pool = pool.clone();
                s.spawn(move || {
                    inner_pool.scope(|s2| {
                        for _ in 0..3 {
                            s2.spawn(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    }
}

#![warn(missing_docs)]

//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this miniature
//! implements the same *surface* the compute crates need: a lightweight
//! [`ThreadPool`] (built with [`ThreadPoolBuilder`]), [`join`], a deferred
//! [`scope`]/[`Scope::spawn`] pair, and `par_chunks`/`par_chunks_mut`
//! slice helpers ([`slice`]).
//!
//! Design differences from real rayon, chosen for a small, fully safe
//! implementation:
//!
//! * There is no global registry of persistent worker threads. A
//!   [`ThreadPool`] is a plain handle holding a thread count; every
//!   parallel region spawns that many workers on [`std::thread::scope`]
//!   and joins them before returning. Spawn cost (~tens of µs) is
//!   amortized by only going parallel for large inputs — the compute
//!   crates gate on a minimum work size.
//! * Scheduling is a shared task queue instead of per-worker deques:
//!   idle workers pull the next task, so load balances dynamically like
//!   work stealing, just with one lock. Tasks are coarse (one per
//!   partition, a handful per thread), so the lock is never contended
//!   enough to matter.
//! * [`Scope::spawn`] *defers* tasks: they start when the closure passed
//!   to [`scope`] returns, and [`scope`] returns only after every task
//!   finished. Observable behavior at the join point is the same.
//!
//! The default thread count comes from the `LSBP_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`]; it is
//! read once per process and cached.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

pub mod slice;

/// Convenient re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Hard cap on configurable thread counts (guards absurd `LSBP_THREADS`
/// values; far above anything this workspace's kernels can exploit).
pub const MAX_THREADS: usize = 256;

/// Parses a thread-count override, falling back to `fallback` when the
/// value is absent, non-numeric, or out of the `1..=MAX_THREADS` range.
fn parse_thread_env(value: Option<&str>, fallback: usize) -> usize {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| (1..=MAX_THREADS).contains(&n))
        .unwrap_or(fallback)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_THREADS))
        .unwrap_or(1)
}

/// The process-wide default thread count: `LSBP_THREADS` if set to a value
/// in `1..=MAX_THREADS`, otherwise [`std::thread::available_parallelism`].
/// Read once and cached for the life of the process.
pub fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_thread_env(
            std::env::var("LSBP_THREADS").ok().as_deref(),
            hardware_threads(),
        )
    })
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "not installed".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The thread count parallel operations on this thread will use: the
/// innermost [`ThreadPool::install`], or [`default_num_threads`].
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed == 0 {
        default_num_threads()
    } else {
        installed
    }
}

/// Error from [`ThreadPoolBuilder::build`] (kept for API compatibility;
/// this implementation cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "could not build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`], mirroring rayon's.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; 0 (the default) means
    /// [`default_num_threads`].
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads.min(MAX_THREADS)
        };
        Ok(ThreadPool { threads })
    }
}

/// A scoped thread pool: a plain handle carrying a thread count. Parallel
/// regions ([`ThreadPool::scope`], [`ThreadPool::join`]) spawn scoped
/// workers on demand and join them before returning, so the pool holds no
/// OS resources and is trivially cheap to create, copy and drop.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The number of worker threads parallel regions of this pool use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed as the current one:
    /// [`current_num_threads`] (and thus the free [`join`]/[`scope`])
    /// observe this pool's thread count inside `op`.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.threads));
        // Restore on unwind too, so a panicking op does not leak the
        // override into unrelated code on this thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// Runs the two closures, potentially in parallel, returning both
    /// results. With one thread this degenerates to sequential calls.
    pub fn join<RA, RB>(
        &self,
        oper_a: impl FnOnce() -> RA + Send,
        oper_b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            (oper_a(), oper_b())
        } else {
            std::thread::scope(|s| {
                let handle_b = s.spawn(oper_b);
                let ra = oper_a();
                let rb = handle_b
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                (ra, rb)
            })
        }
    }

    /// Creates a [`Scope`]: tasks spawned inside `f` run after `f` returns,
    /// distributed over this pool's workers, and `scope` returns once every
    /// task finished. A panicking task propagates the panic to the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let sc = Scope {
            tasks: Mutex::new(Vec::new()),
        };
        let result = f(&sc);
        let tasks = sc.tasks.into_inner().expect("scope task queue poisoned");
        run_tasks(tasks, self.threads);
        result
    }
}

/// A collection point for deferred parallel tasks — see
/// [`ThreadPool::scope`] / [`scope`].
pub struct Scope<'env> {
    #[allow(clippy::type_complexity)] // the canonical boxed-task type
    tasks: Mutex<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution when the enclosing scope closure
    /// returns. Tasks may borrow from the environment.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.tasks
            .lock()
            .expect("scope task queue poisoned")
            .push(Box::new(task));
    }
}

/// Executes queued tasks on up to `threads` scoped workers pulling from a
/// shared queue (dynamic load balancing); serially in spawn order when
/// `threads <= 1` or there is at most one task.
fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>, threads: usize) {
    if threads <= 1 || tasks.len() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let workers = threads.min(tasks.len());
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    // Take the lock only long enough to pop one task.
                    let task = match queue.lock() {
                        Ok(mut guard) => guard.next(),
                        // Another worker panicked mid-pop; stop pulling.
                        Err(_) => break,
                    };
                    match task {
                        Some(task) => task(),
                        None => break,
                    }
                })
            })
            .collect();
        // Join explicitly so a panicking task re-raises its own payload
        // (scope's implicit join would replace it with a generic message).
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// [`ThreadPool::join`] on the current thread count.
pub fn join<RA, RB>(
    oper_a: impl FnOnce() -> RA + Send,
    oper_b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    ThreadPool {
        threads: current_num_threads(),
    }
    .join(oper_a, oper_b)
}

/// [`ThreadPool::scope`] on the current thread count.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    ThreadPool {
        threads: current_num_threads(),
    }
    .scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parse_thread_env_rules() {
        assert_eq!(parse_thread_env(None, 7), 7);
        assert_eq!(parse_thread_env(Some("4"), 7), 4);
        assert_eq!(parse_thread_env(Some(" 2 "), 7), 2);
        assert_eq!(parse_thread_env(Some("0"), 7), 7);
        assert_eq!(parse_thread_env(Some("-3"), 7), 7);
        assert_eq!(parse_thread_env(Some("lots"), 7), 7);
        assert_eq!(parse_thread_env(Some("99999"), 7), 7);
        assert_eq!(parse_thread_env(Some("1"), 7), 1);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (a, b) = pool.join(|| 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn scope_runs_every_task() {
        for threads in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let counter = AtomicUsize::new(0);
            let mut data = [0usize; 23];
            pool.scope(|s| {
                for (i, slot) in data.iter_mut().enumerate() {
                    let counter = &counter;
                    s.spawn(move || {
                        *slot = i * i;
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 23);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i * i);
            }
        }
    }

    #[test]
    fn install_overrides_current_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Restored afterwards.
        assert_eq!(current_num_threads(), default_num_threads());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn scope_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.scope(|s| {
            s.spawn(|| {});
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), default_num_threads());
    }
}

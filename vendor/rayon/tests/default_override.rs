//! The documented test override for the process default thread count.
//!
//! Lives in its own integration-test binary (= its own process) because
//! the default is a write-once cell: setting it must happen before any
//! code path reads it, which cannot be guaranteed inside the shared
//! unit-test binary.

#[test]
fn override_beats_environment_and_is_write_once() {
    // First store wins, regardless of any ambient LSBP_THREADS (the CI
    // matrix runs this under LSBP_THREADS=1 and =4).
    rayon::set_default_num_threads(3).expect("default not yet read in this process");
    assert_eq!(rayon::default_num_threads(), 3);
    assert_eq!(rayon::current_num_threads(), 3);
    // Once fixed, later overrides report the cached value instead.
    assert_eq!(rayon::set_default_num_threads(9), Err(3));
    assert_eq!(rayon::default_num_threads(), 3);
    // Values are clamped into 1..=MAX_THREADS before storing.
    let pool = rayon::global_pool();
    assert_eq!(pool.current_num_threads(), 3);
}

//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this deterministic replacement instead. `StdRng` is
//! xoshiro256** seeded through SplitMix64 — statistically strong enough
//! for synthetic graph generation and property tests, and fully
//! reproducible from a `u64` seed across platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The low-level uniform-bits interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`, integer or `f64`). Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a `f64` uniform on `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&x));
            let y = rng.gen_range(3..9usize);
            assert!((3..9).contains(&y));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

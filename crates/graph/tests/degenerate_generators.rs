//! Regression tests: generators called with degenerate sizes (`n < 2`,
//! empty graphs) must produce consistent graphs instead of panicking —
//! except where the shape is mathematically impossible (e.g. `C_2`), which
//! must fail loudly.

use lsbp_graph::generators::{complete, cycle, erdos_renyi_gnm, grid_2d, path, star};
use lsbp_graph::{geodesic_numbers, Graph};

#[test]
fn path_small() {
    for n in 0..2 {
        let g = path(n);
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.num_edges(), 0);
        let adj = g.adjacency();
        assert_eq!(adj.n_rows(), n);
        assert_eq!(adj.nnz(), 0);
    }
    assert_eq!(path(2).num_edges(), 1);
}

#[test]
fn star_small() {
    assert_eq!(star(0).num_nodes(), 0);
    assert_eq!(star(1).num_edges(), 0);
    assert_eq!(star(2).num_edges(), 1);
}

#[test]
fn complete_small() {
    assert_eq!(complete(0).num_nodes(), 0);
    assert_eq!(complete(1).num_edges(), 0);
    assert_eq!(complete(2).num_edges(), 1);
}

#[test]
fn grid_degenerate() {
    assert_eq!(grid_2d(0, 5).num_nodes(), 0);
    assert_eq!(grid_2d(5, 0).num_nodes(), 0);
    let single = grid_2d(1, 1);
    assert_eq!(single.num_nodes(), 1);
    assert_eq!(single.num_edges(), 0);
    // A 1×n grid degenerates to a path.
    let row = grid_2d(1, 4);
    assert_eq!(row.num_edges(), 3);
}

#[test]
fn cycle_of_two_rejected() {
    assert!(std::panic::catch_unwind(|| cycle(2)).is_err());
    assert!(std::panic::catch_unwind(|| cycle(0)).is_err());
    assert_eq!(cycle(3).num_edges(), 3);
}

#[test]
fn gnm_degenerate() {
    for n in 0..2 {
        let g = erdos_renyi_gnm(n, 0, 7);
        assert_eq!(g.num_nodes(), n);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.adjacency().nnz(), 0);
    }
    // n = 2 admits exactly one edge.
    let g = erdos_renyi_gnm(2, 1, 7);
    assert_eq!(g.num_edges(), 1);
}

#[test]
fn gnm_impossible_rejected() {
    assert!(std::panic::catch_unwind(|| erdos_renyi_gnm(0, 1, 0)).is_err());
    assert!(std::panic::catch_unwind(|| erdos_renyi_gnm(1, 1, 0)).is_err());
}

#[test]
fn empty_graph_traversal() {
    let g = Graph::new(0);
    let adj = g.adjacency();
    assert_eq!(g.num_components(), 0);
    let geo = geodesic_numbers(&adj, &[]);
    assert!(geo.layers.is_empty() || geo.layers[0].is_empty());
}

#[test]
fn no_seeds_means_all_unreachable() {
    let g = path(4);
    let geo = geodesic_numbers(&g.adjacency(), &[]);
    for v in 0..4 {
        assert!(geo.geodesic(v).is_none(), "node {v} should be unreachable");
    }
}

//! The undirected, weighted graph container.

use lsbp_sparse::{CooMatrix, CsrMatrix};

/// An undirected weighted graph on nodes `0..n`.
///
/// Edges are stored as an undirected edge list; [`Graph::adjacency`] builds
/// the symmetric CSR adjacency matrix `A` (with `A(s,t) = A(t,s) = w`) that
/// all algorithms consume. Parallel edges are allowed and their weights sum
/// in the adjacency matrix ("we have to add up parallel paths", Sect. 5.2).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

impl Graph {
    /// Creates an empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph limited to u32 node ids");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with room for `cap` edges.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        let mut g = Self::new(n);
        g.edges.reserve(cap);
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of *undirected* edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed adjacency entries (the paper's Fig. 6a counts
    /// every undirected edge twice).
    pub fn num_directed_edges(&self) -> usize {
        2 * self.edges.len()
    }

    /// Adds an undirected edge `s — t` with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, non-positive or
    /// non-finite weights (the paper requires `w > 0`).
    pub fn add_edge(&mut self, s: usize, t: usize, w: f64) {
        assert!(s < self.n && t < self.n, "edge endpoint out of range");
        assert_ne!(s, t, "self-loops are not supported");
        assert!(
            w > 0.0 && w.is_finite(),
            "edge weights must be positive and finite"
        );
        self.edges.push((s as u32, t as u32, w));
    }

    /// Adds an unweighted (`w = 1`) undirected edge.
    pub fn add_edge_unweighted(&mut self, s: usize, t: usize) {
        self.add_edge(s, t, 1.0);
    }

    /// Iterates the undirected edge list as `(s, t, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.edges
            .iter()
            .map(|&(s, t, w)| (s as usize, t as usize, w))
    }

    /// Builds the symmetric CSR adjacency matrix.
    pub fn adjacency(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, 2 * self.edges.len());
        for &(s, t, w) in &self.edges {
            coo.push_symmetric(s as usize, t as usize, w);
        }
        coo.to_csr()
    }

    /// The adjacency matrix split into `shards` nnz-balanced row-range
    /// shards ([`lsbp_sparse::ShardedCsr`]) — the storage layout the
    /// propagation engines stream shard by shard. Results of every solver
    /// are bitwise identical to the monolithic [`Graph::adjacency`] at
    /// any shard count.
    pub fn sharded_adjacency(&self, shards: usize) -> lsbp_sparse::ShardedCsr {
        lsbp_sparse::ShardedCsr::from_csr(&self.adjacency(), shards)
    }

    /// `true` iff the graph has no parallel edges.
    pub fn is_simple(&self) -> bool {
        let mut seen: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|&(s, t, _)| if s < t { (s, t) } else { (t, s) })
            .collect();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Merges another graph over the same node set into this one
    /// (used by the incremental-edge experiments to split a graph into a
    /// base part and an update batch).
    pub fn extend_edges(&mut self, other: &Graph) {
        assert_eq!(
            self.n, other.n,
            "extend_edges requires identical node counts"
        );
        self.edges.extend_from_slice(&other.edges);
    }

    /// Splits the edge list into two graphs: the first `keep` edges and the
    /// rest. Deterministic given the stored edge order.
    pub fn split_edges(&self, keep: usize) -> (Graph, Graph) {
        let keep = keep.min(self.edges.len());
        let mut a = Graph::new(self.n);
        let mut b = Graph::new(self.n);
        a.edges.extend_from_slice(&self.edges[..keep]);
        b.edges.extend_from_slice(&self.edges[keep..]);
        (a, b)
    }

    /// Connected components via BFS on the undirected structure; returns a
    /// component id per node.
    pub fn connected_components(&self) -> Vec<usize> {
        let adj = self.adjacency();
        let mut comp = vec![usize::MAX; self.n];
        let mut next_comp = 0usize;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next_comp;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in adj.row_cols(u) {
                    let v = v as usize;
                    if comp[v] == usize::MAX {
                        comp[v] = next_comp;
                        queue.push_back(v);
                    }
                }
            }
            next_comp += 1;
        }
        comp
    }

    /// Number of connected components (isolated nodes count as components).
    pub fn num_components(&self) -> usize {
        self.connected_components()
            .into_iter()
            .max()
            .map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.adjacency().nnz(), 0);
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 3, 0.5);
        let a = g.adjacency();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(3, 1), 0.5);
        assert_eq!(g.num_directed_edges(), 4);
    }

    #[test]
    fn parallel_edges_sum() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.5);
        assert!(!g.is_simple());
        assert_eq!(g.adjacency().get(0, 1), 3.5);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 0.0);
    }

    #[test]
    fn components_and_split() {
        let mut g = Graph::new(6);
        g.add_edge_unweighted(0, 1);
        g.add_edge_unweighted(1, 2);
        g.add_edge_unweighted(3, 4);
        assert_eq!(g.num_components(), 3); // {0,1,2}, {3,4}, {5}
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        let (a, b) = g.split_edges(2);
        assert_eq!(a.num_edges(), 2);
        assert_eq!(b.num_edges(), 1);
        let mut rebuilt = a.clone();
        rebuilt.extend_edges(&b);
        assert_eq!(rebuilt.num_edges(), 3);
    }
}

//! Erdős–Rényi `G(n, m)` graphs (uniform over edge sets of size `m`).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Samples a simple undirected graph with exactly `m` distinct edges,
/// uniformly at random, deterministically from `seed`.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n−1)/2`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, m);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t {
            continue;
        }
        let key = if s < t {
            (s as u32, t as u32)
        } else {
            (t as u32, s as u32)
        };
        if seen.insert(key) {
            g.add_edge_unweighted(key.0 as usize, key.1 as usize);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_and_simplicity() {
        let g = erdos_renyi_gnm(50, 120, 7);
        assert_eq!(g.num_edges(), 120);
        assert!(g.is_simple());
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = erdos_renyi_gnm(30, 40, 3).edges().collect();
        let b: Vec<_> = erdos_renyi_gnm(30, 40, 3).edges().collect();
        assert_eq!(a, b);
        let c: Vec<_> = erdos_renyi_gnm(30, 40, 4).edges().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn full_graph() {
        let g = erdos_renyi_gnm(6, 15, 0);
        assert_eq!(g.num_edges(), 15); // K6
        assert!(g.is_simple());
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn too_many_edges_rejected() {
        let _ = erdos_renyi_gnm(4, 7, 0);
    }
}

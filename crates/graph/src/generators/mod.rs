//! Synthetic graph generators for the paper's experiments.
//!
//! * [`torus`] — the 8-node "torus" of Fig. 5c (Example 20),
//! * [`kronecker`] — the deterministic Kronecker graph family of Fig. 6a,
//! * [`classic`] — paths, cycles, stars, cliques, 2-D grids (tests and
//!   property-based invariants),
//! * [`random`] — Erdős–Rényi G(n, m),
//! * [`mod@dblp_like`] — the heterogeneous bibliographic network standing in
//!   for the paper's DBLP subset (Appendix F.2),
//! * [`fraud`] — an eBay-style honest/accomplice/fraudster network
//!   matching the motivating example of the introduction (Fig. 1c).

pub mod classic;
pub mod dblp_like;
pub mod fraud;
pub mod kronecker;
pub mod random;
pub mod torus;

pub use classic::{complete, cycle, grid_2d, path, star};
pub use dblp_like::{dblp_like, DblpConfig, DblpNetwork, NodeKind};
pub use fraud::{fraud_network, FraudConfig, FraudNetwork};
pub use kronecker::{kronecker_graph, kronecker_schedule, KroneckerScale};
pub use random::erdos_renyi_gnm;
pub use torus::{fig5c_torus, TORUS_EXPLICIT_NODES, TORUS_N, TORUS_V4};

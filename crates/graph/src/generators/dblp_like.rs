//! Synthetic heterogeneous bibliographic network ("DBLP-like").
//!
//! The paper's Appendix F.2 experiment uses a DBLP subset from Ji et al.
//! (reference \[20\] in the paper): 36,138 nodes (papers, authors, conferences, terms), 341,564
//! directed edges, 4 classes (AI, DB, DM, IR), 10.4% explicitly labeled.
//! That data set is not shipped here, so this generator produces a network
//! of the same *shape*: papers connect to their authors, one conference
//! and their title terms; every entity has a ground-truth area; authors
//! and conferences are strongly area-pure while terms are noisier —
//! exactly the homophilous 4-class structure the experiment stresses.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of entity a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A publication (connects to authors, one conference, several terms).
    Paper,
    /// An author (home research area; occasionally publishes outside it).
    Author,
    /// A conference (belongs to exactly one area).
    Conference,
    /// A title term (drawn from an area-specific pool plus a shared pool).
    Term,
}

/// Configuration for [`dblp_like`].
#[derive(Clone, Copy, Debug)]
pub struct DblpConfig {
    /// Number of papers.
    pub n_papers: usize,
    /// Number of authors.
    pub n_authors: usize,
    /// Number of conferences (split evenly across areas).
    pub n_conferences: usize,
    /// Number of area-specific terms per area.
    pub n_terms_per_area: usize,
    /// Number of shared (area-agnostic) terms.
    pub n_shared_terms: usize,
    /// Number of research areas (classes); the paper uses 4.
    pub n_areas: usize,
    /// Authors per paper range (inclusive).
    pub authors_per_paper: (usize, usize),
    /// Terms per paper range (inclusive).
    pub terms_per_paper: (usize, usize),
    /// Probability that a paper's author is drawn from outside the paper's
    /// area (cross-area collaboration noise).
    pub cross_area_author_prob: f64,
    /// Probability that a term of a paper is drawn from the shared pool.
    pub shared_term_prob: f64,
}

impl Default for DblpConfig {
    /// Sizes chosen so the default network matches the paper's DBLP subset
    /// in node count (≈36k) and directed edge count (≈342k).
    fn default() -> Self {
        Self {
            n_papers: 14_000,
            n_authors: 14_000,
            n_conferences: 20,
            n_terms_per_area: 1_800,
            n_shared_terms: 900,
            n_areas: 4,
            authors_per_paper: (1, 4),
            terms_per_paper: (8, 11),
            cross_area_author_prob: 0.08,
            shared_term_prob: 0.25,
        }
    }
}

impl DblpConfig {
    /// A miniature variant (hundreds of nodes) for tests.
    pub fn tiny() -> Self {
        Self {
            n_papers: 120,
            n_authors: 80,
            n_conferences: 8,
            n_terms_per_area: 30,
            n_shared_terms: 20,
            n_areas: 4,
            authors_per_paper: (1, 3),
            terms_per_paper: (3, 6),
            cross_area_author_prob: 0.08,
            shared_term_prob: 0.25,
        }
    }

    /// Total node count implied by the configuration.
    pub fn total_nodes(&self) -> usize {
        self.n_papers
            + self.n_authors
            + self.n_conferences
            + self.n_areas * self.n_terms_per_area
            + self.n_shared_terms
    }
}

/// A generated bibliographic network.
#[derive(Clone, Debug)]
pub struct DblpNetwork {
    /// The (unweighted) heterogeneous graph.
    pub graph: Graph,
    /// Ground-truth area per node (`0 .. n_areas`). Shared terms are
    /// assigned the area most of their papers came from.
    pub classes: Vec<usize>,
    /// Entity kind per node.
    pub kinds: Vec<NodeKind>,
}

/// Generates the network. Node layout: papers, then authors, then
/// conferences, then area terms (grouped by area), then shared terms.
pub fn dblp_like(cfg: &DblpConfig, seed: u64) -> DblpNetwork {
    assert!(cfg.n_areas >= 2, "need at least two areas");
    assert!(
        cfg.n_conferences >= cfg.n_areas,
        "need at least one conference per area"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.total_nodes();
    let paper0 = 0;
    let author0 = paper0 + cfg.n_papers;
    let conf0 = author0 + cfg.n_authors;
    let term0 = conf0 + cfg.n_conferences;
    let shared0 = term0 + cfg.n_areas * cfg.n_terms_per_area;

    let mut classes = vec![0usize; n];
    let mut kinds = vec![NodeKind::Paper; n];
    kinds[author0..conf0]
        .iter_mut()
        .for_each(|k| *k = NodeKind::Author);
    kinds[conf0..term0]
        .iter_mut()
        .for_each(|k| *k = NodeKind::Conference);
    kinds[term0..n].iter_mut().for_each(|k| *k = NodeKind::Term);

    // Assign areas: authors and conferences round-robin, area terms by block.
    for (i, class) in classes[author0..conf0].iter_mut().enumerate() {
        *class = i % cfg.n_areas;
    }
    for (i, class) in classes[conf0..term0].iter_mut().enumerate() {
        *class = i % cfg.n_areas;
    }
    for a in 0..cfg.n_areas {
        let start = term0 + a * cfg.n_terms_per_area;
        classes[start..start + cfg.n_terms_per_area]
            .iter_mut()
            .for_each(|c| *c = a);
    }

    let avg_deg = (cfg.authors_per_paper.1 + cfg.terms_per_paper.1 + 1) * cfg.n_papers;
    let mut g = Graph::with_capacity(n, avg_deg);
    // Tally which area uses each shared term most, to give it a class label.
    let mut shared_votes = vec![vec![0usize; cfg.n_areas]; cfg.n_shared_terms];

    #[allow(clippy::needless_range_loop)] // p is an edge endpoint, not just an index
    for p in 0..cfg.n_papers {
        let area = rng.gen_range(0..cfg.n_areas);
        classes[p] = area;
        // Conference of the paper's area.
        let confs_in_area: Vec<usize> = (0..cfg.n_conferences)
            .filter(|c| c % cfg.n_areas == area)
            .collect();
        let conf = conf0 + confs_in_area[rng.gen_range(0..confs_in_area.len())];
        g.add_edge_unweighted(p, conf);
        // Authors (distinct per paper).
        let n_auth = rng.gen_range(cfg.authors_per_paper.0..=cfg.authors_per_paper.1);
        let mut chosen = Vec::with_capacity(n_auth);
        while chosen.len() < n_auth {
            let a_area = if rng.gen_bool(cfg.cross_area_author_prob) {
                rng.gen_range(0..cfg.n_areas)
            } else {
                area
            };
            // Authors of a given area occupy indices ≡ a_area (mod n_areas).
            let per_area = cfg.n_authors / cfg.n_areas;
            if per_area == 0 {
                break;
            }
            let author = author0 + rng.gen_range(0..per_area) * cfg.n_areas + a_area;
            if author < conf0 && !chosen.contains(&author) {
                chosen.push(author);
                g.add_edge_unweighted(p, author);
            }
        }
        // Terms (distinct per paper).
        let n_terms = rng.gen_range(cfg.terms_per_paper.0..=cfg.terms_per_paper.1);
        let mut terms = Vec::with_capacity(n_terms);
        let mut guard = 0;
        while terms.len() < n_terms && guard < 10 * n_terms {
            guard += 1;
            let term = if rng.gen_bool(cfg.shared_term_prob) && cfg.n_shared_terms > 0 {
                let t = rng.gen_range(0..cfg.n_shared_terms);
                shared_votes[t][area] += 1;
                shared0 + t
            } else {
                term0 + area * cfg.n_terms_per_area + rng.gen_range(0..cfg.n_terms_per_area)
            };
            if !terms.contains(&term) {
                terms.push(term);
                g.add_edge_unweighted(p, term);
            }
        }
    }

    for (t, votes) in shared_votes.iter().enumerate() {
        let best = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map_or(0, |(a, _)| a);
        classes[shared0 + t] = best;
    }

    DblpNetwork {
        graph: g,
        classes,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_network_shape() {
        let net = dblp_like(&DblpConfig::tiny(), 1);
        let cfg = DblpConfig::tiny();
        assert_eq!(net.graph.num_nodes(), cfg.total_nodes());
        assert_eq!(net.classes.len(), cfg.total_nodes());
        assert_eq!(net.kinds.len(), cfg.total_nodes());
        assert!(net.graph.num_edges() > cfg.n_papers * 4);
        // All classes in range.
        assert!(net.classes.iter().all(|&c| c < 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = dblp_like(&DblpConfig::tiny(), 9);
        let b = dblp_like(&DblpConfig::tiny(), 9);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn papers_only_connect_to_entities() {
        let cfg = DblpConfig::tiny();
        let net = dblp_like(&cfg, 2);
        for (s, t, _) in net.graph.edges() {
            // Every edge is incident to exactly one paper (bipartite-ish
            // heterogeneous structure: papers never connect to papers).
            let s_is_paper = matches!(net.kinds[s], NodeKind::Paper);
            let t_is_paper = matches!(net.kinds[t], NodeKind::Paper);
            assert!(s_is_paper ^ t_is_paper, "edge {s}-{t} violates star schema");
        }
    }

    #[test]
    fn default_matches_paper_scale() {
        let cfg = DblpConfig::default();
        // ~36k nodes like the paper's 36,138.
        let total = cfg.total_nodes();
        assert!((30_000..45_000).contains(&total), "total = {total}");
    }

    #[test]
    fn homophily_dominates() {
        // Most edges connect same-class endpoints (the experiment assumes
        // homophily, Fig. 11a).
        let net = dblp_like(&DblpConfig::tiny(), 3);
        let (mut same, mut diff) = (0usize, 0usize);
        for (s, t, _) in net.graph.edges() {
            if net.classes[s] == net.classes[t] {
                same += 1;
            } else {
                diff += 1;
            }
        }
        assert!(same > 2 * diff, "same={same} diff={diff}");
    }
}

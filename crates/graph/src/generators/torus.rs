//! The 8-node "torus" of Fig. 5c / Example 20.
//!
//! The paper does not spell out the edge list, but Example 20 pins the
//! graph down uniquely (up to relabeling):
//!
//! * ρ(A) ≈ 2.414 — i.e. exactly 1 + √2,
//! * node v4 has geodesic number 3 with *exactly two* shortest paths from
//!   the explicit nodes {v1, v2, v3}: `v1→v5→v8→v4` and `v3→v7→v8→v4`,
//! * v2 is strictly further than 3 hops from v4.
//!
//! A brute-force search over all 8-node graphs containing the path edges
//! (recorded in `tools/` of the repo history) leaves one graph matching
//! all three constraints and the drawn layout: the **corona of C4** —
//! an inner 4-cycle v5–v6–v7–v8 with one pendant on each inner node
//! (v1→v5, v2→v6, v3→v7, v4→v8). Its spectral radius is 1 + √2 exactly,
//! and every quantity of Example 20 reproduces on it (see
//! `tests/torus_example.rs`).

use crate::graph::Graph;

/// Number of nodes of the Fig. 5c torus.
pub const TORUS_N: usize = 8;

/// 0-based ids of the explicitly labeled nodes v1, v2, v3 of Example 20.
pub const TORUS_EXPLICIT_NODES: [usize; 3] = [0, 1, 2];

/// 0-based id of node v4, the node Example 20 tracks.
pub const TORUS_V4: usize = 3;

/// Builds the 8-node torus graph of Fig. 5c (unweighted).
///
/// Node mapping: paper's `v{i}` is node `i − 1`. Inner cycle:
/// v5(4)–v6(5)–v7(6)–v8(7); pendants v1(0)→v5, v2(1)→v6, v3(2)→v7,
/// v4(3)→v8.
pub fn fig5c_torus() -> Graph {
    let mut g = Graph::with_capacity(TORUS_N, 8);
    // Inner 4-cycle.
    g.add_edge_unweighted(4, 5);
    g.add_edge_unweighted(5, 6);
    g.add_edge_unweighted(6, 7);
    g.add_edge_unweighted(7, 4);
    // Pendants.
    g.add_edge_unweighted(0, 4);
    g.add_edge_unweighted(1, 5);
    g.add_edge_unweighted(2, 6);
    g.add_edge_unweighted(3, 7);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::geodesic_numbers;

    #[test]
    fn structure() {
        let g = fig5c_torus();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 8);
        assert!(g.is_simple());
        assert_eq!(g.num_components(), 1);
    }

    /// ρ(A) = 1 + √2 — the "ρ(A) ≈ 2.414" of Example 20.
    #[test]
    fn spectral_radius_is_one_plus_sqrt2() {
        let rho = fig5c_torus().adjacency().spectral_radius();
        assert!((rho - (1.0 + 2.0f64.sqrt())).abs() < 1e-6, "rho = {rho}");
    }

    /// v4 has geodesic number 3 and v2 is 4 hops away (so only v1 and v3
    /// feed its SBP belief).
    #[test]
    fn v4_geodesics() {
        let g = fig5c_torus();
        let adj = g.adjacency();
        let geo = geodesic_numbers(&adj, &TORUS_EXPLICIT_NODES);
        assert_eq!(geo.g[TORUS_V4], 3);
        let from_v2 = geodesic_numbers(&adj, &[1]);
        assert_eq!(from_v2.g[TORUS_V4], 4);
        let from_v1 = geodesic_numbers(&adj, &[0]);
        assert_eq!(from_v1.g[TORUS_V4], 3);
    }
}

//! Deterministic Kronecker graphs (Fig. 6a of the paper).
//!
//! The paper's synthetic family has `n = 3^m` nodes and `e = 4^m` directed
//! adjacency entries for `m = 5 … 13` (graphs #1 … #9). That schedule is
//! exactly the `m`-fold Kronecker (tensor) power of the 3-node path `P3`,
//! whose adjacency matrix has 4 nonzero entries, following Leskovec et
//! al.'s deterministic Kronecker construction (reference \[28\] in the paper).
//!
//! Properties relevant to the experiments: the edge/node ratio grows as
//! `(4/3)^m` (matching the 4.2 … 42.6 column of Fig. 6a), the degree
//! distribution is multinomial-heavy-tailed, and — since `P3` is bipartite
//! — the tensor power splits into `2^(m−1)` connected components. The
//! experiments draw explicit beliefs uniformly, so every non-trivial
//! component receives seeds; behavior is identical for every method under
//! comparison (see DESIGN.md).

use crate::graph::Graph;

/// One row of the Fig. 6a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KroneckerScale {
    /// 1-based index of the graph in Fig. 6a (#1 … #9).
    pub id: usize,
    /// Kronecker exponent `m` (nodes = 3^m).
    pub exponent: u32,
    /// Number of nodes `3^m`.
    pub nodes: usize,
    /// Number of directed adjacency entries `4^m` (the paper counts each
    /// undirected edge twice).
    pub directed_edges: usize,
}

/// The full Fig. 6a schedule: graphs #1 (243 nodes / 1,024 edges) through
/// #9 (1,594,323 nodes / 67,108,864 edges).
pub fn kronecker_schedule() -> Vec<KroneckerScale> {
    (5u32..=13)
        .enumerate()
        .map(|(i, m)| KroneckerScale {
            id: i + 1,
            exponent: m,
            nodes: 3usize.pow(m),
            directed_edges: 4usize.pow(m),
        })
        .collect()
}

/// Directed edges of the P3 seed: 0–1 and 1–2 in both directions.
const SEED_EDGES: [(usize, usize); 4] = [(0, 1), (1, 0), (1, 2), (2, 1)];

/// Builds the deterministic Kronecker graph `P3^{⊗m}` (unweighted,
/// undirected). `n = 3^m` nodes, `4^m` directed entries (= `4^m / 2`
/// undirected edges).
///
/// # Panics
/// Panics if `m == 0` or the graph would exceed memory-hostile sizes
/// (`m > 13`, beyond the paper's schedule).
pub fn kronecker_graph(m: u32) -> Graph {
    assert!(m >= 1, "Kronecker exponent must be at least 1");
    assert!(
        m <= 13,
        "Kronecker exponent beyond the paper's schedule (would not fit in memory)"
    );
    let n = 3usize.pow(m);
    let n_directed = 4usize.pow(m);
    let mut g = Graph::with_capacity(n, n_directed / 2);
    // Enumerate all m-tuples of seed edges; tuple (e_1, …, e_m) produces the
    // directed edge (Σ s_i·3^(m-i), Σ t_i·3^(m-i)). Keeping s < t emits each
    // undirected edge exactly once.
    let mut digits = vec![0usize; m as usize];
    loop {
        let mut s = 0usize;
        let mut t = 0usize;
        for &d in digits.iter() {
            let (es, et) = SEED_EDGES[d];
            s = s * 3 + es;
            t = t * 3 + et;
        }
        if s < t {
            g.add_edge_unweighted(s, t);
        }
        // Increment the base-4 counter.
        let mut pos = m as usize;
        loop {
            if pos == 0 {
                return g;
            }
            pos -= 1;
            digits[pos] += 1;
            if digits[pos] < 4 {
                break;
            }
            digits[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_fig6a() {
        let sched = kronecker_schedule();
        assert_eq!(sched.len(), 9);
        assert_eq!(sched[0].nodes, 243);
        assert_eq!(sched[0].directed_edges, 1024);
        assert_eq!(sched[1].nodes, 729);
        assert_eq!(sched[1].directed_edges, 4096);
        assert_eq!(sched[4].nodes, 19_683);
        assert_eq!(sched[4].directed_edges, 262_144);
        assert_eq!(sched[8].nodes, 1_594_323);
        assert_eq!(sched[8].directed_edges, 67_108_864);
        // e/n ratios of Fig. 6a (4.2, 5.6, …, 42.6).
        let r0 = sched[0].directed_edges as f64 / sched[0].nodes as f64;
        assert!((r0 - 4.2).abs() < 0.05);
        let r8 = sched[8].directed_edges as f64 / sched[8].nodes as f64;
        assert!((r8 - 42.1).abs() < 0.5);
    }

    #[test]
    fn m1_is_p3() {
        let g = kronecker_graph(1);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let a = g.adjacency();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn m2_matches_tensor_square() {
        let g = kronecker_graph(2);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_directed_edges(), 16);
        let a = g.adjacency();
        // Edge ((i1,i2),(j1,j2)) exists iff both coordinates are P3 edges:
        // e.g. (0,0)-(1,1): nodes 0 and 4.
        assert_eq!(a.get(0, 4), 1.0);
        assert_eq!(a.get(4, 8), 1.0); // (1,1)-(2,2)
        assert_eq!(a.get(2, 4), 1.0); // (0,2)-(1,1)
        assert_eq!(a.get(0, 1), 0.0); // (0,0)-(0,1): first coordinate not an edge
        assert!(a.is_symmetric(0.0));
        // Tensor product of two bipartite connected graphs → 2 components
        // (plus none here: all 9 nodes are covered by P3⊗P3? corners (0,0)
        // connect fine). Verify the documented 2^{m-1} component count.
        assert_eq!(g.num_components(), 2);
    }

    #[test]
    fn m5_matches_paper_graph1() {
        let g = kronecker_graph(5);
        assert_eq!(g.num_nodes(), 243);
        assert_eq!(g.num_directed_edges(), 1024);
        assert_eq!(g.num_components(), 16); // 2^(5-1)
        assert!(g.is_simple());
        assert!(g.adjacency().is_symmetric(0.0));
    }

    /// The adjacency spectral radius of a Kronecker power is the power of
    /// the seed's: ρ(P3^{⊗m}) = √2^m.
    #[test]
    fn spectral_radius_is_power_of_seed() {
        let g = kronecker_graph(3);
        let rho = g.adjacency().spectral_radius();
        let expect = 2.0f64.sqrt().powi(3);
        assert!((rho - expect).abs() < 1e-5, "rho = {rho}, expect {expect}");
    }
}

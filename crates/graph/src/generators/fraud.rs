//! eBay-style auction fraud network (the motivating example of the
//! paper's introduction and Fig. 1c).
//!
//! Three roles: honest users (H), accomplices (A) and fraudsters (F).
//! The generative rules follow the paper's description verbatim:
//!
//! * honest people trade with other honest people and with accomplices,
//! * accomplices interact with honest people (to build reputation) and
//!   with fraudsters, but *never* with other accomplices,
//! * fraudsters interact primarily with accomplices, forming
//!   near-bipartite cores, and only rarely with honest people (the final
//!   defrauding transactions).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Class index of honest users.
pub const CLASS_HONEST: usize = 0;
/// Class index of accomplices.
pub const CLASS_ACCOMPLICE: usize = 1;
/// Class index of fraudsters.
pub const CLASS_FRAUDSTER: usize = 2;

/// Configuration for [`fraud_network`].
#[derive(Clone, Copy, Debug)]
pub struct FraudConfig {
    /// Number of honest users.
    pub n_honest: usize,
    /// Number of accomplices.
    pub n_accomplices: usize,
    /// Number of fraudsters.
    pub n_fraudsters: usize,
    /// Average trades of an honest user with other honest users.
    pub honest_honest_deg: usize,
    /// Average trades of an accomplice with honest users.
    pub accomplice_honest_deg: usize,
    /// Average trades of an accomplice with fraudsters.
    pub accomplice_fraud_deg: usize,
    /// Average (rare) trades of a fraudster with honest users.
    pub fraud_honest_deg: usize,
}

impl Default for FraudConfig {
    fn default() -> Self {
        Self {
            n_honest: 800,
            n_accomplices: 120,
            n_fraudsters: 80,
            honest_honest_deg: 4,
            accomplice_honest_deg: 5,
            accomplice_fraud_deg: 4,
            fraud_honest_deg: 1,
        }
    }
}

/// A generated auction network with ground-truth roles.
#[derive(Clone, Debug)]
pub struct FraudNetwork {
    /// The trading graph.
    pub graph: Graph,
    /// Ground-truth class per node (`CLASS_HONEST` / `CLASS_ACCOMPLICE` /
    /// `CLASS_FRAUDSTER`).
    pub classes: Vec<usize>,
}

/// Generates the network. Node layout: honest users first, then
/// accomplices, then fraudsters.
pub fn fraud_network(cfg: &FraudConfig, seed: u64) -> FraudNetwork {
    assert!(cfg.n_honest >= 2, "need at least two honest users");
    assert!(
        cfg.n_accomplices >= 1 && cfg.n_fraudsters >= 1,
        "need both fraud roles"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n_honest + cfg.n_accomplices + cfg.n_fraudsters;
    let honest = 0..cfg.n_honest;
    let acc0 = cfg.n_honest;
    let fraud0 = cfg.n_honest + cfg.n_accomplices;

    let mut classes = vec![CLASS_HONEST; n];
    classes[acc0..fraud0]
        .iter_mut()
        .for_each(|c| *c = CLASS_ACCOMPLICE);
    classes[fraud0..]
        .iter_mut()
        .for_each(|c| *c = CLASS_FRAUDSTER);

    let mut g = Graph::new(n);
    let mut seen = std::collections::HashSet::new();
    let mut add_unique = |g: &mut Graph, s: usize, t: usize| {
        if s == t {
            return;
        }
        let key = if s < t { (s, t) } else { (t, s) };
        if seen.insert(key) {
            g.add_edge_unweighted(s, t);
        }
    };

    // Honest–honest trades.
    for h in honest.clone() {
        for _ in 0..cfg.honest_honest_deg {
            let other = rng.gen_range(honest.clone());
            add_unique(&mut g, h, other);
        }
    }
    // Accomplices: reputation-building with honest users + fraud cores.
    for a in acc0..fraud0 {
        for _ in 0..cfg.accomplice_honest_deg {
            let h = rng.gen_range(honest.clone());
            add_unique(&mut g, a, h);
        }
        for _ in 0..cfg.accomplice_fraud_deg {
            let f = fraud0 + rng.gen_range(0..cfg.n_fraudsters);
            add_unique(&mut g, a, f);
        }
    }
    // Fraudsters' rare trades with honest users (the defrauding step).
    for f in fraud0..n {
        for _ in 0..cfg.fraud_honest_deg {
            let h = rng.gen_range(honest.clone());
            add_unique(&mut g, f, h);
        }
    }

    FraudNetwork { graph: g, classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_layout() {
        let cfg = FraudConfig {
            n_honest: 10,
            n_accomplices: 4,
            n_fraudsters: 3,
            ..Default::default()
        };
        let net = fraud_network(&cfg, 0);
        assert_eq!(net.classes.len(), 17);
        assert_eq!(net.classes[0], CLASS_HONEST);
        assert_eq!(net.classes[10], CLASS_ACCOMPLICE);
        assert_eq!(net.classes[14], CLASS_FRAUDSTER);
    }

    #[test]
    fn no_accomplice_accomplice_or_fraud_fraud_edges() {
        let net = fraud_network(&FraudConfig::default(), 5);
        for (s, t, _) in net.graph.edges() {
            let (cs, ct) = (net.classes[s], net.classes[t]);
            assert!(
                !(cs == CLASS_ACCOMPLICE && ct == CLASS_ACCOMPLICE),
                "accomplices never interact"
            );
            assert!(
                !(cs == CLASS_FRAUDSTER && ct == CLASS_FRAUDSTER),
                "fraudsters never interact"
            );
        }
    }

    #[test]
    fn fraud_honest_edges_are_rare() {
        let net = fraud_network(&FraudConfig::default(), 5);
        let mut fh = 0usize;
        let mut af = 0usize;
        for (s, t, _) in net.graph.edges() {
            let mut pair = [net.classes[s], net.classes[t]];
            pair.sort_unstable();
            match pair {
                [CLASS_HONEST, CLASS_FRAUDSTER] => fh += 1,
                [CLASS_ACCOMPLICE, CLASS_FRAUDSTER] => af += 1,
                _ => {}
            }
        }
        assert!(
            af > 2 * fh,
            "fraudsters should mostly trade with accomplices: af={af} fh={fh}"
        );
    }

    #[test]
    fn deterministic() {
        let a = fraud_network(&FraudConfig::default(), 11);
        let b = fraud_network(&FraudConfig::default(), 11);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn simple_graph() {
        let net = fraud_network(&FraudConfig::default(), 1);
        assert!(net.graph.is_simple());
    }
}

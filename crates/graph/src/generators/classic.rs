//! Textbook graphs with known spectra and geodesics — the backbone of the
//! unit and property tests (paths and stars are trees, so BP is exact on
//! them; cycles are the minimal loopy case).

use crate::graph::Graph;

/// Path graph `P_n`: 0–1–2–…–(n−1).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        g.add_edge_unweighted(i - 1, i);
    }
    g
}

/// Cycle graph `C_n` (requires `n ≥ 3`).
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least 3 nodes");
    let mut g = path(n);
    g.add_edge_unweighted(n - 1, 0);
    g
}

/// Star `K_{1,n−1}`: node 0 is the hub.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        g.add_edge_unweighted(0, i);
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge_unweighted(i, j);
        }
    }
    g
}

/// `rows × cols` 2-D grid (no wraparound). Node `(r, c)` is `r·cols + c`.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge_unweighted(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge_unweighted(v, v + cols);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_components(), 1);
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).num_edges(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_spectral_radius_two() {
        let rho = cycle(7).adjacency().spectral_radius();
        assert!((rho - 2.0).abs() < 1e-6);
    }

    #[test]
    fn star_spectral_radius() {
        // ρ(K_{1,n−1}) = √(n−1).
        let rho = star(10).adjacency().spectral_radius();
        assert!((rho - 3.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        let rho = g.adjacency().spectral_radius();
        assert!((rho - 4.0).abs() < 1e-6);
    }

    #[test]
    fn grid_structure() {
        let g = grid_2d(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // 17
        assert_eq!(g.num_components(), 1);
        let a = g.adjacency();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 4), 1.0);
        assert_eq!(a.get(0, 5), 0.0);
    }
}

#![warn(missing_docs)]

//! Graph types, synthetic generators and traversal utilities.
//!
//! The paper evaluates on (i) a small torus (Fig. 5c), (ii) a family of
//! deterministic Kronecker graphs (Fig. 6a) and (iii) a DBLP subset
//! (Appendix F.2). This crate provides the graph container plus generators
//! for all three (the DBLP data is proprietary-ish/not shipped, so a
//! synthetic heterogeneous bibliographic network of the same shape is
//! generated instead — see DESIGN.md "Substitutions"), along with the
//! multi-source BFS that SBP's geodesic numbers (Definition 14) are built
//! on.

pub mod bfs;
pub mod generators;
pub mod graph;
pub mod io;

pub use bfs::{geodesic_numbers, Geodesics, UNREACHABLE};
pub use graph::Graph;

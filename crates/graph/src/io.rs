//! Plain-text I/O: whitespace-separated edge lists (the de-facto exchange
//! format of SNAP/Konect-style graph repositories) and node-label files.
//!
//! Formats:
//!
//! * **edge list** — one `src dst [weight]` triple per line; `#`-prefixed
//!   lines are comments; missing weights default to 1.0. Node ids are
//!   0-based; the node count is `max id + 1` unless a larger count is
//!   forced.
//! * **labels** — one `node class` pair per line, same comment rules.

use crate::graph::Graph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O errors with line context.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from a reader. `min_nodes` forces at least that
/// many nodes (for graphs with isolated high-numbered nodes).
pub fn read_edge_list(reader: impl Read, min_nodes: usize) -> Result<Graph, IoError> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_node = 0usize;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_node = |tok: Option<&str>, what: &str| -> Result<usize, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| IoError::Parse {
                line: lineno + 1,
                message: format!("invalid {what}"),
            })
        };
        let s = parse_node(parts.next(), "source node")?;
        let t = parse_node(parts.next(), "target node")?;
        let w: f64 = match parts.next() {
            None => 1.0,
            Some(tok) => tok.parse().map_err(|_| IoError::Parse {
                line: lineno + 1,
                message: "invalid weight".into(),
            })?,
        };
        if s == t {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: "self-loop".into(),
            });
        }
        if w <= 0.0 || !w.is_finite() {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: "weight must be positive and finite".into(),
            });
        }
        max_node = max_node.max(s).max(t);
        edges.push((s, t, w));
    }
    let n = min_nodes.max(if edges.is_empty() { 0 } else { max_node + 1 });
    let mut g = Graph::with_capacity(n, edges.len());
    for (s, t, w) in edges {
        g.add_edge(s, t, w);
    }
    Ok(g)
}

/// Writes a graph as an edge list (weights included only when ≠ 1).
pub fn write_edge_list(graph: &Graph, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} nodes, {} undirected edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (s, t, weight) in graph.edges() {
        if weight == 1.0 {
            writeln!(w, "{s} {t}")?;
        } else {
            writeln!(w, "{s} {t} {weight}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a `node class` label file into a per-node option vector of length
/// `n`.
pub fn read_labels(reader: impl Read, n: usize) -> Result<Vec<Option<usize>>, IoError> {
    let mut labels = vec![None; n];
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let err = |message: &str| IoError::Parse {
            line: lineno + 1,
            message: message.into(),
        };
        let v: usize = parts
            .next()
            .ok_or_else(|| err("missing node id"))?
            .parse()
            .map_err(|_| err("invalid node id"))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| err("missing class"))?
            .parse()
            .map_err(|_| err("invalid class"))?;
        if v >= n {
            return Err(err("node id out of range"));
        }
        labels[v] = Some(c);
    }
    Ok(labels)
}

/// Writes labels (`Some` entries only) as a `node class` file.
pub fn write_labels(labels: &[Option<usize>], writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for (v, label) in labels.iter().enumerate() {
        if let Some(c) = label {
            writeln!(w, "{v} {c}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Convenience: read an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, 0)
}

/// Convenience: write an edge list to a file path.
pub fn write_edge_list_file(graph: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unweighted() {
        let mut g = Graph::new(4);
        g.add_edge_unweighted(0, 1);
        g.add_edge_unweighted(2, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back.num_nodes(), 4);
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = back.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_weighted() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2, 2.5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back.edges().next(), Some((0, 2, 2.5)));
    }

    #[test]
    fn comments_blanks_and_default_weight() {
        let text = "# a comment\n\n0 1\n1 2 3.0\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges[0], (0, 1, 1.0));
        assert_eq!(edges[1], (1, 2, 3.0));
    }

    #[test]
    fn min_nodes_forces_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn parse_errors_with_line_numbers() {
        let bad = read_edge_list("0 1\nx 2\n".as_bytes(), 0);
        match bad {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        assert!(read_edge_list("3 3\n".as_bytes(), 0).is_err()); // self-loop
        assert!(read_edge_list("0 1 -2\n".as_bytes(), 0).is_err()); // bad weight
        assert!(read_edge_list("0\n".as_bytes(), 0).is_err()); // missing target
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![Some(0), None, Some(2), None];
        let mut buf = Vec::new();
        write_labels(&labels, &mut buf).unwrap();
        let back = read_labels(buf.as_slice(), 4).unwrap();
        assert_eq!(back, labels);
    }

    #[test]
    fn labels_validation() {
        assert!(read_labels("5 0\n".as_bytes(), 3).is_err()); // out of range
        assert!(read_labels("0\n".as_bytes(), 3).is_err()); // missing class
        assert!(read_labels("# ok\n".as_bytes(), 3).is_ok());
    }

    #[test]
    fn file_round_trip() {
        let mut g = Graph::new(5);
        g.add_edge(1, 4, 1.5);
        let path = std::env::temp_dir().join("lsbp_io_test_edges.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(back.edges().next(), Some((1, 4, 1.5)));
        let _ = std::fs::remove_file(&path);
    }
}

//! Multi-source BFS and geodesic numbers (Definition 14).
//!
//! The geodesic number `g_t` of node `t` is the length of the shortest
//! (hop-count) path to any node with explicit beliefs. SBP propagates
//! beliefs strictly along edges from geodesic layer `g` to layer `g+1`
//! (Lemma 17), so a single multi-source BFS determines the entire
//! propagation schedule.

use lsbp_sparse::PropagationOperator;
use std::collections::VecDeque;

/// Result of a multi-source BFS: per-node geodesic numbers and the nodes
/// grouped into layers of equal geodesic number.
#[derive(Clone, Debug)]
pub struct Geodesics {
    /// `g[v]` = geodesic number of `v`, or `u32::MAX` when `v` is
    /// unreachable from every source.
    pub g: Vec<u32>,
    /// `layers[i]` = nodes with geodesic number `i`, in ascending node
    /// order. `layers[0]` are the sources themselves.
    pub layers: Vec<Vec<u32>>,
}

/// Sentinel geodesic number for nodes unreachable from any labeled node.
pub const UNREACHABLE: u32 = u32::MAX;

impl Geodesics {
    /// Geodesic number of `v`, or `None` when unreachable.
    pub fn geodesic(&self, v: usize) -> Option<u32> {
        let g = self.g[v];
        (g != UNREACHABLE).then_some(g)
    }

    /// Number of BFS layers (max geodesic number + 1); 0 with no sources.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Count of nodes unreachable from every source.
    pub fn num_unreachable(&self) -> usize {
        self.g.iter().filter(|&&g| g == UNREACHABLE).count()
    }
}

/// Computes geodesic numbers by multi-source BFS over any adjacency
/// operator (monolithic CSR or the sharded backend — BFS only needs
/// per-row neighbor access). Hop counts ignore edge weights
/// (Definition 14 is in hops; the weights only scale the propagated
/// beliefs).
///
/// # Panics
/// Panics if `adj` is not square or a source id is out of range.
pub fn geodesic_numbers<A: PropagationOperator + ?Sized>(adj: &A, sources: &[usize]) -> Geodesics {
    assert_eq!(adj.n_rows(), adj.n_cols(), "adjacency must be square");
    let n = adj.n_rows();
    let mut g = vec![UNREACHABLE; n];
    let mut queue = VecDeque::with_capacity(sources.len());
    let mut layers: Vec<Vec<u32>> = Vec::new();
    let mut layer0 = Vec::with_capacity(sources.len());
    for &s in sources {
        assert!(s < n, "BFS source out of range");
        if g[s] != 0 {
            g[s] = 0;
            layer0.push(s as u32);
            queue.push_back(s as u32);
        }
    }
    if layer0.is_empty() {
        return Geodesics { g, layers };
    }
    layer0.sort_unstable();
    layers.push(layer0);
    while let Some(u) = queue.pop_front() {
        let gu = g[u as usize];
        for (v, _) in adj.row_iter(u as usize) {
            if g[v] == UNREACHABLE {
                let gv = gu + 1;
                g[v] = gv;
                if layers.len() <= gv as usize {
                    layers.push(Vec::new());
                }
                layers[gv as usize].push(v as u32);
                queue.push_back(v as u32);
            }
        }
    }
    // FIFO BFS emits each layer in node order only per parent; normalize.
    for layer in &mut layers {
        layer.sort_unstable();
    }
    Geodesics { g, layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The example of Fig. 5(a,b): v1 has geodesic number 2; v2 and v7 are
    /// the explicit nodes. Node numbering here is 0-based (v1 → 0, ...).
    #[test]
    fn figure5_example() {
        let mut g = Graph::new(7);
        // Edges from Fig. 5a / Example 18's adjacency matrix A:
        // v1-v3, v1-v4, v2-v3, v2-v4, v3-v7, v4-v5, v5-v6, v6-v7.
        for (s, t) in [
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 6),
            (3, 4),
            (4, 5),
            (5, 6),
        ] {
            g.add_edge_unweighted(s, t);
        }
        let adj = g.adjacency();
        let geo = geodesic_numbers(&adj, &[1, 6]); // explicit: v2, v7
        assert_eq!(geo.g[1], 0);
        assert_eq!(geo.g[6], 0);
        assert_eq!(geo.g[2], 1); // v3 adjacent to both
        assert_eq!(geo.g[3], 1); // v4 adjacent to v2
        assert_eq!(geo.g[5], 1); // v6 adjacent to v7
        assert_eq!(geo.g[0], 2); // v1: two hops (via v3 or v4)
        assert_eq!(geo.g[4], 2); // v5: via v4 or v6
        assert_eq!(geo.num_layers(), 3);
        assert_eq!(geo.layers[0], vec![1, 6]);
        assert_eq!(geo.layers[2], vec![0, 4]);
    }

    #[test]
    fn no_sources() {
        let g = Graph::new(3);
        let geo = geodesic_numbers(&g.adjacency(), &[]);
        assert_eq!(geo.num_layers(), 0);
        assert_eq!(geo.num_unreachable(), 3);
        assert_eq!(geo.geodesic(0), None);
    }

    #[test]
    fn unreachable_component() {
        let mut g = Graph::new(4);
        g.add_edge_unweighted(0, 1);
        g.add_edge_unweighted(2, 3);
        let geo = geodesic_numbers(&g.adjacency(), &[0]);
        assert_eq!(geo.g[1], 1);
        assert_eq!(geo.geodesic(2), None);
        assert_eq!(geo.num_unreachable(), 2);
    }

    #[test]
    fn duplicate_sources_deduped() {
        let mut g = Graph::new(2);
        g.add_edge_unweighted(0, 1);
        let geo = geodesic_numbers(&g.adjacency(), &[0, 0, 0]);
        assert_eq!(geo.layers[0], vec![0]);
        assert_eq!(geo.g[1], 1);
    }

    #[test]
    fn path_graph_layers() {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge_unweighted(i, i + 1);
        }
        let geo = geodesic_numbers(&g.adjacency(), &[2]);
        assert_eq!(geo.g, vec![2, 1, 0, 1, 2]);
        assert_eq!(geo.layers[1], vec![1, 3]);
        assert_eq!(geo.layers[2], vec![0, 4]);
    }
}

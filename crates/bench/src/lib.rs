#![warn(missing_docs)]

//! Shared helpers for the experiment binaries (one binary per table /
//! figure of the paper — see DESIGN.md for the index).

use lsbp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Explicit beliefs in the style of the paper's synthetic experiments
/// (Sect. 7): `count` random nodes receive two random residuals from
/// `{−0.1, −0.09, …, 0.1}` and the third class the negative sum.
/// Uses an extra digit of noise when `tie_breaking` is set (the paper's
/// own fix for tied top beliefs: "choosing initial explicit beliefs with
/// additional digits removed these oscillations").
pub fn kronecker_style_beliefs(
    n: usize,
    k: usize,
    count: usize,
    seed: u64,
    tie_breaking: bool,
) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, k);
    let mut placed = 0;
    while placed < count.min(n) {
        let v = rng.gen_range(0..n);
        if e.is_explicit(v) {
            continue;
        }
        let mut row = vec![0.0; k];
        let mut sum = 0.0;
        for cell in row.iter_mut().take(k - 1) {
            let mut val = rng.gen_range(-10i32..=10) as f64 / 100.0;
            if tie_breaking {
                val += rng.gen_range(1..=9) as f64 / 10_000.0;
            }
            *cell = val;
            sum += val;
        }
        row[k - 1] = -sum;
        if row.iter().any(|&x| x != 0.0) {
            e.set_residual(v, &row).unwrap();
            placed += 1;
        }
    }
    e
}

/// Uniformly random one-hot class labels for `count` nodes.
pub fn random_labels(n: usize, k: usize, count: usize, seed: u64) -> ExplicitBeliefs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = ExplicitBeliefs::new(n, k);
    let mut placed = 0;
    while placed < count.min(n) {
        let v = rng.gen_range(0..n);
        if !e.is_explicit(v) {
            e.set_label(v, rng.gen_range(0..k), 1.0).unwrap();
            placed += 1;
        }
    }
    e
}

/// Wall-clock one call.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration like the paper's tables (seconds with adaptive
/// precision).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.0} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Parses `--key value` style CLI options with a default.
pub fn arg_usize(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Log-spaced εH sweep from `lo` to `hi` with `points` samples.
pub fn log_sweep(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && lo > 0.0 && hi > lo);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..points)
        .map(|i| (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beliefs_are_centered_and_counted() {
        let e = kronecker_style_beliefs(100, 3, 10, 1, false);
        assert_eq!(e.num_explicit(), 10);
        for v in e.explicit_nodes() {
            assert!(e.row(v).iter().sum::<f64>().abs() < 1e-12);
        }
    }

    #[test]
    fn tie_breaking_adds_digits() {
        let e = kronecker_style_beliefs(50, 3, 5, 2, true);
        // With extra digits, residuals should not land on the 0.01 grid.
        let off_grid = e
            .explicit_nodes()
            .iter()
            .flat_map(|&v| e.row(v).iter())
            .any(|&x| (x * 100.0 - (x * 100.0).round()).abs() > 1e-9);
        assert!(off_grid);
    }

    #[test]
    fn sweep_endpoints() {
        let s = log_sweep(1e-8, 1e-2, 7);
        assert_eq!(s.len(), 7);
        assert!((s[0] - 1e-8).abs() < 1e-20);
        assert!((s[6] - 1e-2).abs() < 1e-10);
    }

    #[test]
    fn labels_count() {
        let e = random_labels(40, 4, 7, 3);
        assert_eq!(e.num_explicit(), 7);
    }
}

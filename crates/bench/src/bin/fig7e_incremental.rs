//! Fig. 7(e): incremental ΔSBP vs full SBP recomputation, varying the
//! fraction of *new* explicit beliefs.
//!
//! Protocol (Sect. 7, Question 3): 10% of the nodes carry explicit
//! beliefs after the update; a fraction x of those are new. x sweeps
//! 10%…100%; the SBP recompute cost is constant, ΔSBP grows with x, and
//! the paper's crossover sits near x ≈ 50%. Runs on the relational
//! engine like the paper (graph `--graph 4`; paper used #5 = `--graph 5`).
//! `cargo run --release -p lsbp-bench --bin fig7e_incremental`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, random_labels, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_reldb::SqlDb;

fn main() {
    let id = arg_usize("--graph", 4).clamp(1, 9);
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let n = graph.num_nodes();
    let ho = CouplingMatrix::fig6b_residual();
    let total_explicit = n / 10;
    println!(
        "graph #{id}: {n} nodes, {} directed edges; {total_explicit} explicit after update",
        scale.directed_edges
    );
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>8}",
        "new frac", "new", "ΔSBP", "SBP(scratch)", "Δ/full"
    );

    for pct in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let new_count = total_explicit * pct / 100;
        let old_count = total_explicit - new_count;
        // Old labels (non-overlapping seeds) + base state.
        let old = random_labels(n, 3, old_count.max(1), 11);
        let mut db = SqlDb::new(&graph, &old, &ho);
        let mut state = db.sbp();
        // New labels, avoiding already-labeled nodes.
        let mut delta = ExplicitBeliefs::new(n, 3);
        {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(500 + pct as u64);
            let mut placed = 0;
            while placed < new_count {
                let v = rng.gen_range(0..n);
                if !old.is_explicit(v) && !delta.is_explicit(v) {
                    delta.set_label(v, rng.gen_range(0..3), 1.0).unwrap();
                    placed += 1;
                }
            }
        }
        let (_, t_delta) = time_once(|| db.sbp_add_explicit(&mut state, &delta));

        // Full recomputation with all labels.
        let mut all = old.clone();
        for v in delta.explicit_nodes() {
            all.set_residual(v, delta.row(v)).unwrap();
        }
        let db_full = SqlDb::new(&graph, &all, &ho);
        let (_, t_full) = time_once(|| db_full.sbp());
        println!(
            "{:>9}% {:>8} {:>12} {:>12} {:>8.2}",
            pct,
            new_count,
            fmt_duration(t_delta),
            fmt_duration(t_full),
            t_delta.as_secs_f64() / t_full.as_secs_f64()
        );
    }
    println!(
        "\nShape check vs paper: ΔSBP cost grows with the fraction of new beliefs and\n\
         crosses the flat recompute cost around ~50% (Result 3)."
    );
}

//! Fig. 7(b) + the SQL columns of Fig. 7(c): scalability of the
//! relational-engine LinBP, SBP and ΔSBP.
//!
//! Protocol (Sect. 7): LinBP runs 5 iterations; SBP runs to termination;
//! ΔSBP updates 1‰ of the nodes with new explicit beliefs on top of a 5%
//! labeled graph. Graphs #1–#4 by default (`--max 6` for more — the
//! boxed-row engine is deliberately a disk-DB stand-in and slows ~10× vs
//! the native path). `cargo run --release -p lsbp-bench --bin fig7b_sql`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, random_labels, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_reldb::SqlDb;

fn main() {
    let max_id = arg_usize("--max", 4).min(9);
    let eps = 0.0005;
    let ho = CouplingMatrix::fig6b_residual();
    let h_scaled = ho.scale(eps);

    println!("relational engine: LinBP (5 iter) vs SBP (to fixpoint) vs ΔSBP (1‰ new labels)");
    println!(
        "{:>2} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "#", "nodes", "edges", "LinBP", "SBP", "ΔSBP", "Lin/SBP", "SBP/ΔSBP"
    );
    for scale in kronecker_schedule().into_iter().filter(|s| s.id <= max_id) {
        let graph = kronecker_graph(scale.exponent);
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, scale.id as u64, false);
        let db_lin = SqlDb::new(&graph, &e, &h_scaled);
        let (_, linbp_time) = time_once(|| db_lin.linbp(5, true));

        // SBP uses the unscaled residual (its labels are scale-invariant).
        let mut db_sbp = SqlDb::new(&graph, &e, &ho);
        let (state, sbp_time) = time_once(|| db_sbp.sbp());
        let mut state = state;

        // ΔSBP: 1‰ of all nodes get new labels.
        let delta = random_labels(n, 3, (n / 1000).max(1), 1000 + scale.id as u64);
        let (_, delta_time) = time_once(|| db_sbp.sbp_add_explicit(&mut state, &delta));

        println!(
            "{:>2} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9.1} {:>10.1}",
            scale.id,
            n,
            scale.directed_edges,
            fmt_duration(linbp_time),
            fmt_duration(sbp_time),
            fmt_duration(delta_time),
            linbp_time.as_secs_f64() / sbp_time.as_secs_f64(),
            sbp_time.as_secs_f64() / delta_time.as_secs_f64(),
        );
    }
    println!(
        "\nPaper's qualitative claims: SBP ≈ 10–20× faster than LinBP in SQL; ΔSBP\n\
         another ≈ 2.5–7.5× over SBP recomputation (Fig. 7c columns 4–6)."
    );
}

//! Fig. 7(c): the combined timing table — in-memory BP/LinBP and
//! relational LinBP/SBP/ΔSBP side by side, with the paper's three
//! speed-up ratio columns (BP/LinBP, LinBP/SBP, SBP/ΔSBP).
//!
//! Default graphs #1–#4 (`--max N` up to 6; the relational engine
//! dominates the runtime beyond that, as the disk-bound PostgreSQL did in
//! the paper). `cargo run --release -p lsbp-bench --bin fig7c_table`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, random_labels, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_reldb::SqlDb;

fn main() {
    let max_id = arg_usize("--max", 4).min(9);
    let eps = 0.0005;
    let ho = CouplingMatrix::fig6b_residual();
    let h_scaled = ho.scale(eps);
    let h_raw = CouplingMatrix::from_residual(&ho, eps).unwrap();

    println!(
        "{:>2} | {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>8} {:>8} {:>9}",
        "#",
        "BP(mem)",
        "LinBP(mem)",
        "LinBP(rel)",
        "SBP(rel)",
        "ΔSBP(rel)",
        "BP/Lin",
        "Lin/SBP",
        "SBP/ΔSBP"
    );
    for scale in kronecker_schedule().into_iter().filter(|s| s.id <= max_id) {
        let graph = kronecker_graph(scale.exponent);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, scale.id as u64, false);

        let bp_opts = BpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let (_, t_bp) = time_once(|| bp(&adj, &e, h_raw.raw(), &bp_opts).unwrap());
        let lin_opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let (_, t_lin_mem) = time_once(|| linbp(&adj, &e, &h_scaled, &lin_opts).unwrap());

        let db_lin = SqlDb::new(&graph, &e, &h_scaled);
        let (_, t_lin_rel) = time_once(|| db_lin.linbp(5, true));
        let mut db_sbp = SqlDb::new(&graph, &e, &ho);
        let (state, t_sbp) = time_once(|| db_sbp.sbp());
        let mut state = state;
        let delta = random_labels(n, 3, (n / 1000).max(1), 77 + scale.id as u64);
        let (_, t_delta) = time_once(|| db_sbp.sbp_add_explicit(&mut state, &delta));

        println!(
            "{:>2} | {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>8.0} {:>8.1} {:>9.1}",
            scale.id,
            fmt_duration(t_bp),
            fmt_duration(t_lin_mem),
            fmt_duration(t_lin_rel),
            fmt_duration(t_sbp),
            fmt_duration(t_delta),
            t_bp.as_secs_f64() / t_lin_mem.as_secs_f64(),
            t_lin_rel.as_secs_f64() / t_sbp.as_secs_f64(),
            t_sbp.as_secs_f64() / t_delta.as_secs_f64(),
        );
    }
    println!(
        "\nPaper's Fig. 7c shape: BP/LinBP grows 60→642 with size; LinBP/SBP ≈ 10–20;\n\
         SBP/ΔSBP ≈ 2.5–7.5. Absolute numbers differ (in-memory engine vs PostgreSQL)."
    );
}

//! Appendix G: our exact LinBP criteria vs the Mooij–Kappen sufficient
//! bound for standard BP.
//!
//! Prints, for a family of graphs, ρ(A), ρ(A_edge), the empirical claim
//! ρ(A_edge) + 1 ≈ ρ(A), the εH range each criterion certifies, and which
//! bound wins where — reproducing the appendix's two take-aways:
//! (1) ρ(A_edge) < ρ(A), so Mooij can certify BP where LinBP diverges;
//! (2) in multi-class settings c(H) > ρ(Ĥ), so on high-degree graphs our
//! criteria certify more of the εH range.
//! `cargo run --release -p lsbp-bench --bin appg_bounds`

use lsbp::convergence::{mooij_constant, rho_edge_matrix};
use lsbp::prelude::*;
use lsbp_graph::generators::{
    complete, cycle, erdos_renyi_gnm, fig5c_torus, grid_2d, kronecker_graph,
};
use lsbp_graph::Graph;
use lsbp_linalg::spectral_radius_dense_symmetric;

fn main() {
    let coupling = CouplingMatrix::fig1c().unwrap();
    let ho = coupling.residual();
    let rho_ho = spectral_radius_dense_symmetric(&ho);
    // c(H) grows ≈ linearly in εH near 0; report its slope for comparison
    // with ρ(Ĥo) (the appendix's "c(H) > ρ(Ĥ)" observation).
    let c_slope = mooij_constant(&coupling.raw_at_scale(0.01)) / 0.01;
    println!("coupling Fig. 1c: ρ(Ĥo) = {rho_ho:.3}, c(H)/εH slope ≈ {c_slope:.3} (c > ρ ✓)\n");

    let cases: Vec<(&str, Graph)> = vec![
        ("torus (Fig. 5c)", fig5c_torus()),
        ("cycle C10", cycle(10)),
        ("grid 8×8", grid_2d(8, 8)),
        ("clique K8", complete(8)),
        ("G(300, 1500)", erdos_renyi_gnm(300, 1500, 4)),
        ("kronecker #1", kronecker_graph(5)),
        ("kronecker #3", kronecker_graph(7)),
    ];
    println!(
        "{:<16} {:>8} {:>10} {:>10} | {:>10} {:>10} {:>12}",
        "graph", "ρ(A)", "ρ(A_edge)", "ρ_e+1≈ρ?", "εH LinBP*", "εH Mooij", "winner"
    );
    for (name, graph) in &cases {
        let adj = graph.adjacency();
        let rho_a = adj.spectral_radius();
        let rho_e = rho_edge_matrix(&adj);
        let ours = eps_max_exact_linbp_star(&ho, &adj);
        let mooij = bisect_mooij(&coupling, rho_e);
        let winner = if !mooij.is_finite() || ours < mooij {
            "Mooij"
        } else {
            "LinBP*"
        };
        println!(
            "{name:<16} {rho_a:>8.3} {rho_e:>10.3} {:>10.3} | {ours:>10.4} {:>10.4} {winner:>12}",
            rho_e + 1.0,
            if mooij.is_finite() {
                mooij
            } else {
                f64::INFINITY
            },
        );
    }
    println!(
        "\nTake-aways to compare with Appendix G: neither bound subsumes the other —\n\
         sparse/low-degree graphs favor Mooij (ρ(A_edge) ≪ ρ(A)); dense graphs favor\n\
         the LinBP criterion (ρ(A_edge)+1 → ρ(A) while c(H) > ρ(Ĥ))."
    );
}

/// Largest εH with c(H(ε))·ρ(A_edge) < 1.
fn bisect_mooij(coupling: &CouplingMatrix, rho_edge: f64) -> f64 {
    if rho_edge < 1e-12 {
        return f64::INFINITY;
    }
    let certified = |eps: f64| mooij_constant(&coupling.raw_at_scale(eps)) * rho_edge < 1.0;
    let cap = coupling.max_positive_eps();
    if certified(cap * 0.999_999) {
        return cap;
    }
    let (mut lo, mut hi) = (0.0f64, cap);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if certified(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

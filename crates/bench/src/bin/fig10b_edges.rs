//! Fig. 10(b): incremental edge insertion (ΔSBP, Algorithm 4) vs full
//! SBP recomputation, varying the fraction of new edges.
//!
//! Paper's Result 6: incremental wins below ≈ 3% new edges; beyond ~10%
//! the cascading updates make recomputation cheaper. Relational engine,
//! 10% explicit beliefs fixed, graph `--graph 4` by default (paper: #5).
//! `cargo run --release -p lsbp-bench --bin fig10b_edges`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, random_labels, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_reldb::SqlDb;

fn main() {
    let id = arg_usize("--graph", 4).clamp(1, 9);
    let scale = kronecker_schedule()[id - 1];
    let full_graph = kronecker_graph(scale.exponent);
    let n = full_graph.num_nodes();
    let total_edges = full_graph.num_edges();
    let ho = CouplingMatrix::fig6b_residual();
    let labels = random_labels(n, 3, n / 10, 3);
    println!("graph #{id}: {n} nodes, {total_edges} undirected edges, 10% explicit");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>8}",
        "new frac", "edges", "ΔSBP", "SBP(scratch)", "Δ/full"
    );

    for pct_tenths in [5usize, 10, 20, 30, 50, 80, 100] {
        // pct_tenths is in ‰ of final edges: 5‰ = 0.5% … 100‰ = 10%.
        let new_count = (total_edges * pct_tenths / 1000).max(1);
        let keep = total_edges - new_count;
        let (base, extra) = full_graph.split_edges(keep);
        let new_edges: Vec<_> = extra.edges().collect();

        let mut db = SqlDb::new(&base, &labels, &ho);
        let mut state = db.sbp();
        let (_, t_delta) = time_once(|| db.sbp_add_edges(&mut state, &new_edges));

        let db_full = SqlDb::new(&full_graph, &labels, &ho);
        let (_, t_full) = time_once(|| db_full.sbp());
        println!(
            "{:>9.1}% {:>8} {:>12} {:>12} {:>8.2}",
            pct_tenths as f64 / 10.0,
            new_count,
            fmt_duration(t_delta),
            fmt_duration(t_full),
            t_delta.as_secs_f64() / t_full.as_secs_f64()
        );
    }
    println!(
        "\nShape check vs paper: ΔSBP cheaper for small batches, crossing the flat\n\
         recompute cost in the low single-digit percent range (Result 6); the\n\
         beneficial range is narrower than for belief updates (Fig. 7e)."
    );
}

//! Fig. 4 (a–d): Example 20 on the 8-node torus.
//!
//! Sweeps εH from 0.01 to 1 and prints, per method, the standardized
//! beliefs of node v4 (Figs. 4a–c) and the standard deviation σ(b̂v4)
//! (Fig. 4d), together with the exact (ρ) and sufficient (||) convergence
//! frontiers. `cargo run --release -p lsbp-bench --bin fig4_torus`

use lsbp::prelude::*;
use lsbp_bench::log_sweep;
use lsbp_graph::generators::{fig5c_torus, TORUS_V4};

fn main() {
    let graph = fig5c_torus();
    let adj = graph.adjacency();
    let coupling = CouplingMatrix::fig1c().unwrap();
    let ho = coupling.residual();
    let mut e = ExplicitBeliefs::new(8, 3);
    e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
    e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
    e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();

    // Reference: SBP (the εH → 0 limit — dashed horizontal lines in Fig. 4).
    let sbp_r = sbp(&adj, &e, &ho).unwrap();
    let sbp_std = sbp_r.beliefs.standardized(TORUS_V4);
    println!(
        "SBP reference (dashed lines): [{:.3}, {:.3}, {:.3}]   (paper: [-0.069, 1.258, -1.189])",
        sbp_std[0], sbp_std[1], sbp_std[2]
    );

    // Convergence frontiers (vertical lines in Fig. 4b/4c).
    println!(
        "frontiers: ρ(LinBP) = {:.3} (paper 0.488)   ρ(LinBP*) = {:.3} (paper 0.658)",
        eps_max_exact_linbp(&ho, &adj, 1e-5),
        eps_max_exact_linbp_star(&ho, &adj)
    );
    println!(
        "           ||(LinBP) = {:.3} (paper 0.360)  ||(LinBP*) = {:.3} (paper 0.455)",
        eps_max_sufficient_linbp(&ho, &adj),
        eps_max_sufficient_linbp_star(&ho, &adj)
    );

    println!(
        "\n{:>8} | {:^29} | {:^29} | {:^29} | {:>11}",
        "εH", "BP: ζ(b̂v4)", "LinBP: ζ(b̂v4)", "LinBP*: ζ(b̂v4)", "σ(b̂) LinBP"
    );
    let opts = LinBpOptions {
        max_iter: 100_000,
        tol: 1e-15,
        ..Default::default()
    };
    for eps in log_sweep(0.01, 1.0, 17) {
        let h = coupling.scaled_residual(eps);
        let fmt = |r: Option<Vec<f64>>| match r {
            Some(std) => format!("[{:+.3}, {:+.3}, {:+.3}]", std[0], std[1], std[2]),
            None => "      (diverged)       ".to_string(),
        };
        // Standard BP (positive potentials required: εH < 1 for fig1c).
        let bp_std = if eps < coupling.max_positive_eps() {
            bp(
                &adj,
                &e,
                &coupling.raw_at_scale(eps),
                &BpOptions {
                    max_iter: 2000,
                    tol: 1e-12,
                    ..Default::default()
                },
            )
            .ok()
            .filter(|r| r.converged)
            .map(|r| r.beliefs.standardized(TORUS_V4))
        } else {
            None
        };
        let lin = linbp(&adj, &e, &h, &opts).unwrap();
        let lin_std = (lin.converged && !lin.diverged).then(|| lin.beliefs.standardized(TORUS_V4));
        let star = linbp_star(&adj, &e, &h, &opts).unwrap();
        let star_std =
            (star.converged && !star.diverged).then(|| star.beliefs.standardized(TORUS_V4));
        let sigma = if lin.converged && !lin.diverged {
            format!("{:11.4e}", lin.beliefs.std_dev(TORUS_V4))
        } else {
            "     —".to_string()
        };
        println!(
            "{eps:>8.4} | {} | {} | {} | {sigma}",
            fmt(bp_std),
            fmt(lin_std),
            fmt(star_std)
        );
    }
    println!("\n(Fig. 4d check: σ ≈ εH³·0.332 in the small-εH regime.)");
}

//! Fig. 6(a): the synthetic Kronecker graph schedule.
//!
//! Regenerates the table — number of nodes, edges (directed entries),
//! edge/node ratio and the 5% / 1‰ explicit-belief counts — and verifies
//! the generated graphs match it. By default builds graphs #1–#6
//! (`--max 9` builds the full schedule; #9 needs ~8 GB and minutes).
//! `cargo run --release -p lsbp-bench --bin fig6_graphs`

use lsbp_bench::arg_usize;
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};

fn main() {
    let max_id = arg_usize("--max", 6).min(9);
    println!(
        "{:>2} {:>12} {:>12} {:>6} {:>8} {:>6}   built?",
        "#", "nodes n", "edges e", "e/n", "5%", "1‰"
    );
    for scale in kronecker_schedule() {
        let five_pct = scale.nodes / 20;
        let one_permille = (scale.nodes as f64 / 1000.0).round() as usize;
        let built = if scale.id <= max_id {
            let g = kronecker_graph(scale.exponent);
            assert_eq!(g.num_nodes(), scale.nodes, "node count mismatch");
            assert_eq!(
                g.num_directed_edges(),
                scale.directed_edges,
                "edge count mismatch"
            );
            format!("✓ ({} components)", g.num_components())
        } else {
            "(skipped — raise --max)".to_string()
        };
        println!(
            "{:>2} {:>12} {:>12} {:>6.1} {:>8} {:>6}   {}",
            scale.id,
            scale.nodes,
            scale.directed_edges,
            scale.directed_edges as f64 / scale.nodes as f64,
            five_pct,
            one_permille,
            built
        );
    }
    println!("\nUnscaled residual coupling matrix Ĥo (Fig. 6b):");
    let ho = lsbp::coupling::CouplingMatrix::fig6b_residual();
    for r in 0..3 {
        println!("  [{:>4} {:>4} {:>4}]", ho[(r, 0)], ho[(r, 1)], ho[(r, 2)]);
    }
}

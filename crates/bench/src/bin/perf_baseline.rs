//! Kernel performance baseline — the `BENCH_*.json` perf trajectory.
//!
//! Times the workspace's hot kernels (SpMV, SpMM, CSR transpose, LinBP
//! iterations, BP message rounds, SBP) on generated Kronecker and
//! DBLP-like graphs across a sweep of thread counts, verifies every
//! parallel result is **bitwise identical** to the serial reference, and
//! writes the measurements as JSON so future PRs can prove their
//! speedups (or catch regressions) against a recorded baseline.
//!
//! ```text
//! cargo run --release -p lsbp-bench --bin perf_baseline -- \
//!     [--m 9] [--reps 3] [--threads 1,2,4,8] [--dblp 1] [--out BENCH_kernels.json]
//! ```
//!
//! `--m` sets the largest Kronecker exponent (default 9: 19,683 nodes /
//! 262,144 directed edges — comfortably past the 100k-edge mark);
//! `--dblp 0` and a small `--m` make a CI smoke run, with `--min-work 1`
//! forcing even those tiny kernels through the parallel code path so the
//! bitwise-identity assertion stays meaningful at smoke sizes.

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{dblp_like, erdos_renyi_gnm, kronecker_graph, DblpConfig};
use lsbp_graph::Graph;
use lsbp_linalg::{weight_balanced_ranges, Mat};
use lsbp_net::{ErrorCode, LinBpParams, Request, Response, WireEdge, WireNorm, WireSeed};
use lsbp_server::{DegradationPolicy, ServerConfig, ServerCore};
use lsbp_sparse::{CsrMatrix, FusedLinBpStep, PropagationOperator, ShardedCsr};
use std::ops::Range;
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// One timed (graph, kernel, thread-count) measurement.
struct Record {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    kernel: &'static str,
    threads: usize,
    secs: f64,
    speedup_vs_serial: f64,
    identical_to_serial: bool,
}

fn arg_string(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn arg_thread_list() -> Vec<usize> {
    let raw = arg_string("--threads", "1,2,4,8");
    let mut threads: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    if !threads.contains(&1) {
        threads.push(1);
    }
    threads.sort_unstable();
    threads.dedup();
    threads
}

/// Times `run` at every thread count (best of `reps`), using the
/// 1-thread run as the serial reference for both the speedup column and
/// the bitwise-identity check.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn bench_kernel<T: PartialEq>(
    records: &mut Vec<Record>,
    graph: &str,
    nodes: usize,
    directed_edges: usize,
    kernel: &'static str,
    threads: &[usize],
    reps: usize,
    mut run: impl FnMut(&ParallelismConfig) -> T,
) {
    let min_work = arg_usize("--min-work", 0);
    let reference = run(&ParallelismConfig::serial());
    let mut serial_secs = f64::NAN;
    for &t in threads {
        let mut cfg = ParallelismConfig::with_threads(t);
        if min_work > 0 {
            cfg = cfg.with_min_work(min_work);
        }
        let mut best = f64::INFINITY;
        let mut output = None;
        for _ in 0..reps {
            let (out, d) = time_once(|| run(&cfg));
            best = best.min(d.as_secs_f64());
            output = Some(out);
        }
        let identical = output.as_ref() == Some(&reference);
        if t == 1 {
            serial_secs = best;
        }
        let record = Record {
            graph: graph.to_string(),
            nodes,
            directed_edges,
            kernel,
            threads: t,
            secs: best,
            speedup_vs_serial: serial_secs / best,
            identical_to_serial: identical,
        };
        println!(
            "{:>14} {:>12} t={:<2} {:>12.6}s  speedup {:>5.2}x  identical={}",
            record.graph, record.kernel, t, record.secs, record.speedup_vs_serial, identical
        );
        records.push(record);
    }
}

/// Runs the full kernel suite on one graph.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn run_suite(
    records: &mut Vec<Record>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    threads: &[usize],
    reps: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    println!("\n== {label}: {n} nodes, {de} directed edges, k={k} ==");

    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1 - 0.6).collect();
    bench_kernel(records, label, n, de, "spmv", threads, reps, |cfg| {
        let mut y = vec![0.0; n];
        adj.spmv_into_with(&x, &mut y, cfg);
        y
    });

    let b = Mat::from_fn(n, k, |r, c| ((r * k + c) % 17) as f64 * 0.01 - 0.08);
    bench_kernel(records, label, n, de, "spmm", threads, reps, |cfg| {
        adj.spmm_with(&b, cfg)
    });

    bench_kernel(records, label, n, de, "transpose", threads, reps, |cfg| {
        adj.transpose_with(cfg)
    });

    // Dense matmul at belief shape: B̂·Ĥ (n×k · k×k) — the per-iteration
    // dense factor of LinBP, now a 4-lane kernel.
    let hk = h_residual_unscaled.clone();
    bench_kernel(records, label, n, de, "matmul", threads, reps, |cfg| {
        let mut out = Mat::zeros(n, k);
        b.matmul_into_with(&hk, &mut out, cfg);
        out
    });

    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let h = h_residual_unscaled.scale(eps);
    bench_kernel(records, label, n, de, "linbp_5iter", threads, reps, |cfg| {
        let opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            parallelism: *cfg,
            ..Default::default()
        };
        linbp(&adj, &explicit, &h, &opts)
            .expect("linbp dimensions are consistent")
            .beliefs
            .residual()
            .clone()
    });

    let h_raw = CouplingMatrix::from_residual(h_residual_unscaled, eps)
        .expect("scaled coupling is a valid BP potential");
    bench_kernel(records, label, n, de, "bp_3rounds", threads, reps, |cfg| {
        let opts = BpOptions {
            max_iter: 3,
            tol: 0.0,
            parallelism: *cfg,
            ..Default::default()
        };
        bp(&adj, &explicit, h_raw.raw(), &opts)
            .expect("bp dimensions are consistent")
            .beliefs
            .residual()
            .clone()
    });

    bench_kernel(records, label, n, de, "sbp", threads, reps, |cfg| {
        let r = sbp_with(&adj, &explicit, h_residual_unscaled, cfg)
            .expect("sbp dimensions are consistent");
        (r.beliefs.residual().clone(), r.geodesics.g)
    });

    // Batched multi-query LinBP (q = 8): one stacked fused pass per
    // iteration answers eight seed-sets.
    let batch_queries: Vec<ExplicitBeliefs> = (0..8)
        .map(|j| kronecker_style_beliefs(n, k, (n / 40).max(1), 11 + j as u64, false))
        .collect();
    bench_kernel(
        records,
        label,
        n,
        de,
        "linbp_batch_q8",
        threads,
        reps,
        |cfg| {
            let opts = LinBpOptions {
                max_iter: 5,
                tol: 0.0,
                parallelism: *cfg,
                ..Default::default()
            };
            linbp_batch(&adj, &batch_queries, &h, &opts)
                .expect("batch dimensions are consistent")
                .into_iter()
                .map(|r| r.beliefs.residual().clone())
                .collect::<Vec<_>>()
        },
    );
}

/// One scalar-vs-SIMD kernel measurement (single-threaded).
struct SimdRecord {
    graph: String,
    kernel: &'static str,
    scalar_secs: f64,
    simd_secs: f64,
    speedup: f64,
}

/// One fused-vs-unfused LinBP step measurement (single-threaded).
struct FusedRecord {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    unfused_secs: f64,
    fused_secs: f64,
    speedup: f64,
    identical: bool,
}

/// Pre-PR4 scalar kernel replicas — the "old" side of the `simd`
/// old-vs-new comparison, kept here as benchmark baselines exactly like
/// the scoped-spawn executor replica below.
mod scalar_ref {
    use super::*;

    /// The old sequential SpMV row kernel (single accumulator per row).
    pub fn spmv(adj: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (&c, &v) in adj.row_cols(r).iter().zip(adj.row_values(r)) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
    }

    /// The old SpMM row kernel — a faithful replica of the pre-PR4
    /// per-entry element-wise zip (same accumulation order as today's
    /// `axpy4`-based kernel, so this measures the unroll alone).
    pub fn spmm(adj: &CsrMatrix, b: &Mat, out: &mut Mat) {
        let row_len = b.cols();
        let block = out.as_mut_slice();
        block.iter_mut().for_each(|x| *x = 0.0);
        for r in 0..adj.n_rows() {
            let o_row = &mut block[r * row_len..(r + 1) * row_len];
            for (&c, &v) in adj.row_cols(r).iter().zip(adj.row_values(r)) {
                for (o, &bv) in o_row.iter_mut().zip(b.row(c as usize)) {
                    *o += v * bv;
                }
            }
        }
    }

    /// The old scalar ikj dense matmul — a faithful replica of the
    /// pre-PR4 `matmul_rows` inner loop: hoisted row slices, zero skip,
    /// element-wise zip (no per-element index arithmetic, so the timed
    /// difference is the 4-lane rewrite, not bounds-check noise).
    pub fn matmul(a: &Mat, b: &Mat, out: &mut Mat) {
        let row_len = b.cols();
        let block = out.as_mut_slice();
        block.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let o_row = &mut block[i * row_len..(i + 1) * row_len];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                for (o, &bv) in o_row.iter_mut().zip(b.row(k)) {
                    *o += a_ik * bv;
                }
            }
        }
    }

    /// The old sequential squared-difference sum.
    pub fn l2_diff(a: &Mat, b: &Mat) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// The old sequential max-abs-difference fold.
    pub fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
    }
}

/// Times `f` (already looped `inner` times internally is NOT assumed:
/// this helper runs it `inner` times per sample) and returns best-of-reps
/// seconds per call.
fn best_secs_per_call(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, d) = time_once(|| {
            for _ in 0..inner {
                f();
            }
        });
        best = best.min(d.as_secs_f64() / inner as f64);
    }
    best
}

/// Scalar-replica vs. 4-lane kernels on one graph, single-threaded —
/// the `simd` section of the JSON.
fn run_simd_suite(
    records: &mut Vec<SimdRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    reps: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let cfg = ParallelismConfig::serial();
    let mut push = |kernel: &'static str, scalar_secs: f64, simd_secs: f64| {
        let rec = SimdRecord {
            graph: label.to_string(),
            kernel,
            scalar_secs,
            simd_secs,
            speedup: scalar_secs / simd_secs,
        };
        println!(
            "{:>14} {:>12} scalar {:>12.6}s  simd {:>12.6}s  speedup {:>5.2}x",
            rec.graph, rec.kernel, rec.scalar_secs, rec.simd_secs, rec.speedup
        );
        records.push(rec);
    };

    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1 - 0.6).collect();
    let mut y = vec![0.0f64; n];
    let scalar = best_secs_per_call(reps, 10, || scalar_ref::spmv(&adj, &x, &mut y));
    let simd = best_secs_per_call(reps, 10, || adj.spmv_into_with(&x, &mut y, &cfg));
    push("spmv", scalar, simd);

    let a = Mat::from_fn(n, k, |r, c| ((r * k + c) % 17) as f64 * 0.01 - 0.08);
    let mut spmm_out = Mat::zeros(n, k);
    let scalar = best_secs_per_call(reps, 10, || scalar_ref::spmm(&adj, &a, &mut spmm_out));
    let simd = best_secs_per_call(reps, 10, || adj.spmm_into_with(&a, &mut spmm_out, &cfg));
    push("spmm", scalar, simd);

    let hk = Mat::from_fn(k, k, |r, c| 0.11 * (r as f64 - c as f64) + 0.07);
    let mut out = Mat::zeros(n, k);
    let scalar = best_secs_per_call(reps, 10, || scalar_ref::matmul(&a, &hk, &mut out));
    let simd = best_secs_per_call(reps, 10, || a.matmul_into_with(&hk, &mut out, &cfg));
    push("matmul", scalar, simd);

    let b2 = Mat::from_fn(n, k, |r, c| ((r * k + c) % 19) as f64 * 0.01 - 0.09);
    let mut sink = 0.0f64;
    let scalar = best_secs_per_call(reps, 40, || sink += scalar_ref::l2_diff(&a, &b2));
    let simd = best_secs_per_call(reps, 40, || sink += a.l2_diff(&b2));
    push("l2_diff", scalar, simd);

    let scalar = best_secs_per_call(reps, 40, || sink += scalar_ref::max_abs_diff(&a, &b2));
    let simd = best_secs_per_call(reps, 40, || sink += a.max_abs_diff_with(&b2, &cfg));
    push("max_abs_diff", scalar, simd);
    assert!(sink.is_finite(), "benchmark sink went non-finite");
}

/// Fused vs. unfused LinBP step (5 iterations each, single-threaded) on
/// one graph — the `fused_linbp` section of the JSON. The unfused side is
/// the PR 3 per-iteration cost: `linbp_step` (SpMM + dense `·Ĥ` + add +
/// echo passes) plus the separate max-abs convergence pass.
fn run_fused_suite(
    records: &mut Vec<FusedRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    reps: usize,
) {
    const ITERS: usize = 5;
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    let cfg = ParallelismConfig::serial();
    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let e_hat = explicit.residual_matrix().clone();
    let h = h_residual_unscaled.scale(eps);
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();

    let run_unfused = || {
        let mut b = e_hat.clone();
        let mut next = Mat::zeros(n, k);
        let mut scratch = LinBpScratch::new(n, k);
        let mut delta = 0.0f64;
        for _ in 0..ITERS {
            linbp_step(
                &adj,
                &e_hat,
                &b,
                &h,
                Some(&h2),
                &degrees,
                &mut scratch,
                &mut next,
                &cfg,
            );
            delta = next.max_abs_diff_with(&b, &cfg);
            std::mem::swap(&mut b, &mut next);
        }
        (b, delta)
    };
    let run_fused = || {
        let mut b = e_hat.clone();
        let mut next = Mat::zeros(n, k);
        let mut deltas = [0.0f64];
        let step = FusedLinBpStep {
            e_hat: &e_hat,
            h: &h,
            h2: Some(&h2),
            degrees: &degrees,
            damping: 0.0,
        };
        for _ in 0..ITERS {
            adj.linbp_step_fused_with(&b, &step, &mut next, &mut deltas, &cfg);
            std::mem::swap(&mut b, &mut next);
        }
        (b, deltas[0])
    };

    let (unfused_out, unfused_delta) = run_unfused();
    let (fused_out, fused_delta) = run_fused();
    let identical = unfused_out
        .as_slice()
        .iter()
        .zip(fused_out.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && unfused_delta.to_bits() == fused_delta.to_bits();

    let mut unfused_secs = f64::INFINITY;
    let mut fused_secs = f64::INFINITY;
    for _ in 0..reps {
        let (_, d) = time_once(run_unfused);
        unfused_secs = unfused_secs.min(d.as_secs_f64());
        let (_, d2) = time_once(run_fused);
        fused_secs = fused_secs.min(d2.as_secs_f64());
    }
    let rec = FusedRecord {
        graph: label.to_string(),
        nodes: n,
        directed_edges: de,
        unfused_secs,
        fused_secs,
        speedup: unfused_secs / fused_secs,
        identical,
    };
    println!(
        "{:>14} fused_linbp ({ITERS} iters) unfused {:>12.6}s  fused {:>12.6}s  \
         speedup {:>5.2}x  identical={}",
        rec.graph, rec.unfused_secs, rec.fused_secs, rec.speedup, rec.identical
    );
    records.push(rec);
}

/// One full-vs-frontier LinBP solve measurement (single-threaded).
struct FrontierRecord {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    iterations: usize,
    rows_active: u64,
    rows_skipped: u64,
    skip_ratio: f64,
    full_secs: f64,
    frontier_cold_secs: f64,
    frontier_warm_secs: f64,
    speedup: f64,
    identical: bool,
}

/// Active-frontier execution vs. full recomputation on a long fixed-budget
/// exact solve (`tol = 0`, every sweep runs). The solve iterates well past
/// bitwise stationarity, which is exactly the regime change-tracking is
/// for: once a row's inputs stop changing a single bit, the frontier
/// proves every later recomputation redundant and skips it — while the
/// full path re-derives the identical bits sweep after sweep. Beliefs,
/// iteration counts, and final deltas are asserted bitwise equal.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn run_frontier_suite(
    records: &mut Vec<FrontierRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    budget: usize,
    reps: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let h = h_residual_unscaled.scale(eps);
    let run = |frontier: bool| {
        let opts = LinBpOptions {
            max_iter: budget,
            tol: 0.0,
            norm: ToleranceNorm::MaxAbs,
            damping: 0.0,
            divergence_guard: 1e12,
            parallelism: ParallelismConfig::serial().with_frontier(frontier),
        };
        linbp(&adj, &explicit, &h, &opts).expect("linbp dimensions are consistent")
    };

    let full = run(false);
    let frontier = run(true);
    let identical = full
        .beliefs
        .residual()
        .as_slice()
        .iter()
        .zip(frontier.beliefs.residual().as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && full.iterations == frontier.iterations
        && full.final_delta.to_bits() == frontier.final_delta.to_bits();

    let mut full_secs = f64::INFINITY;
    let mut frontier_cold_secs = f64::NAN;
    let mut frontier_warm_secs = f64::INFINITY;
    for rep in 0..reps {
        let (_, d) = time_once(|| run(false));
        full_secs = full_secs.min(d.as_secs_f64());
        let (_, d2) = time_once(|| run(true));
        if rep == 0 {
            frontier_cold_secs = d2.as_secs_f64();
        } else {
            frontier_warm_secs = frontier_warm_secs.min(d2.as_secs_f64());
        }
    }
    if !frontier_warm_secs.is_finite() {
        frontier_warm_secs = frontier_cold_secs;
    }
    let total = frontier.rows_active + frontier.rows_skipped;
    let rec = FrontierRecord {
        graph: label.to_string(),
        nodes: n,
        directed_edges: de,
        iterations: frontier.iterations,
        rows_active: frontier.rows_active,
        rows_skipped: frontier.rows_skipped,
        skip_ratio: frontier.rows_skipped as f64 / total.max(1) as f64,
        full_secs,
        frontier_cold_secs,
        frontier_warm_secs,
        speedup: full_secs / frontier_warm_secs,
        identical,
    };
    println!(
        "{:>14} frontier ({budget} sweeps) full {:>10.4}s  frontier cold {:>10.4}s / warm \
         {:>10.4}s  skip {:>5.1}%  speedup {:>5.2}x  identical={}",
        rec.graph,
        rec.full_secs,
        rec.frontier_cold_secs,
        rec.frontier_warm_secs,
        100.0 * rec.skip_ratio,
        rec.speedup,
        rec.identical
    );
    records.push(rec);
}

/// One monolithic-vs-sharded measurement (single-threaded).
struct ShardedRecord {
    graph: String,
    kernel: &'static str,
    shards: usize,
    monolithic_secs: f64,
    sharded_secs: f64,
    /// `monolithic_secs / sharded_secs` — ≥ 1 means the sharded layout is
    /// at least as fast; the acceptance bar is ≥ 0.95 (row-order shard
    /// streaming must cost at most 5% over the monolithic sweep).
    rel_throughput: f64,
    /// One-off cost of `ShardedCsr::from_csr` at this shard count — what
    /// the *knob route* (`LSBP_SHARDS` / `with_shards` on a `CsrMatrix`
    /// front door) pays per call before solving; the `*_on` operator
    /// route pays it once at layout-build time. Recorded so the
    /// "sharding is free" read-out stays honest about the conversion.
    build_secs: f64,
    identical: bool,
}

fn arg_shard_list() -> Vec<usize> {
    arg_string("--shards", "2,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&s: &usize| s >= 1)
        .collect()
}

/// Monolithic [`CsrMatrix`] vs. [`ShardedCsr`] across a shard-count
/// sweep, single-threaded, on the two kernels that dominate solves: the
/// fused LinBP step (5 iterations, exactly the `fused_linbp` protocol)
/// and the standalone SpMM — the `sharded` section of the JSON, with the
/// bitwise-identity check inline.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn run_sharded_suite(
    records: &mut Vec<ShardedRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    shard_sweep: &[usize],
    reps: usize,
) {
    const ITERS: usize = 5;
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let cfg = ParallelismConfig::serial();
    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let e_hat = explicit.residual_matrix().clone();
    let h = h_residual_unscaled.scale(eps);
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();
    let b_spmm = Mat::from_fn(n, k, |r, c| ((r * k + c) % 17) as f64 * 0.01 - 0.08);

    let run_linbp = |op: &dyn PropagationOperator| {
        let mut b = e_hat.clone();
        let mut next = Mat::zeros(n, k);
        let mut deltas = [0.0f64];
        let step = FusedLinBpStep {
            e_hat: &e_hat,
            h: &h,
            h2: Some(&h2),
            degrees: &degrees,
            damping: 0.0,
        };
        for _ in 0..ITERS {
            op.linbp_step_fused_with(&b, &step, &mut next, &mut deltas, &cfg);
            std::mem::swap(&mut b, &mut next);
        }
        (b, deltas[0])
    };
    let run_spmm = |op: &dyn PropagationOperator| {
        let mut out = Mat::zeros(n, k);
        op.spmm_into_with(&b_spmm, &mut out, &cfg);
        out
    };

    let best_of = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (_, d) = time_once(&mut *f);
            best = best.min(d.as_secs_f64());
        }
        best
    };

    let (mono_linbp, mono_delta) = run_linbp(&adj);
    let mono_linbp_secs = best_of(&mut || {
        let _ = run_linbp(&adj);
    });
    let mono_spmm = run_spmm(&adj);
    let mono_spmm_secs = best_of(&mut || {
        let _ = run_spmm(&adj);
    });

    for &shards in shard_sweep {
        let build_secs = best_of(&mut || {
            let _ = ShardedCsr::from_csr(&adj, shards);
        });
        let sharded = ShardedCsr::from_csr(&adj, shards);
        let (shard_linbp, shard_delta) = run_linbp(&sharded);
        let linbp_identical = mono_linbp
            .as_slice()
            .iter()
            .zip(shard_linbp.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && mono_delta.to_bits() == shard_delta.to_bits();
        let shard_linbp_secs = best_of(&mut || {
            let _ = run_linbp(&sharded);
        });
        let shard_spmm = run_spmm(&sharded);
        let spmm_identical = mono_spmm
            .as_slice()
            .iter()
            .zip(shard_spmm.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let shard_spmm_secs = best_of(&mut || {
            let _ = run_spmm(&sharded);
        });
        for (kernel, mono_secs, shard_secs, identical) in [
            (
                "linbp_5iter",
                mono_linbp_secs,
                shard_linbp_secs,
                linbp_identical,
            ),
            ("spmm", mono_spmm_secs, shard_spmm_secs, spmm_identical),
        ] {
            let rec = ShardedRecord {
                graph: label.to_string(),
                kernel,
                shards,
                monolithic_secs: mono_secs,
                sharded_secs: shard_secs,
                rel_throughput: mono_secs / shard_secs,
                build_secs,
                identical,
            };
            println!(
                "{:>14} {:>12} shards={:<3} monolithic {:>12.6}s  sharded {:>12.6}s  \
                 rel {:>5.2}x  build {:>12.6}s  identical={}",
                rec.graph,
                rec.kernel,
                shards,
                rec.monolithic_secs,
                rec.sharded_secs,
                rec.rel_throughput,
                rec.build_secs,
                rec.identical
            );
            records.push(rec);
        }
    }
}

/// One resident-vs-paged measurement at one buffer-pool budget.
struct OutOfCoreRecord {
    graph: String,
    kernel: &'static str,
    /// "unbudgeted", "half" or "quarter" (of the resident CSR bytes).
    budget: &'static str,
    budget_bytes: u64,
    resident_secs: f64,
    /// First pass on a freshly opened store — includes the demand loads.
    cold_secs: f64,
    /// Best-of-reps after the store has been walked once.
    warm_secs: f64,
    /// `resident_secs / warm_secs` — the acceptance bar is ≥ 0.5 on the
    /// warm unbudgeted pass (paging must cost at most 2× once resident).
    warm_rel_throughput: f64,
    misses: u64,
    evictions: u64,
    prefetches: u64,
    identical: bool,
}

/// Resident [`CsrMatrix`] vs. the spilled [`PagedCsr`] at buffer-pool
/// budgets {∞, ½, ¼} of the CSR's resident bytes, single-threaded, on
/// the fused LinBP step (5 iterations) and the standalone SpMM — the
/// `out_of_core` section of the JSON, with the bitwise-identity check
/// inline. The ½ and ¼ budgets force eviction cycling on every pass;
/// the unbudgeted run measures steady-state (warm, all-hits) overhead.
fn run_out_of_core_suite(
    records: &mut Vec<OutOfCoreRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    reps: usize,
) {
    const ITERS: usize = 5;
    const SHARDS: usize = 8;
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let cfg = ParallelismConfig::serial();
    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let e_hat = explicit.residual_matrix().clone();
    let h = h_residual_unscaled.scale(eps);
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();
    let b_spmm = Mat::from_fn(n, k, |r, c| ((r * k + c) % 17) as f64 * 0.01 - 0.08);

    let run_linbp = |op: &dyn PropagationOperator| {
        let mut b = e_hat.clone();
        let mut next = Mat::zeros(n, k);
        let mut deltas = [0.0f64];
        let step = FusedLinBpStep {
            e_hat: &e_hat,
            h: &h,
            h2: Some(&h2),
            degrees: &degrees,
            damping: 0.0,
        };
        for _ in 0..ITERS {
            op.linbp_step_fused_with(&b, &step, &mut next, &mut deltas, &cfg);
            std::mem::swap(&mut b, &mut next);
        }
        (b, deltas[0])
    };
    let run_spmm = |op: &dyn PropagationOperator| {
        let mut out = Mat::zeros(n, k);
        op.spmm_into_with(&b_spmm, &mut out, &cfg);
        out
    };
    let best_of = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (_, d) = time_once(&mut *f);
            best = best.min(d.as_secs_f64());
        }
        best
    };

    let (res_linbp, res_delta) = run_linbp(&adj);
    let res_linbp_secs = best_of(&mut || {
        let _ = run_linbp(&adj);
    });
    let res_spmm = run_spmm(&adj);
    let res_spmm_secs = best_of(&mut || {
        let _ = run_spmm(&adj);
    });

    let csr_bytes = (adj.n_rows() + 1) * std::mem::size_of::<usize>() + adj.nnz() * (4 + 8);
    let dir = std::env::temp_dir().join(format!("lsbp-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench spill dir");
    let path = dir.join(format!("{label}.lsbp"));
    PagedCsr::spill(&adj, &path, SHARDS, PagedOptions::default())
        .expect("spilling the bench graph");

    for (budget, bname) in [
        (None, "unbudgeted"),
        (Some(csr_bytes / 2), "half"),
        (Some(csr_bytes / 4), "quarter"),
    ] {
        let opts = PagedOptions::default().with_budget(budget);
        for kernel in ["linbp_5iter", "spmm"] {
            // Fresh open per kernel so the cold pass really demand-loads.
            let paged = PagedCsr::open(&path, opts).expect("reopening the bench store");
            let (cold_secs, identical) = if kernel == "linbp_5iter" {
                let (out, d0) = time_once(|| run_linbp(&paged));
                let (b, delta) = out;
                (
                    d0.as_secs_f64(),
                    b.as_slice()
                        .iter()
                        .zip(res_linbp.as_slice())
                        .all(|(a, c)| a.to_bits() == c.to_bits())
                        && delta.to_bits() == res_delta.to_bits(),
                )
            } else {
                let (out, d0) = time_once(|| run_spmm(&paged));
                (
                    d0.as_secs_f64(),
                    out.as_slice()
                        .iter()
                        .zip(res_spmm.as_slice())
                        .all(|(a, c)| a.to_bits() == c.to_bits()),
                )
            };
            let warm_secs = if kernel == "linbp_5iter" {
                best_of(&mut || {
                    let _ = run_linbp(&paged);
                })
            } else {
                best_of(&mut || {
                    let _ = run_spmm(&paged);
                })
            };
            let stats = paged.stats();
            let resident_secs = if kernel == "linbp_5iter" {
                res_linbp_secs
            } else {
                res_spmm_secs
            };
            let rec = OutOfCoreRecord {
                graph: label.to_string(),
                kernel: if kernel == "linbp_5iter" {
                    "linbp_5iter"
                } else {
                    "spmm"
                },
                budget: bname,
                budget_bytes: budget.unwrap_or(0) as u64,
                resident_secs,
                cold_secs,
                warm_secs,
                warm_rel_throughput: resident_secs / warm_secs,
                misses: stats.misses,
                evictions: stats.evictions,
                prefetches: stats.prefetches,
                identical,
            };
            println!(
                "{:>14} {:>12} budget={:<10} resident {:>12.6}s  cold {:>12.6}s  \
                 warm {:>12.6}s  rel {:>5.2}x  misses={} evictions={} prefetches={} \
                 identical={}",
                rec.graph,
                rec.kernel,
                rec.budget,
                rec.resident_secs,
                rec.cold_secs,
                rec.warm_secs,
                rec.warm_rel_throughput,
                rec.misses,
                rec.evictions,
                rec.prefetches,
                rec.identical
            );
            records.push(rec);
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// `gather_dot4` exactly as shipped, minus the software prefetch hints —
/// the "before" half of the gather-prefetch measurement. Identical lane
/// structure, so the result is bit-for-bit the hinted kernel's.
fn gather_dot4_no_prefetch(idx: &[u32], w: &[f64], x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut ic = idx.chunks_exact(4);
    let mut wc = w.chunks_exact(4);
    for (ii, ww) in (&mut ic).zip(&mut wc) {
        for l in 0..4 {
            acc[l] += ww[l] * x[ii[l] as usize];
        }
    }
    for (l, (&i, &v)) in ic.remainder().iter().zip(wc.remainder()).enumerate() {
        acc[l] += v * x[i as usize];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Full-matrix SpMV via per-row gathers, with and without the software
/// prefetch hints in the gather loop — the before/after line for the
/// gather-prefetch change. Returns (without_secs, with_secs, identical).
fn bench_gather_prefetch(graph: &Graph, reps: usize) -> (f64, f64, bool) {
    let adj = graph.adjacency();
    let n = adj.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.03 - 0.31).collect();
    type GatherFn = dyn Fn(&[u32], &[f64], &[f64]) -> f64;
    let sweep = |gather: &GatherFn, y: &mut [f64]| {
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = gather(adj.row_cols(r), adj.row_values(r), &x);
        }
    };
    let best_of = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(3) {
            let (_, d) = time_once(&mut *f);
            best = best.min(d.as_secs_f64());
        }
        best
    };
    let mut y_without = vec![0.0; n];
    let mut y_with = vec![0.0; n];
    sweep(&gather_dot4_no_prefetch, &mut y_without);
    sweep(&lsbp_linalg::simd::gather_dot4, &mut y_with);
    let identical = y_without
        .iter()
        .zip(&y_with)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let without_secs = best_of(&mut || sweep(&gather_dot4_no_prefetch, &mut y_without));
    let with_secs = best_of(&mut || sweep(&lsbp_linalg::simd::gather_dot4, &mut y_with));
    (without_secs, with_secs, identical)
}

/// One sequential-vs-coalesced serving measurement: the same `q` LinBP
/// queries answered one at a time versus stacked by the server's
/// admission coalescer into a single batched solve.
struct ServingRecord {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    queries: usize,
    sequential_secs: f64,
    coalesced_secs: f64,
    /// SpMM sweeps the sequential server executed (Σ per-query iterations).
    sequential_spmm_passes: u64,
    /// SpMM sweeps the coalescing server executed (max iterations in the
    /// one stacked solve).
    coalesced_spmm_passes: u64,
    /// `sequential / coalesced` — the pass-count reduction coalescing buys.
    spmm_pass_ratio: f64,
    largest_batch: u64,
    identical: bool,
}

/// The `q` benchmark queries: disjoint seed blocks of `n / 40` nodes,
/// class assignment rotated per query so no two queries share a cache key.
fn serving_seeds(n: usize, k: usize, queries: usize) -> Vec<Vec<WireSeed>> {
    let block = (n / 40).max(1).min(n / queries.max(1)).max(1);
    (0..queries)
        .map(|j| {
            (0..block)
                .map(|i| {
                    let mut residual = vec![-2.0 / (k as f64 - 1.0); k];
                    residual[(i + j) % k] = 2.0;
                    WireSeed {
                        node: (j * block + i) as u64,
                        residual,
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the same `q` queries through two fresh in-process [`ServerCore`]s
/// — one that answers each query alone, one that coalesces all `q` into a
/// single stacked solve — and records wall time, SpMM pass counts, and
/// the bitwise identity of the two answer sets. This is the `serving`
/// section of the JSON: the admission coalescer's concurrency win,
/// measured end to end through the real serving engine.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn run_serving_suite(
    records: &mut Vec<ServingRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    queries: usize,
    reps: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    // Register the already-symmetric adjacency entry by entry.
    let edges: Vec<WireEdge> = (0..n)
        .flat_map(|r| {
            adj.row_cols(r)
                .iter()
                .zip(adj.row_values(r))
                .map(move |(&c, &v)| WireEdge {
                    src: r as u64,
                    dst: u64::from(c),
                    weight: v,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let params = LinBpParams {
        echo: true,
        k: k as u32,
        h_residual: h_residual_unscaled.scale(eps).as_slice().to_vec(),
        max_iter: 100,
        tol: 1e-9,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
    };
    let seeds = serving_seeds(n, k, queries);
    let solve = |j: usize| Request::SolveLinBp {
        graph_id: 1,
        params: params.clone(),
        seeds: seeds[j].clone(),
    };
    let fresh_core = |max_batch: usize| {
        let core = ServerCore::new(ServerConfig {
            // The coalescing core drains the moment the `queries`-th job
            // arrives (max_batch trigger); the window is never the trigger.
            coalesce_window: Duration::from_secs(5),
            max_batch,
            ..ServerConfig::default()
        });
        let registered = core.handle_blocking(Request::RegisterGraph {
            graph_id: 1,
            n_nodes: n as u64,
            symmetric: false,
            edges: edges.clone(),
        });
        assert!(
            matches!(registered, Response::Registered { .. }),
            "benchmark graph registration failed: {registered:?}"
        );
        core
    };
    let beliefs_of = |r: Response| match r {
        Response::Beliefs(payload) => payload,
        other => panic!("benchmark solve failed: {other:?}"),
    };

    let mut record: Option<ServingRecord> = None;
    for _ in 0..reps {
        // Sequential: max_batch = 1 makes every admission drain
        // immediately as a batch of one.
        let sequential = fresh_core(1);
        let (seq_payloads, seq_elapsed) = time_once(|| {
            (0..queries)
                .map(|j| beliefs_of(sequential.handle_blocking(solve(j))))
                .collect::<Vec<_>>()
        });
        let seq_stats = sequential.stats();

        // Coalesced: all `q` submitted up front; the admission layer
        // stacks them into one batched solve.
        let coalesced = fresh_core(queries);
        let (mut co_payloads, co_elapsed) = time_once(|| {
            let (tx, rx) = mpsc::channel();
            for j in 0..queries {
                let tx = tx.clone();
                coalesced.submit(solve(j), Box::new(move |r| drop(tx.send((j, r)))));
            }
            let mut payloads: Vec<_> = (0..queries).map(|_| None).collect();
            for _ in 0..queries {
                let (j, r) = rx.recv().expect("responder always fires");
                payloads[j] = Some(beliefs_of(r));
            }
            payloads
        });
        let co_stats = coalesced.stats();

        let identical = seq_payloads
            .iter()
            .zip(co_payloads.iter_mut())
            .all(|(a, b)| {
                let b = b.as_ref().expect("all queries answered");
                a.iterations == b.iterations
                    && a.beliefs.len() == b.beliefs.len()
                    && a.beliefs
                        .iter()
                        .zip(&b.beliefs)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            });
        let seq_secs = seq_elapsed.as_secs_f64();
        let co_secs = co_elapsed.as_secs_f64();
        match &mut record {
            Some(r) => {
                r.sequential_secs = r.sequential_secs.min(seq_secs);
                r.coalesced_secs = r.coalesced_secs.min(co_secs);
                r.identical &= identical;
            }
            None => {
                record = Some(ServingRecord {
                    graph: label.to_string(),
                    nodes: n,
                    directed_edges: de,
                    queries,
                    sequential_secs: seq_secs,
                    coalesced_secs: co_secs,
                    sequential_spmm_passes: seq_stats.spmm_passes,
                    coalesced_spmm_passes: co_stats.spmm_passes,
                    spmm_pass_ratio: seq_stats.spmm_passes as f64 / co_stats.spmm_passes as f64,
                    largest_batch: co_stats.largest_batch,
                    identical,
                });
            }
        }
    }
    let rec = record.expect("reps >= 1");
    println!(
        "{:>14} serving q={} sequential {:>12.6}s / {} passes  coalesced {:>12.6}s / {} passes  \
         ratio {:>5.2}x  batch={}  identical={}",
        rec.graph,
        rec.queries,
        rec.sequential_secs,
        rec.sequential_spmm_passes,
        rec.coalesced_secs,
        rec.coalesced_spmm_passes,
        rec.spmm_pass_ratio,
        rec.largest_batch,
        rec.identical
    );
    records.push(rec);
}

/// One robustness measurement: `q` clients hammering an undersized
/// admission queue, retrying on `Overloaded` until every request is
/// answered, under one degradation policy.
struct RobustnessRecord {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    policy: &'static str,
    queries: usize,
    answered: u64,
    overloaded_rejections: u64,
    degraded_clamped: u64,
    wall_secs: f64,
    qps: f64,
    /// Every answer bitwise equal to a direct uncontended solve. Only
    /// meaningful when the policy does not change the math (`off`);
    /// `ClampIter` deliberately trades iterations for throughput.
    identical_to_direct: bool,
}

/// Drives `q` concurrent clients against a core whose admission queue is
/// deliberately too small (`max_pending = 2`), so a real fraction of
/// requests bounce with `Overloaded` and must be recovered by retries
/// honoring the server's `retry_after_ms` hint. Run once per degradation
/// policy: `off` measures pure backpressure + retry; `clamp` measures
/// how much throughput `ClampIter` buys back under the same load.
fn run_robustness_suite(
    records: &mut Vec<RobustnessRecord>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    queries: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    let edges: Vec<WireEdge> = (0..n)
        .flat_map(|r| {
            adj.row_cols(r)
                .iter()
                .zip(adj.row_values(r))
                .map(move |(&c, &v)| WireEdge {
                    src: r as u64,
                    dst: u64::from(c),
                    weight: v,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let params = LinBpParams {
        echo: true,
        k: k as u32,
        h_residual: h_residual_unscaled.scale(eps).as_slice().to_vec(),
        max_iter: 100,
        // No early exit: every query runs its full budget, so the queue
        // actually backs up and `ClampIter` has iterations to reclaim.
        tol: 0.0,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: f64::INFINITY,
    };
    let seeds = serving_seeds(n, k, queries);
    let solve = |j: usize| Request::SolveLinBp {
        graph_id: 1,
        params: params.clone(),
        seeds: seeds[j].clone(),
    };
    let register = || Request::RegisterGraph {
        graph_id: 1,
        n_nodes: n as u64,
        symmetric: false,
        edges: edges.clone(),
    };

    // Uncontended references: one solo solve per query on a roomy core.
    let direct = ServerCore::new(ServerConfig {
        coalesce_window: Duration::from_millis(0),
        max_batch: 1,
        ..ServerConfig::default()
    });
    assert!(matches!(
        direct.handle_blocking(register()),
        Response::Registered { .. }
    ));
    let references: Vec<_> = (0..queries)
        .map(|j| match direct.handle_blocking(solve(j)) {
            Response::Beliefs(p) => p,
            other => panic!("reference solve failed: {other:?}"),
        })
        .collect();

    for (policy, degradation) in [
        ("off", DegradationPolicy::Off),
        ("clamp", DegradationPolicy::ClampIter(10)),
    ] {
        let core = ServerCore::new(ServerConfig {
            coalesce_window: Duration::from_millis(10),
            max_batch: 4,
            // Undersized on purpose: the whole point is to overflow it.
            max_pending: 2,
            retry_after_hint: Duration::from_millis(2),
            degradation,
            ..ServerConfig::default()
        });
        assert!(matches!(
            core.handle_blocking(register()),
            Response::Registered { .. }
        ));

        let (payloads, elapsed) = time_once(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..queries)
                    .map(|j| {
                        let (core, solve) = (&core, &solve);
                        scope.spawn(move || {
                            // Retry with growing backoff until the request
                            // lands. The budget is wall-clock, not
                            // attempt-count: on larger graphs a single
                            // coalesced solve can hold the queue for tens
                            // of milliseconds, so a fixed retry count
                            // starves late contenders.
                            let start = std::time::Instant::now();
                            let mut backoff_ms = 0u64;
                            loop {
                                match core.handle_blocking(solve(j)) {
                                    Response::Beliefs(p) => return Some(p),
                                    Response::Error {
                                        code: ErrorCode::Overloaded,
                                        retry_after_ms,
                                        ..
                                    } => {
                                        if start.elapsed() > Duration::from_secs(120) {
                                            return None;
                                        }
                                        let hint = retry_after_ms.unwrap_or(2).clamp(1, 50);
                                        backoff_ms = (backoff_ms.max(hint) * 2).min(250);
                                        // Stagger contenders so they don't
                                        // re-collide in lockstep.
                                        std::thread::sleep(Duration::from_millis(
                                            backoff_ms + (j as u64 % 7),
                                        ));
                                    }
                                    other => panic!("unexpected response: {other:?}"),
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        });
        let stats = core.stats();
        let answered = payloads.iter().filter(|p| p.is_some()).count() as u64;
        let identical_to_direct = policy != "off"
            || payloads.iter().zip(&references).all(|(p, r)| {
                p.as_ref().is_some_and(|p| {
                    p.beliefs.len() == r.beliefs.len()
                        && p.beliefs
                            .iter()
                            .zip(&r.beliefs)
                            .all(|(x, y)| x.to_bits() == y.to_bits())
                })
            });
        let wall_secs = elapsed.as_secs_f64();
        let rec = RobustnessRecord {
            graph: label.to_string(),
            nodes: n,
            directed_edges: de,
            policy,
            queries,
            answered,
            overloaded_rejections: stats.rejected_overloaded,
            degraded_clamped: stats.degraded_clamped,
            wall_secs,
            qps: answered as f64 / wall_secs,
            identical_to_direct,
        };
        println!(
            "{:>14} robustness policy={:<5} q={} answered={} rejections={} clamped={} \
             {:>9.4}s ({:>8.1} q/s)  identical={}",
            rec.graph,
            rec.policy,
            rec.queries,
            rec.answered,
            rec.overloaded_rejections,
            rec.degraded_clamped,
            rec.wall_secs,
            rec.qps,
            rec.identical_to_direct
        );
        records.push(rec);
    }
}

/// One (threads, executor) measurement of the pool-overhead benchmark.
struct PoolRecord {
    threads: usize,
    persistent_us_per_region: f64,
    scoped_spawn_us_per_region: f64,
}

/// The small-kernel SpMV task for one row range, writing its disjoint
/// output slice — identical work under both executors.
fn spmv_range(adj: &CsrMatrix, x: &[f64], range: Range<usize>, out: &mut [f64]) {
    for (r, slot) in range.zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (&c, &v) in adj.row_cols(r).iter().zip(adj.row_values(r)) {
            acc += v * x[c as usize];
        }
        *slot = acc;
    }
}

/// A faithful replica of the pre-persistent-pool executor (PR 2's
/// `run_tasks`): spawn scoped OS threads per region, shared-queue
/// dynamic balancing, join before returning. Kept here as the benchmark
/// baseline the resident-worker pool is measured against.
fn scoped_spawn_region(tasks: Vec<Box<dyn FnOnce() + Send + '_>>, threads: usize) {
    if threads <= 1 || tasks.len() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let workers = threads.min(tasks.len());
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let task = match queue.lock() {
                    Ok(mut guard) => guard.next(),
                    Err(_) => break,
                };
                match task {
                    Some(task) => task(),
                    None => break,
                }
            });
        }
    });
}

/// Measures per-region dispatch overhead on a small (1k-node) kernel,
/// where thread plumbing — not compute — dominates: the same partitioned
/// SpMV dispatched `regions` times through (a) the persistent
/// resident-worker pool and (b) per-region scoped spawning. Small kernels
/// in per-iteration hot loops are exactly where spawn cost used to force
/// the serial fallback.
fn bench_pool_overhead(threads_sweep: &[usize], regions: usize) -> (Graph, Vec<PoolRecord>) {
    let graph = erdos_renyi_gnm(1000, 4000, 7);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let x: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.1 - 0.5).collect();
    let mut records = Vec::new();
    for &t in threads_sweep.iter().filter(|&&t| t > 1) {
        let parts = t * 2;
        let ranges = weight_balanced_ranges(adj.row_offsets(), parts);
        let mut y = vec![0.0f64; n];
        let mut reference = vec![0.0f64; n];
        spmv_range(&adj, &x, 0..n, &mut reference);

        fn make_tasks<'a>(
            adj: &'a CsrMatrix,
            x: &'a [f64],
            ranges: &[Range<usize>],
            y: &'a mut [f64],
        ) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::with_capacity(ranges.len());
            let mut rest = y;
            for range in ranges.iter().cloned() {
                let (chunk, tail) = rest.split_at_mut(range.end - range.start);
                rest = tail;
                tasks.push(Box::new(move || spmv_range(adj, x, range, chunk)));
            }
            tasks
        }

        // Persistent: one cached pool, `regions` scoped dispatches.
        let pool = ParallelismConfig::with_threads(t).pool();
        let (_, persistent) = time_once(|| {
            for _ in 0..regions {
                let mut tasks = make_tasks(&adj, &x, &ranges, &mut y);
                pool.scope(|s| {
                    for task in tasks.drain(..) {
                        s.spawn(task);
                    }
                });
            }
        });
        assert_eq!(y, reference, "persistent pool result mismatch");

        // Scoped spawn: fresh OS threads per region (the old executor).
        y.fill(0.0);
        let (_, scoped) = time_once(|| {
            for _ in 0..regions {
                let tasks = make_tasks(&adj, &x, &ranges, &mut y);
                scoped_spawn_region(tasks, t);
            }
        });
        assert_eq!(y, reference, "scoped-spawn result mismatch");

        let record = PoolRecord {
            threads: t,
            persistent_us_per_region: persistent.as_secs_f64() * 1e6 / regions as f64,
            scoped_spawn_us_per_region: scoped.as_secs_f64() * 1e6 / regions as f64,
        };
        println!(
            "pool overhead t={t}: persistent {:.2} µs/region, scoped-spawn {:.2} µs/region ({:.2}x)",
            record.persistent_us_per_region,
            record.scoped_spawn_us_per_region,
            record.scoped_spawn_us_per_region / record.persistent_us_per_region
        );
        records.push(record);
    }
    (graph, records)
}

/// Pull `"hardware_threads": N` out of a previously committed baseline JSON
/// without a JSON parser. The file is produced by this binary, so the key
/// appears exactly once at the top level; tolerate arbitrary whitespace
/// around the colon and ignore everything else.
fn extract_hardware_threads(json: &str) -> Option<usize> {
    let key = "\"hardware_threads\"";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// One query-planner measurement: a hub-skewed multi-way join executed
/// with the pre-planner fixed left-to-right strategy vs. the
/// cost-bounded planner, plus the multiset-identity check between the
/// two results.
struct PlannerRecord {
    workload: &'static str,
    fixed_secs: f64,
    planned_secs: f64,
    speedup: f64,
    identical: bool,
    join_order: String,
}

fn planner_sorted_rows(t: &lsbp_reldb::Table) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = t
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.as_float().to_bits()).collect())
        .collect();
    rows.sort_unstable();
    rows
}

/// The three canonical skewed workloads (chain, star, triangle), each
/// shaped so the fixed FROM-order strategy materializes a quadratic
/// intermediate the planner's bound-minimal order avoids. All values are
/// integers and the queries are aggregate-free, so "identical" means the
/// exact same row multiset bit for bit.
fn planner_workloads() -> Vec<(&'static str, lsbp_reldb::Database, &'static str)> {
    use lsbp_reldb::{Database, Table, Value};
    let int = Value::Int;

    // Chain R — S — Sel: R ⋈ S explodes on a hub key, S ⋈ Sel is tiny.
    let chain = {
        let (n, hub) = (2000i64, 400i64);
        let mut r = Table::new("R", &["k", "p"]);
        let mut s = Table::new("S", &["k", "j"]);
        let mut sel = Table::new("Sel", &["j"]);
        for i in 0..n {
            let k = if i < hub { 0 } else { i };
            r.push(vec![int(k), int(i)]);
            let j = if i < hub { n + i } else { i % 50 };
            s.push(vec![int(k), int(j)]);
        }
        for j in 0..25 {
            sel.push(vec![int(j)]);
        }
        let mut db = Database::new();
        db.insert_table("R", r);
        db.insert_table("S", s);
        db.insert_table("Sel", sel);
        db
    };

    // Star D1, D2, F with the fact table last in FROM order: the fixed
    // strategy cross-products the two dimension tables first.
    let star = {
        let n = 400i64;
        let mut d1 = Table::new("D1", &["d", "p"]);
        let mut d2 = Table::new("D2", &["e", "q"]);
        let mut f = Table::new("F", &["f1", "f2"]);
        for i in 0..n {
            d1.push(vec![int(i), int(i * 2)]);
            d2.push(vec![int(i), int(i * 3)]);
        }
        for i in 0..(2 * n) {
            f.push(vec![int(i % n), int((i * 7) % n)]);
        }
        let mut db = Database::new();
        db.insert_table("D1", d1);
        db.insert_table("D2", d2);
        db.insert_table("F", f);
        db
    };

    // Triangle R(a,b) — S(b,c) — T(c,a) with a hub on b and a small
    // selective T: the fixed order joins R ⋈ S on the hub first.
    let triangle = {
        let (n, hub) = (1200i64, 300i64);
        let mut r = Table::new("R", &["a", "b"]);
        let mut s = Table::new("S", &["b", "c"]);
        let mut t = Table::new("T", &["c", "a"]);
        for i in 0..n {
            let b = if i < hub { 0 } else { i };
            r.push(vec![int(i), int(b)]);
            s.push(vec![int(b), int(i)]);
        }
        for j in 0..100 {
            t.push(vec![int(j), int(j)]);
        }
        let mut db = Database::new();
        db.insert_table("R", r);
        db.insert_table("S", s);
        db.insert_table("T", t);
        db
    };

    vec![
        (
            "chain_skewed",
            chain,
            "select R.p, Sel.j from R, S, Sel where R.k = S.k and S.j = Sel.j",
        ),
        (
            "star_skewed",
            star,
            "select D1.p, D2.q from D1, D2, F where F.f1 = D1.d and F.f2 = D2.e",
        ),
        (
            "triangle_skewed",
            triangle,
            "select R.a, T.c from R, S, T where R.b = S.b and S.c = T.c and T.a = R.a",
        ),
    ]
}

fn bench_planner_suite(reps: usize) -> Vec<PlannerRecord> {
    use lsbp_reldb::parser::{parse, Statement};
    let mut out = Vec::new();
    for (workload, db, sql) in planner_workloads() {
        let Statement::Select(sel) = parse(sql).expect("planner bench SQL parses") else {
            unreachable!("planner bench statements are SELECTs")
        };
        // Correctness + plan inspection pass (also warms both paths).
        let (planned, plan, _) = db.run_select_planned(&sel, "r").expect("planned execution");
        let fixed = db.run_select_fixed(&sel, "r").expect("fixed execution");
        let identical = planner_sorted_rows(&planned) == planner_sorted_rows(&fixed);
        let join_order = plan.scan_order().join(" -> ");
        let mut fixed_secs = f64::INFINITY;
        let mut planned_secs = f64::INFINITY;
        for _ in 0..reps {
            let (_, d) = time_once(|| std::hint::black_box(db.run_select_fixed(&sel, "r")));
            fixed_secs = fixed_secs.min(d.as_secs_f64());
            let (_, d) = time_once(|| std::hint::black_box(db.run_select(&sel, "r")));
            planned_secs = planned_secs.min(d.as_secs_f64());
        }
        let speedup = fixed_secs / planned_secs;
        println!(
            "{workload:>16} fixed={} planned={} speedup={:.2}x identical={} order=[{}]",
            fmt_duration(Duration::from_secs_f64(fixed_secs)),
            fmt_duration(Duration::from_secs_f64(planned_secs)),
            speedup,
            identical,
            join_order
        );
        out.push(PlannerRecord {
            workload,
            fixed_secs,
            planned_secs,
            speedup,
            identical,
            join_order,
        });
    }
    out
}

fn main() {
    let m = arg_usize("--m", 9).clamp(5, 13) as u32;
    let reps = arg_usize("--reps", 3).max(1);
    let with_dblp = arg_usize("--dblp", 1) != 0;
    let threads = arg_thread_list();
    let out_path = arg_string("--out", "BENCH_kernels.json");

    let shard_sweep = arg_shard_list();
    let serving_queries = arg_usize("--serving-q", 8).max(2);
    let mut records = Vec::new();
    let mut simd_records = Vec::new();
    let mut fused_records = Vec::new();
    let mut frontier_records = Vec::new();
    let mut sharded_records = Vec::new();
    let mut out_of_core_records = Vec::new();
    let mut gather_prefetch: Option<(f64, f64, bool)> = None;
    let mut serving_records = Vec::new();
    let robustness_queries = arg_usize("--robust-q", 16).max(4);
    let mut robustness_records = Vec::new();
    let ho3 = CouplingMatrix::fig6b_residual();
    let mut exponents = vec![7u32.min(m), m];
    exponents.dedup();
    for exp in exponents {
        let graph = kronecker_graph(exp);
        let label = format!("kronecker_m{exp}");
        run_suite(
            &mut records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            &threads,
            reps,
        );
        run_simd_suite(&mut simd_records, &label, &graph, 3, reps);
        run_fused_suite(&mut fused_records, &label, &graph, 3, &ho3, 0.0005, reps);
        run_frontier_suite(
            &mut frontier_records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            2000,
            reps,
        );
        run_sharded_suite(
            &mut sharded_records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            &shard_sweep,
            reps,
        );
        run_out_of_core_suite(
            &mut out_of_core_records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            reps,
        );
        if exp == m {
            gather_prefetch = Some(bench_gather_prefetch(&graph, reps));
        }
        run_serving_suite(
            &mut serving_records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            serving_queries,
            reps,
        );
        run_robustness_suite(
            &mut robustness_records,
            &label,
            &graph,
            3,
            &ho3,
            0.0005,
            robustness_queries,
        );
    }
    if with_dblp {
        let ho4 = CouplingMatrix::homophily(4, 0.6)
            .expect("homophily coupling is valid")
            .residual();
        let net = dblp_like(&DblpConfig::default(), 42);
        run_suite(
            &mut records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            &threads,
            reps,
        );
        run_simd_suite(&mut simd_records, "dblp_like", &net.graph, 4, reps);
        run_fused_suite(
            &mut fused_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            reps,
        );
        run_frontier_suite(
            &mut frontier_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            1000,
            reps,
        );
        run_sharded_suite(
            &mut sharded_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            &shard_sweep,
            reps,
        );
        run_out_of_core_suite(
            &mut out_of_core_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            reps,
        );
        run_serving_suite(
            &mut serving_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            serving_queries,
            reps,
        );
        run_robustness_suite(
            &mut robustness_records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            robustness_queries,
        );
    }

    // Persistent-pool dispatch overhead vs. the old scoped-spawn executor
    // on a small 1k-node kernel.
    let pool_regions = arg_usize("--pool-reps", 200).max(1);
    println!("\n== pool overhead: 1k-node SpMV, {pool_regions} regions per executor ==");
    let (pool_graph, pool_records) = bench_pool_overhead(&threads, pool_regions);

    // Cost-bounded query planner vs. the fixed left-to-right join order
    // on skewed multi-way workloads.
    println!("\n== reldb query planner: fixed join order vs. bound-minimal order ==");
    let planner_records = bench_planner_suite(reps);
    let planner_speedup_min = planner_records
        .iter()
        .map(|r| r.speedup)
        .fold(f64::NAN, f64::min);
    let planner_all_identical = planner_records.iter().all(|r| r.identical);

    // Acceptance summary: best SpMM speedup at 4 threads on a
    // ≥ 100k-directed-edge graph, and global identity across the board.
    let spmm_speedup_4t = records
        .iter()
        .filter(|r| r.kernel == "spmm" && r.threads == 4 && r.directed_edges >= 100_000)
        .map(|r| r.speedup_vs_serial)
        .fold(f64::NAN, f64::max);
    let all_identical = records.iter().all(|r| r.identical_to_serial);
    // Fused-step acceptance read-out: the largest Kronecker graph's
    // single-threaded fused-vs-unfused speedup (the ≥ 1.3× target of the
    // SIMD/fusion PR runs on kronecker_m9).
    let fused_speedup_largest = fused_records
        .iter()
        .filter(|r| r.graph == format!("kronecker_m{m}"))
        .map(|r| r.speedup)
        .fold(f64::NAN, f64::max);
    let fused_all_identical = fused_records.iter().all(|r| r.identical);
    // Frontier acceptance read-outs: the warm full-vs-frontier speedup of
    // the fixed-budget exact solve on the largest Kronecker graph (the
    // ≥ 1.4× bar of the active-frontier PR), and the global
    // frontier-equals-full bitwise flag across every cell.
    let frontier_speedup_largest = frontier_records
        .iter()
        .filter(|r| r.graph == format!("kronecker_m{m}"))
        .map(|r| r.speedup)
        .fold(f64::NAN, f64::max);
    let frontier_all_identical = frontier_records.iter().all(|r| r.identical);
    // Sharded acceptance read-out: the *worst* fused-LinBP relative
    // throughput on the largest Kronecker graph across the shard sweep
    // (the ≥ 0.95× bar — sharding must not tax the serial hot loop), and
    // the global sharded-equals-monolithic bitwise flag.
    let sharded_linbp_min_rel = sharded_records
        .iter()
        .filter(|r| r.kernel == "linbp_5iter" && r.graph == format!("kronecker_m{m}"))
        .map(|r| r.rel_throughput)
        .fold(f64::NAN, f64::min);
    let sharded_all_identical = sharded_records.iter().all(|r| r.identical);
    // Out-of-core acceptance read-outs: the global paged-equals-resident
    // bitwise flag across every budget × kernel × graph cell, and the
    // worst warm relative throughput of the *unbudgeted* pool on the
    // largest Kronecker graph (the ≥ 0.5× bar — once the working set is
    // resident, paging must cost at most 2× over the in-RAM matrix).
    let paged_all_identical = out_of_core_records.iter().all(|r| r.identical);
    let paged_warm_rel_largest = out_of_core_records
        .iter()
        .filter(|r| r.graph == format!("kronecker_m{m}") && r.budget == "unbudgeted")
        .map(|r| r.warm_rel_throughput)
        .fold(f64::NAN, f64::min);
    // Serving acceptance read-out: the SpMM-pass reduction admission
    // coalescing buys on the largest Kronecker graph (the ≥ 2× bar of the
    // serving PR — ideally ≈ q), and the global coalesced-equals-
    // sequential bitwise flag.
    let serving_ratio_largest = serving_records
        .iter()
        .filter(|r| r.graph == format!("kronecker_m{m}"))
        .map(|r| r.spmm_pass_ratio)
        .fold(f64::NAN, f64::max);
    let serving_all_identical = serving_records.iter().all(|r| r.identical);
    let serving_ratio_ok = serving_ratio_largest >= 2.0;
    // Robustness acceptance read-outs: every retried request recovered
    // under both policies, backpressure genuinely engaged under `off`,
    // answers bitwise-identical to uncontended solves when the policy
    // does not change the math, and the throughput `ClampIter` buys back
    // on the largest Kronecker graph.
    let robustness_all_recovered = robustness_records
        .iter()
        .all(|r| r.answered == r.queries as u64);
    let robustness_backpressure_engaged = robustness_records
        .iter()
        .filter(|r| r.policy == "off")
        .all(|r| r.overloaded_rejections >= 1);
    let robustness_off_identical = robustness_records
        .iter()
        .filter(|r| r.policy == "off")
        .all(|r| r.identical_to_direct);
    let robustness_clamp_qps_ratio = {
        let qps_of = |policy: &str| {
            robustness_records
                .iter()
                .filter(|r| r.policy == policy && r.graph == format!("kronecker_m{m}"))
                .map(|r| r.qps)
                .fold(f64::NAN, f64::max)
        };
        qps_of("clamp") / qps_of("off")
    };

    // Cross-hardware guard: speedup summaries are only meaningful against a
    // baseline recorded on the same machine class. If the committed baseline
    // at `--out` was produced with a different hardware-thread count, annotate
    // the new JSON and warn loudly rather than silently publishing
    // incomparable numbers.
    let current_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline_threads = std::fs::read_to_string(&out_path)
        .ok()
        .as_deref()
        .and_then(extract_hardware_threads);
    let cross_hardware_comparable = match baseline_threads {
        Some(prev) if prev != current_threads => {
            eprintln!(
                "warning: committed baseline {out_path} was recorded with hardware_threads={prev} \
                 but this machine has {current_threads}; speedup comparisons against it are not \
                 meaningful (marking cross_hardware_comparable=false)"
            );
            false
        }
        _ => true,
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"generated_by\": \"perf_baseline\",\n");
    json.push_str(&format!("  \"hardware_threads\": {current_threads},\n"));
    json.push_str(&format!(
        "  \"cross_hardware_comparable\": {cross_hardware_comparable},\n"
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"summary\": {\n");
    json.push_str(&format!(
        "    \"spmm_speedup_4threads_100k_edges\": {},\n",
        json_f64(spmm_speedup_4t)
    ));
    json.push_str(&format!(
        "    \"fused_linbp_speedup_serial_largest_kronecker\": {},\n",
        json_f64(fused_speedup_largest)
    ));
    json.push_str(&format!(
        "    \"fused_linbp_bitwise_identical_to_unfused\": {fused_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"frontier_speedup_largest_kronecker\": {},\n",
        json_f64(frontier_speedup_largest)
    ));
    json.push_str(&format!(
        "    \"frontier_bitwise_identical_to_full\": {frontier_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"sharded_linbp_min_rel_throughput_largest_kronecker\": {},\n",
        json_f64(sharded_linbp_min_rel)
    ));
    json.push_str(&format!(
        "    \"sharded_bitwise_identical_to_monolithic\": {sharded_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"paged_warm_rel_throughput_largest_kronecker\": {},\n",
        json_f64(paged_warm_rel_largest)
    ));
    json.push_str(&format!(
        "    \"paged_bitwise_identical_to_resident\": {paged_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"serving_spmm_pass_reduction_q{serving_queries}_largest_kronecker\": {},\n",
        json_f64(serving_ratio_largest)
    ));
    json.push_str(&format!(
        "    \"serving_spmm_pass_reduction_at_least_2x\": {serving_ratio_ok},\n"
    ));
    json.push_str(&format!(
        "    \"serving_coalesced_bitwise_identical_to_sequential\": {serving_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"planner_join_speedup_skewed_multiway\": {},\n",
        json_f64(planner_speedup_min)
    ));
    json.push_str(&format!(
        "    \"planner_results_identical_to_fixed_order\": {planner_all_identical},\n"
    ));
    json.push_str(&format!(
        "    \"all_parallel_results_bitwise_identical_to_serial\": {all_identical}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \"kernel\": \"{}\", \
             \"threads\": {}, \"secs\": {}, \"speedup_vs_serial\": {}, \
             \"identical_to_serial\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            r.kernel,
            r.threads,
            json_f64(r.secs),
            json_f64(r.speedup_vs_serial),
            r.identical_to_serial,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // Old-vs-new SIMD kernel comparison (single-threaded, scalar
    // replicas vs. the canonical 4-lane kernels).
    json.push_str("  \"simd\": {\n    \"results\": [\n");
    for (i, r) in simd_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"kernel\": \"{}\", \"scalar_secs\": {}, \
             \"simd_secs\": {}, \"speedup\": {}}}{}\n",
            r.graph,
            r.kernel,
            json_f64(r.scalar_secs),
            json_f64(r.simd_secs),
            json_f64(r.speedup),
            if i + 1 == simd_records.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Fused vs. unfused LinBP step (5 iterations, single-threaded), with
    // the fused-equals-unfused bitwise check inline.
    json.push_str("  \"fused_linbp\": {\n    \"iters_per_measurement\": 5,\n    \"results\": [\n");
    for (i, r) in fused_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \
             \"unfused_secs\": {}, \"fused_secs\": {}, \"speedup\": {}, \
             \"identical_to_unfused\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            json_f64(r.unfused_secs),
            json_f64(r.fused_secs),
            json_f64(r.speedup),
            r.identical,
            if i + 1 == fused_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Active-frontier execution vs. full recomputation on long
    // fixed-budget exact solves (tol = 0, every sweep runs), with the
    // frontier-equals-full bitwise check inline. The cold column is the
    // first frontier run (plan construction included), warm the best of
    // the remaining reps.
    json.push_str("  \"frontier\": {\n    \"tol\": 0.0,\n    \"results\": [\n");
    for (i, r) in frontier_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \
             \"iterations\": {}, \"rows_active\": {}, \"rows_skipped\": {}, \
             \"skip_ratio\": {}, \"full_secs\": {}, \"frontier_cold_secs\": {}, \
             \"frontier_warm_secs\": {}, \"speedup\": {}, \"identical_to_full\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            r.iterations,
            r.rows_active,
            r.rows_skipped,
            json_f64(r.skip_ratio),
            json_f64(r.full_secs),
            json_f64(r.frontier_cold_secs),
            json_f64(r.frontier_warm_secs),
            json_f64(r.speedup),
            r.identical,
            if i + 1 == frontier_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Monolithic CsrMatrix vs. row-sharded ShardedCsr (single-threaded,
    // fused LinBP + SpMM), with the sharded-equals-monolithic bitwise
    // check inline.
    json.push_str("  \"sharded\": {\n    \"iters_per_measurement\": 5,\n");
    json.push_str(&format!(
        "    \"shard_sweep\": [{}],\n",
        shard_sweep
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("    \"results\": [\n");
    for (i, r) in sharded_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"kernel\": \"{}\", \"shards\": {}, \
             \"monolithic_secs\": {}, \"sharded_secs\": {}, \"rel_throughput\": {}, \
             \"shard_build_secs\": {}, \"identical_to_monolithic\": {}}}{}\n",
            r.graph,
            r.kernel,
            r.shards,
            json_f64(r.monolithic_secs),
            json_f64(r.sharded_secs),
            json_f64(r.rel_throughput),
            json_f64(r.build_secs),
            r.identical,
            if i + 1 == sharded_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Resident CsrMatrix vs. the spilled PagedCsr behind the budgeted
    // buffer pool (single-threaded, fused LinBP + SpMM), with the
    // paged-equals-resident bitwise check inline, plus the before/after
    // line for the software prefetch hints in the gather loops.
    json.push_str("  \"out_of_core\": {\n    \"iters_per_measurement\": 5,\n    \"shards\": 8,\n");
    if let Some((without_secs, with_secs, identical)) = gather_prefetch {
        json.push_str(&format!(
            "    \"gather_prefetch\": {{\"graph\": \"kronecker_m{m}\", \
             \"without_hint_secs\": {}, \"with_hint_secs\": {}, \"speedup\": {}, \
             \"identical\": {}}},\n",
            json_f64(without_secs),
            json_f64(with_secs),
            json_f64(without_secs / with_secs),
            identical
        ));
    }
    json.push_str("    \"results\": [\n");
    for (i, r) in out_of_core_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"kernel\": \"{}\", \"budget\": \"{}\", \
             \"budget_bytes\": {}, \"resident_secs\": {}, \"paged_cold_secs\": {}, \
             \"paged_warm_secs\": {}, \"warm_rel_throughput\": {}, \"misses\": {}, \
             \"evictions\": {}, \"prefetches\": {}, \"identical_to_resident\": {}}}{}\n",
            r.graph,
            r.kernel,
            r.budget,
            r.budget_bytes,
            json_f64(r.resident_secs),
            json_f64(r.cold_secs),
            json_f64(r.warm_secs),
            json_f64(r.warm_rel_throughput),
            r.misses,
            r.evictions,
            r.prefetches,
            r.identical,
            if i + 1 == out_of_core_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Sequential vs. admission-coalesced serving of the same q queries
    // through the in-process ServerCore, with the bitwise check inline.
    json.push_str(&format!(
        "  \"serving\": {{\n    \"queries\": {serving_queries},\n    \"results\": [\n"
    ));
    for (i, r) in serving_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \
             \"queries\": {}, \"sequential_secs\": {}, \"coalesced_secs\": {}, \
             \"sequential_spmm_passes\": {}, \"coalesced_spmm_passes\": {}, \
             \"spmm_pass_ratio\": {}, \"largest_batch\": {}, \
             \"identical_to_sequential\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            r.queries,
            json_f64(r.sequential_secs),
            json_f64(r.coalesced_secs),
            r.sequential_spmm_passes,
            r.coalesced_spmm_passes,
            json_f64(r.spmm_pass_ratio),
            r.largest_batch,
            r.identical,
            if i + 1 == serving_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // Robustness under synthetic overload: an undersized admission queue,
    // retrying clients, and the degradation-policy comparison.
    json.push_str(&format!(
        "  \"robustness\": {{\n    \"queries\": {robustness_queries},\n    \"max_pending\": 2,\n"
    ));
    json.push_str(&format!(
        "    \"all_requests_recovered\": {robustness_all_recovered},\n"
    ));
    json.push_str(&format!(
        "    \"backpressure_engaged\": {robustness_backpressure_engaged},\n"
    ));
    json.push_str(&format!(
        "    \"off_policy_bitwise_identical_to_direct\": {robustness_off_identical},\n"
    ));
    json.push_str(&format!(
        "    \"clamp_qps_ratio_largest_kronecker\": {},\n",
        json_f64(robustness_clamp_qps_ratio)
    ));
    json.push_str("    \"results\": [\n");
    for (i, r) in robustness_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \
             \"policy\": \"{}\", \"queries\": {}, \"answered\": {}, \
             \"overloaded_rejections\": {}, \"degraded_clamped\": {}, \
             \"wall_secs\": {}, \"qps\": {}, \"identical_to_direct\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            r.policy,
            r.queries,
            r.answered,
            r.overloaded_rejections,
            r.degraded_clamped,
            json_f64(r.wall_secs),
            json_f64(r.qps),
            r.identical_to_direct,
            if i + 1 == robustness_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // The reldb query-planner comparison: fixed FROM-order joins vs. the
    // bound-minimal order, with the multiset-identity check inline.
    json.push_str("  \"planner\": {\n");
    json.push_str(&format!(
        "    \"speedup_min_across_workloads\": {},\n",
        json_f64(planner_speedup_min)
    ));
    json.push_str(&format!(
        "    \"all_identical_to_fixed_order\": {planner_all_identical},\n"
    ));
    json.push_str("    \"results\": [\n");
    for (i, r) in planner_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"workload\": \"{}\", \"fixed_secs\": {}, \"planned_secs\": {}, \
             \"speedup\": {}, \"identical_to_fixed_order\": {}, \"join_order\": \"{}\"}}{}\n",
            r.workload,
            json_f64(r.fixed_secs),
            json_f64(r.planned_secs),
            json_f64(r.speedup),
            r.identical,
            r.join_order,
            if i + 1 == planner_records.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("    ]\n  },\n");
    // The persistent-pool overhead section: µs of dispatch+compute per
    // small-kernel region, resident workers vs. per-region scoped spawn.
    json.push_str("  \"pool\": {\n");
    json.push_str(&format!(
        "    \"graph_nodes\": {},\n    \"directed_edges\": {},\n    \"regions\": {},\n",
        pool_graph.num_nodes(),
        pool_graph.num_directed_edges(),
        pool_regions
    ));
    json.push_str("    \"results\": [\n");
    for (i, r) in pool_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \"persistent_us_per_region\": {}, \
             \"scoped_spawn_us_per_region\": {}, \"spawn_overhead_ratio\": {}}}{}\n",
            r.threads,
            json_f64(r.persistent_us_per_region),
            json_f64(r.scoped_spawn_us_per_region),
            json_f64(r.scoped_spawn_us_per_region / r.persistent_us_per_region),
            if i + 1 == pool_records.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("could not write the benchmark JSON");

    println!("\nwrote {out_path}");
    println!(
        "summary: spmm speedup @4 threads on ≥100k-edge graph = {}, all results identical = {}, \
         fused speedup (serial, kronecker_m{m}) = {}, fused identical = {}, \
         frontier speedup (fixed-budget exact solve, kronecker_m{m}) = {}, \
         frontier_bitwise_identical_to_full={}, \
         sharded linbp min rel throughput (kronecker_m{m}) = {}, sharded identical = {}, \
         paged warm rel throughput (kronecker_m{m}) = {}, paged identical = {}, \
         serving spmm pass reduction q={serving_queries} (kronecker_m{m}) = {}, \
         serving identical = {}, robustness recovered = {}, robustness clamp qps ratio = {}, \
         planner speedup (min across skewed multiway workloads) = {}, planner identical = {}",
        json_f64(spmm_speedup_4t),
        all_identical,
        json_f64(fused_speedup_largest),
        fused_all_identical,
        json_f64(frontier_speedup_largest),
        frontier_all_identical,
        json_f64(sharded_linbp_min_rel),
        sharded_all_identical,
        json_f64(paged_warm_rel_largest),
        paged_all_identical,
        json_f64(serving_ratio_largest),
        serving_all_identical,
        robustness_all_recovered,
        json_f64(robustness_clamp_qps_ratio),
        json_f64(planner_speedup_min),
        planner_all_identical
    );
    assert!(
        all_identical,
        "parallel kernel produced a result differing from the serial reference"
    );
    assert!(
        fused_all_identical,
        "fused LinBP step diverged bitwise from the unfused reference"
    );
    assert!(
        frontier_all_identical,
        "active-frontier solve diverged bitwise from full recomputation"
    );
    // The speedup bar only applies at full benchmark size — CI smoke runs
    // a tiny `--m` where fixed overheads dominate the timings.
    if frontier_records
        .iter()
        .any(|r| r.graph == format!("kronecker_m{m}") && r.directed_edges >= 100_000)
    {
        assert!(
            frontier_speedup_largest >= 1.4,
            "frontier speedup on the largest Kronecker graph fell below the 1.4x acceptance \
             bar: {frontier_speedup_largest}"
        );
    }
    assert!(
        sharded_all_identical,
        "sharded kernel produced a result differing from the monolithic reference"
    );
    assert!(
        paged_all_identical,
        "paged (out-of-core) kernel produced a result differing from the resident reference"
    );
    assert!(
        serving_all_identical,
        "coalesced serving produced beliefs differing from sequential serving"
    );
    assert!(
        robustness_all_recovered,
        "a retried request was never recovered under synthetic overload"
    );
    assert!(
        robustness_off_identical,
        "an answer under overload (policy off) diverged bitwise from the uncontended solve"
    );
    assert!(
        planner_all_identical,
        "planned execution produced a row multiset differing from the fixed join order"
    );
    assert!(
        planner_speedup_min >= 2.0,
        "planner speedup on skewed multiway workloads fell below the 2x acceptance bar: {planner_speedup_min}"
    );
}

#[cfg(test)]
mod tests {
    use super::extract_hardware_threads;

    #[test]
    fn extracts_hardware_threads_from_baseline_json() {
        let json = "{\n  \"bench\": \"kernels\",\n  \"hardware_threads\": 16,\n  \"reps\": 3\n}\n";
        assert_eq!(extract_hardware_threads(json), Some(16));
        assert_eq!(
            extract_hardware_threads("{\"hardware_threads\":8}"),
            Some(8)
        );
        assert_eq!(
            extract_hardware_threads("{\"hardware_threads\"  :  4 ,"),
            Some(4)
        );
        assert_eq!(extract_hardware_threads("{\"reps\": 3}"), None);
        assert_eq!(extract_hardware_threads("\"hardware_threads\": x"), None);
        assert_eq!(extract_hardware_threads(""), None);
    }
}

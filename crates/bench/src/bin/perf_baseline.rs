//! Kernel performance baseline — the `BENCH_*.json` perf trajectory.
//!
//! Times the workspace's hot kernels (SpMV, SpMM, CSR transpose, LinBP
//! iterations, BP message rounds, SBP) on generated Kronecker and
//! DBLP-like graphs across a sweep of thread counts, verifies every
//! parallel result is **bitwise identical** to the serial reference, and
//! writes the measurements as JSON so future PRs can prove their
//! speedups (or catch regressions) against a recorded baseline.
//!
//! ```text
//! cargo run --release -p lsbp-bench --bin perf_baseline -- \
//!     [--m 9] [--reps 3] [--threads 1,2,4,8] [--dblp 1] [--out BENCH_kernels.json]
//! ```
//!
//! `--m` sets the largest Kronecker exponent (default 9: 19,683 nodes /
//! 262,144 directed edges — comfortably past the 100k-edge mark);
//! `--dblp 0` and a small `--m` make a CI smoke run, with `--min-work 1`
//! forcing even those tiny kernels through the parallel code path so the
//! bitwise-identity assertion stays meaningful at smoke sizes.

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{dblp_like, erdos_renyi_gnm, kronecker_graph, DblpConfig};
use lsbp_graph::Graph;
use lsbp_linalg::{weight_balanced_ranges, Mat};
use lsbp_sparse::CsrMatrix;
use std::ops::Range;
use std::sync::Mutex;

/// One timed (graph, kernel, thread-count) measurement.
struct Record {
    graph: String,
    nodes: usize,
    directed_edges: usize,
    kernel: &'static str,
    threads: usize,
    secs: f64,
    speedup_vs_serial: f64,
    identical_to_serial: bool,
}

fn arg_string(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn arg_thread_list() -> Vec<usize> {
    let raw = arg_string("--threads", "1,2,4,8");
    let mut threads: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    if !threads.contains(&1) {
        threads.push(1);
    }
    threads.sort_unstable();
    threads.dedup();
    threads
}

/// Times `run` at every thread count (best of `reps`), using the
/// 1-thread run as the serial reference for both the speedup column and
/// the bitwise-identity check.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn bench_kernel<T: PartialEq>(
    records: &mut Vec<Record>,
    graph: &str,
    nodes: usize,
    directed_edges: usize,
    kernel: &'static str,
    threads: &[usize],
    reps: usize,
    mut run: impl FnMut(&ParallelismConfig) -> T,
) {
    let min_work = arg_usize("--min-work", 0);
    let reference = run(&ParallelismConfig::serial());
    let mut serial_secs = f64::NAN;
    for &t in threads {
        let mut cfg = ParallelismConfig::with_threads(t);
        if min_work > 0 {
            cfg = cfg.with_min_work(min_work);
        }
        let mut best = f64::INFINITY;
        let mut output = None;
        for _ in 0..reps {
            let (out, d) = time_once(|| run(&cfg));
            best = best.min(d.as_secs_f64());
            output = Some(out);
        }
        let identical = output.as_ref() == Some(&reference);
        if t == 1 {
            serial_secs = best;
        }
        let record = Record {
            graph: graph.to_string(),
            nodes,
            directed_edges,
            kernel,
            threads: t,
            secs: best,
            speedup_vs_serial: serial_secs / best,
            identical_to_serial: identical,
        };
        println!(
            "{:>14} {:>12} t={:<2} {:>12.6}s  speedup {:>5.2}x  identical={}",
            record.graph, record.kernel, t, record.secs, record.speedup_vs_serial, identical
        );
        records.push(record);
    }
}

/// Runs the full kernel suite on one graph.
#[allow(clippy::too_many_arguments)] // a flat experiment descriptor
fn run_suite(
    records: &mut Vec<Record>,
    label: &str,
    graph: &Graph,
    k: usize,
    h_residual_unscaled: &Mat,
    eps: f64,
    threads: &[usize],
    reps: usize,
) {
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let de = graph.num_directed_edges();
    println!("\n== {label}: {n} nodes, {de} directed edges, k={k} ==");

    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1 - 0.6).collect();
    bench_kernel(records, label, n, de, "spmv", threads, reps, |cfg| {
        let mut y = vec![0.0; n];
        adj.spmv_into_with(&x, &mut y, cfg);
        y
    });

    let b = Mat::from_fn(n, k, |r, c| ((r * k + c) % 17) as f64 * 0.01 - 0.08);
    bench_kernel(records, label, n, de, "spmm", threads, reps, |cfg| {
        adj.spmm_with(&b, cfg)
    });

    bench_kernel(records, label, n, de, "transpose", threads, reps, |cfg| {
        adj.transpose_with(cfg)
    });

    let explicit = kronecker_style_beliefs(n, k, (n / 20).max(1), 7, false);
    let h = h_residual_unscaled.scale(eps);
    bench_kernel(records, label, n, de, "linbp_5iter", threads, reps, |cfg| {
        let opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            parallelism: *cfg,
            ..Default::default()
        };
        linbp(&adj, &explicit, &h, &opts)
            .expect("linbp dimensions are consistent")
            .beliefs
            .residual()
            .clone()
    });

    let h_raw = CouplingMatrix::from_residual(h_residual_unscaled, eps)
        .expect("scaled coupling is a valid BP potential");
    bench_kernel(records, label, n, de, "bp_3rounds", threads, reps, |cfg| {
        let opts = BpOptions {
            max_iter: 3,
            tol: 0.0,
            parallelism: *cfg,
            ..Default::default()
        };
        bp(&adj, &explicit, h_raw.raw(), &opts)
            .expect("bp dimensions are consistent")
            .beliefs
            .residual()
            .clone()
    });

    bench_kernel(records, label, n, de, "sbp", threads, reps, |cfg| {
        let r = sbp_with(&adj, &explicit, h_residual_unscaled, cfg)
            .expect("sbp dimensions are consistent");
        (r.beliefs.residual().clone(), r.geodesics.g)
    });
}

/// One (threads, executor) measurement of the pool-overhead benchmark.
struct PoolRecord {
    threads: usize,
    persistent_us_per_region: f64,
    scoped_spawn_us_per_region: f64,
}

/// The small-kernel SpMV task for one row range, writing its disjoint
/// output slice — identical work under both executors.
fn spmv_range(adj: &CsrMatrix, x: &[f64], range: Range<usize>, out: &mut [f64]) {
    for (r, slot) in range.zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (&c, &v) in adj.row_cols(r).iter().zip(adj.row_values(r)) {
            acc += v * x[c];
        }
        *slot = acc;
    }
}

/// A faithful replica of the pre-persistent-pool executor (PR 2's
/// `run_tasks`): spawn scoped OS threads per region, shared-queue
/// dynamic balancing, join before returning. Kept here as the benchmark
/// baseline the resident-worker pool is measured against.
fn scoped_spawn_region(tasks: Vec<Box<dyn FnOnce() + Send + '_>>, threads: usize) {
    if threads <= 1 || tasks.len() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    let workers = threads.min(tasks.len());
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let task = match queue.lock() {
                    Ok(mut guard) => guard.next(),
                    Err(_) => break,
                };
                match task {
                    Some(task) => task(),
                    None => break,
                }
            });
        }
    });
}

/// Measures per-region dispatch overhead on a small (1k-node) kernel,
/// where thread plumbing — not compute — dominates: the same partitioned
/// SpMV dispatched `regions` times through (a) the persistent
/// resident-worker pool and (b) per-region scoped spawning. Small kernels
/// in per-iteration hot loops are exactly where spawn cost used to force
/// the serial fallback.
fn bench_pool_overhead(threads_sweep: &[usize], regions: usize) -> (Graph, Vec<PoolRecord>) {
    let graph = erdos_renyi_gnm(1000, 4000, 7);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let x: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.1 - 0.5).collect();
    let mut records = Vec::new();
    for &t in threads_sweep.iter().filter(|&&t| t > 1) {
        let parts = t * 2;
        let ranges = weight_balanced_ranges(adj.row_offsets(), parts);
        let mut y = vec![0.0f64; n];
        let mut reference = vec![0.0f64; n];
        spmv_range(&adj, &x, 0..n, &mut reference);

        fn make_tasks<'a>(
            adj: &'a CsrMatrix,
            x: &'a [f64],
            ranges: &[Range<usize>],
            y: &'a mut [f64],
        ) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::with_capacity(ranges.len());
            let mut rest = y;
            for range in ranges.iter().cloned() {
                let (chunk, tail) = rest.split_at_mut(range.end - range.start);
                rest = tail;
                tasks.push(Box::new(move || spmv_range(adj, x, range, chunk)));
            }
            tasks
        }

        // Persistent: one cached pool, `regions` scoped dispatches.
        let pool = ParallelismConfig::with_threads(t).pool();
        let (_, persistent) = time_once(|| {
            for _ in 0..regions {
                let mut tasks = make_tasks(&adj, &x, &ranges, &mut y);
                pool.scope(|s| {
                    for task in tasks.drain(..) {
                        s.spawn(task);
                    }
                });
            }
        });
        assert_eq!(y, reference, "persistent pool result mismatch");

        // Scoped spawn: fresh OS threads per region (the old executor).
        y.fill(0.0);
        let (_, scoped) = time_once(|| {
            for _ in 0..regions {
                let tasks = make_tasks(&adj, &x, &ranges, &mut y);
                scoped_spawn_region(tasks, t);
            }
        });
        assert_eq!(y, reference, "scoped-spawn result mismatch");

        let record = PoolRecord {
            threads: t,
            persistent_us_per_region: persistent.as_secs_f64() * 1e6 / regions as f64,
            scoped_spawn_us_per_region: scoped.as_secs_f64() * 1e6 / regions as f64,
        };
        println!(
            "pool overhead t={t}: persistent {:.2} µs/region, scoped-spawn {:.2} µs/region ({:.2}x)",
            record.persistent_us_per_region,
            record.scoped_spawn_us_per_region,
            record.scoped_spawn_us_per_region / record.persistent_us_per_region
        );
        records.push(record);
    }
    (graph, records)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let m = arg_usize("--m", 9).clamp(5, 13) as u32;
    let reps = arg_usize("--reps", 3).max(1);
    let with_dblp = arg_usize("--dblp", 1) != 0;
    let threads = arg_thread_list();
    let out_path = arg_string("--out", "BENCH_kernels.json");

    let mut records = Vec::new();
    let ho3 = CouplingMatrix::fig6b_residual();
    let mut exponents = vec![7u32.min(m), m];
    exponents.dedup();
    for exp in exponents {
        let graph = kronecker_graph(exp);
        run_suite(
            &mut records,
            &format!("kronecker_m{exp}"),
            &graph,
            3,
            &ho3,
            0.0005,
            &threads,
            reps,
        );
    }
    if with_dblp {
        let ho4 = CouplingMatrix::homophily(4, 0.6)
            .expect("homophily coupling is valid")
            .residual();
        let net = dblp_like(&DblpConfig::default(), 42);
        run_suite(
            &mut records,
            "dblp_like",
            &net.graph,
            4,
            &ho4,
            0.005,
            &threads,
            reps,
        );
    }

    // Persistent-pool dispatch overhead vs. the old scoped-spawn executor
    // on a small 1k-node kernel.
    let pool_regions = arg_usize("--pool-reps", 200).max(1);
    println!("\n== pool overhead: 1k-node SpMV, {pool_regions} regions per executor ==");
    let (pool_graph, pool_records) = bench_pool_overhead(&threads, pool_regions);

    // Acceptance summary: best SpMM speedup at 4 threads on a
    // ≥ 100k-directed-edge graph, and global identity across the board.
    let spmm_speedup_4t = records
        .iter()
        .filter(|r| r.kernel == "spmm" && r.threads == 4 && r.directed_edges >= 100_000)
        .map(|r| r.speedup_vs_serial)
        .fold(f64::NAN, f64::max);
    let all_identical = records.iter().all(|r| r.identical_to_serial);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"generated_by\": \"perf_baseline\",\n");
    json.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"summary\": {\n");
    json.push_str(&format!(
        "    \"spmm_speedup_4threads_100k_edges\": {},\n",
        json_f64(spmm_speedup_4t)
    ));
    json.push_str(&format!(
        "    \"all_parallel_results_bitwise_identical_to_serial\": {all_identical}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"directed_edges\": {}, \"kernel\": \"{}\", \
             \"threads\": {}, \"secs\": {}, \"speedup_vs_serial\": {}, \
             \"identical_to_serial\": {}}}{}\n",
            r.graph,
            r.nodes,
            r.directed_edges,
            r.kernel,
            r.threads,
            json_f64(r.secs),
            json_f64(r.speedup_vs_serial),
            r.identical_to_serial,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    // The persistent-pool overhead section: µs of dispatch+compute per
    // small-kernel region, resident workers vs. per-region scoped spawn.
    json.push_str("  \"pool\": {\n");
    json.push_str(&format!(
        "    \"graph_nodes\": {},\n    \"directed_edges\": {},\n    \"regions\": {},\n",
        pool_graph.num_nodes(),
        pool_graph.num_directed_edges(),
        pool_regions
    ));
    json.push_str("    \"results\": [\n");
    for (i, r) in pool_records.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \"persistent_us_per_region\": {}, \
             \"scoped_spawn_us_per_region\": {}, \"spawn_overhead_ratio\": {}}}{}\n",
            r.threads,
            json_f64(r.persistent_us_per_region),
            json_f64(r.scoped_spawn_us_per_region),
            json_f64(r.scoped_spawn_us_per_region / r.persistent_us_per_region),
            if i + 1 == pool_records.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("could not write the benchmark JSON");

    println!("\nwrote {out_path}");
    println!(
        "summary: spmm speedup @4 threads on ≥100k-edge graph = {}, all results identical = {}",
        json_f64(spmm_speedup_4t),
        all_identical
    );
    assert!(
        all_identical,
        "parallel kernel produced a result differing from the serial reference"
    );
}

//! Fig. 7(d): time per iteration — LinBP re-scans every edge each round
//! (flat cost), SBP visits each edge at most once across all rounds
//! (front-loaded, decaying cost).
//!
//! Both methods run through the production drivers and are instrumented
//! via the [`FixedPointSolver`] per-iteration **observer hook**
//! (`linbp_observed` / `sbp_observed`): the harness records the elapsed
//! time between observer events instead of owning a private step loop, so
//! what is timed is exactly the code every other caller runs.
//!
//! Instruments Kronecker graph `--graph 6` (paper used #7; `--graph 7`
//! reproduces that).
//! `cargo run --release -p lsbp-bench --bin fig7d_periter`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_graph::geodesic_numbers;
use std::time::{Duration, Instant};

fn main() {
    let id = arg_usize("--graph", 6).clamp(1, 9);
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let e = kronecker_style_beliefs(n, 3, n / 20, 7, false);
    let ho = CouplingMatrix::fig6b_residual();
    let h = ho.scale(0.0005);
    println!(
        "graph #{id}: {n} nodes, {} directed edges",
        scale.directed_edges
    );

    // LinBP: 5 timing-mode rounds; the observer clocks each one. The
    // interval up to the first event also covers the driver's one-time
    // setup (D, Ĥ², residual matrix, scratch allocation), which the old
    // step-timing harness excluded — measure that setup exactly with a
    // zero-budget run and deduct it, so every printed number is pure
    // per-iteration cost.
    let opts = LinBpOptions {
        max_iter: 5,
        tol: 0.0,
        ..Default::default()
    };
    let (_, linbp_setup) = time_once(|| {
        linbp_observed(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 0,
                ..opts
            },
            true,
            |_| {},
        )
        .expect("linbp dimensions are consistent")
    });
    let mut linbp_times: Vec<Duration> = Vec::new();
    let mut last = Instant::now();
    let lin = linbp_observed(&adj, &e, &h, &opts, true, |_event| {
        let now = Instant::now();
        linbp_times.push(now - last);
        last = now;
    })
    .expect("linbp dimensions are consistent");
    assert_eq!(lin.iterations, linbp_times.len());
    if let Some(first) = linbp_times.first_mut() {
        *first = first.saturating_sub(linbp_setup);
    }

    // SBP: the observer clocks each BFS layer (the paper's "iterations").
    // The up-front geodesic indexing is charged to iteration 1, as in the
    // paper, timed standalone here for the report; `sbp_observed` redoes
    // that indexing internally before its first layer event, so the same
    // standalone measurement is deducted from the first interval (the
    // remaining setup — zeroed belief rows plus seed copies — is O(n·k),
    // negligible next to the BFS).
    let (geo_report, index_time) = time_once(|| geodesic_numbers(&adj, &e.explicit_nodes()));
    let mut sbp_times: Vec<Duration> = vec![index_time];
    let mut last = Instant::now();
    let sbp_run = sbp_observed(&adj, &e, &ho, &ParallelismConfig::default(), |_event| {
        let now = Instant::now();
        sbp_times.push(now - last);
        last = now;
    })
    .expect("sbp dimensions are consistent");
    assert_eq!(sbp_run.geodesics.g, geo_report.g);
    if let Some(first_layer) = sbp_times.get_mut(1) {
        *first_layer = first_layer.saturating_sub(index_time);
    }

    // Edges visited per layer: parents one geodesic level below.
    let geo = &sbp_run.geodesics;
    let mut edges_per_layer = vec![0usize];
    for layer in 1..geo.num_layers() {
        let layer_u32 = layer as u32;
        let mut touched = 0usize;
        for &t in &geo.layers[layer] {
            touched += adj
                .row_cols(t as usize)
                .iter()
                .filter(|&&s| geo.g[s as usize] == layer_u32 - 1)
                .count();
        }
        edges_per_layer.push(touched);
    }

    println!(
        "\n{:>5} {:>14} {:>14} {:>16}",
        "iter", "LinBP", "SBP", "SBP edges visited"
    );
    let rounds = linbp_times.len().max(sbp_times.len());
    for i in 0..rounds {
        let lin = linbp_times
            .get(i)
            .map(|&t| fmt_duration(t))
            .unwrap_or_default();
        let sbp_t = sbp_times
            .get(i)
            .map(|&t| fmt_duration(t))
            .unwrap_or_default();
        let edges = edges_per_layer
            .get(i)
            .map(|e| e.to_string())
            .unwrap_or_default();
        println!("{:>5} {lin:>14} {sbp_t:>14} {edges:>16}", i + 1);
    }
    println!(
        "\nShape check vs paper: LinBP cost is flat across iterations; SBP peaks early\n\
         (indexing + the big first layers) and decays as the BFS frontier shrinks."
    );
}

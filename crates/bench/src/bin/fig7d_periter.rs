//! Fig. 7(d): time per iteration — LinBP re-scans every edge each round
//! (flat cost), SBP visits each edge at most once across all rounds
//! (front-loaded, decaying cost).
//!
//! Instruments the native implementations on Kronecker graph `--graph 6`
//! (paper used #7; `--graph 7` reproduces that).
//! `cargo run --release -p lsbp-bench --bin fig7d_periter`

use lsbp::linbp::linbp_step;
use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};
use lsbp_graph::geodesic_numbers;
use lsbp_linalg::Mat;

fn main() {
    let id = arg_usize("--graph", 6).clamp(1, 9);
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let e = kronecker_style_beliefs(n, 3, n / 20, 7, false);
    let ho = CouplingMatrix::fig6b_residual();
    let h = ho.scale(0.0005);
    println!(
        "graph #{id}: {n} nodes, {} directed edges",
        scale.directed_edges
    );

    // LinBP: time each of 5 update rounds.
    let h2 = h.matmul(&h);
    let degrees = adj.squared_weight_degrees();
    let e_hat = e.residual_matrix();
    let mut b = e_hat.clone();
    let mut next = Mat::zeros(n, 3);
    let mut scratch = LinBpScratch::new(n, 3);
    let cfg = ParallelismConfig::default();
    let mut linbp_times = Vec::new();
    for _ in 0..5 {
        let (_, t) = time_once(|| {
            linbp_step(
                &adj,
                e_hat,
                &b,
                &h,
                Some(&h2),
                &degrees,
                &mut scratch,
                &mut next,
                &cfg,
            );
        });
        std::mem::swap(&mut b, &mut next);
        linbp_times.push(t);
    }

    // SBP: time each BFS layer (the paper's "iterations"), plus the
    // up-front geodesic indexing it charges to iteration 1.
    let (geo, index_time) = time_once(|| geodesic_numbers(&adj, &e.explicit_nodes()));
    let mut beliefs = Mat::zeros(n, 3);
    for &v in e.explicit_nodes().iter() {
        beliefs.row_mut(v).copy_from_slice(e.row(v));
    }
    let mut sbp_times = vec![index_time];
    let mut edges_per_layer = vec![0usize];
    for layer in 1..geo.num_layers() {
        let layer_nodes = geo.layers[layer].clone();
        let (edges, t) = time_once(|| {
            let mut touched = 0usize;
            let mut row = vec![0.0; 3];
            for &t in &layer_nodes {
                row.fill(0.0);
                for (s, w) in adj.row_iter(t as usize) {
                    if geo.g[s] == layer as u32 - 1 {
                        touched += 1;
                        for (c1, &bs) in beliefs.row(s).iter().enumerate() {
                            if bs != 0.0 {
                                for c2 in 0..3 {
                                    row[c2] += w * bs * h[(c1, c2)];
                                }
                            }
                        }
                    }
                }
                beliefs.row_mut(t as usize).copy_from_slice(&row);
            }
            touched
        });
        sbp_times.push(t);
        edges_per_layer.push(edges);
    }

    println!(
        "\n{:>5} {:>14} {:>14} {:>16}",
        "iter", "LinBP", "SBP", "SBP edges visited"
    );
    let rounds = linbp_times.len().max(sbp_times.len());
    for i in 0..rounds {
        let lin = linbp_times
            .get(i)
            .map(|&t| fmt_duration(t))
            .unwrap_or_default();
        let sbp_t = sbp_times
            .get(i)
            .map(|&t| fmt_duration(t))
            .unwrap_or_default();
        let edges = edges_per_layer
            .get(i)
            .map(|e| e.to_string())
            .unwrap_or_default();
        println!("{:>5} {lin:>14} {sbp_t:>14} {edges:>16}", i + 1);
    }
    println!(
        "\nShape check vs paper: LinBP cost is flat across iterations; SBP peaks early\n\
         (indexing + the big first layers) and decays as the BFS frontier shrinks."
    );
}

//! Fig. 11(b): the DBLP experiment — F1 of LinBP, LinBP\* and SBP with BP
//! as ground truth, over εH, on the heterogeneous bibliographic network.
//!
//! Uses the synthetic DBLP-like network (same shape as the paper's 36k-
//! node subset; see DESIGN.md "Substitutions") with ~10.4% labeled nodes
//! and the Fig. 11a 4-class homophily residual. Default is a quarter-
//! scale network for speed; pass `--full 1` for paper scale.
//! `cargo run --release -p lsbp-bench --bin fig11_dblp`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, log_sweep, random_labels};
use lsbp_graph::generators::{dblp_like, DblpConfig};

fn main() {
    let full = arg_usize("--full", 0) == 1;
    let points = arg_usize("--points", 11);
    let cfg = if full {
        DblpConfig::default()
    } else {
        DblpConfig {
            n_papers: 3_500,
            n_authors: 3_500,
            n_terms_per_area: 450,
            n_shared_terms: 225,
            ..DblpConfig::default()
        }
    };
    let net = dblp_like(&cfg, 20);
    let n = net.graph.num_nodes();
    let adj = net.graph.adjacency();
    let labels = random_labels(n, 4, (n as f64 * 0.104) as usize, 2);
    let ho = CouplingMatrix::fig11a_residual();
    println!(
        "DBLP-like network: {n} nodes, {} directed edges, {} labeled ({:.1}%)",
        net.graph.num_directed_edges(),
        labels.num_explicit(),
        100.0 * labels.num_explicit() as f64 / n as f64
    );
    let eps_exact = eps_max_exact_linbp(&ho, &adj, 1e-4);
    println!("exact LinBP threshold: εH = {eps_exact:.2e} (paper: ≈1.3e-3)");

    // SBP once (εH-independent).
    let sbp_r = sbp(&adj, &labels, &ho).unwrap();
    let sbp_tops = sbp_r.beliefs.top_belief_assignment(1e-9);

    println!(
        "\n{:>10} {:>7} {:>9} {:>9} {:>9}",
        "εH", "BPconv", "LinBP F1", "L* F1", "SBP F1"
    );
    for eps in log_sweep(1e-8, 1e-2, points) {
        let h_raw = CouplingMatrix::from_residual(&ho, eps);
        let Ok(h_raw) = h_raw else {
            println!("{eps:>10.1e}   (εH too large for positive BP potentials)");
            continue;
        };
        let bp_r = bp(
            &adj,
            &labels,
            h_raw.raw(),
            &BpOptions {
                max_iter: 150,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        let gt = bp_r.beliefs.top_belief_assignment(1e-6);
        let opts = LinBpOptions {
            max_iter: 1500,
            tol: 1e-16,
            ..Default::default()
        };
        let h = ho.scale(eps);
        let lin = linbp(&adj, &labels, &h, &opts).unwrap();
        let star = linbp_star(&adj, &labels, &h, &opts).unwrap();
        let f1_of = |r: &lsbp::linbp::LinBpResult| {
            if r.diverged {
                f64::NAN
            } else {
                accuracy(&gt, &r.beliefs.top_belief_assignment(1e-6))
            }
        };
        let sbp_f1 = accuracy(&gt, &sbp_tops);
        println!(
            "{eps:>10.1e} {:>7} {:>9.4} {:>9.4} {:>9.4}",
            bp_r.converged,
            f1_of(&lin),
            f1_of(&star),
            sbp_f1
        );
    }
    println!(
        "\nShape check vs paper (Fig. 11b): LinBP/LinBP* F1 ≈ 1 while BP converges and\n\
         drop when it stops; SBP lower (ties on the heterogeneous network) but > 0.95."
    );
}

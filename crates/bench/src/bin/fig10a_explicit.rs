//! Fig. 10(a): runtime vs fraction of explicit beliefs.
//!
//! Paper's Result 5: LinBP gets *slightly slower* with more labels (a
//! denser B̂ means more non-zero arithmetic), SBP gets *slightly faster*
//! (fewer propagation layers, fewer edges crossing them); both effects
//! are minor. Native implementations, graph `--graph 5` by default (as in
//! the paper). `cargo run --release -p lsbp-bench --bin fig10a_explicit`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};

fn main() {
    let id = arg_usize("--graph", 5).clamp(1, 9);
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let ho = CouplingMatrix::fig6b_residual();
    let h = ho.scale(0.0005);
    println!(
        "graph #{id}: {n} nodes, {} directed edges",
        scale.directed_edges
    );
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "explicit", "LinBP(5it)", "SBP", "layers"
    );

    for pct in [5, 10, 20, 30, 40, 50, 60, 70, 80, 90] {
        let count = (n * pct / 100).max(1);
        let e = kronecker_style_beliefs(n, 3, count, pct as u64, false);
        let lin_opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let (_, t_lin) = time_once(|| linbp(&adj, &e, &h, &lin_opts).unwrap());
        let (sbp_result, t_sbp) = time_once(|| sbp(&adj, &e, &ho).unwrap());
        println!(
            "{:>9}% {:>12} {:>12} {:>8}",
            pct,
            fmt_duration(t_lin),
            fmt_duration(t_sbp),
            sbp_result.geodesics.num_layers()
        );
    }
    println!(
        "\nShape check vs paper: both curves nearly flat; LinBP drifts up, SBP drifts\n\
         down as the explicit fraction grows."
    );
}

//! Fig. 7(a) + the main-memory columns of Fig. 7(c): scalability of the
//! in-memory BP and LinBP implementations.
//!
//! Protocol follows Sect. 7: 5 iterations of each method, k = 3 classes,
//! Fig. 6b coupling, 5% explicit beliefs; timing excludes graph
//! generation and matrix setup. Graphs #1–#6 by default (`--max 8` for
//! more; #8 takes minutes for BP).
//! `cargo run --release -p lsbp-bench --bin fig7a_memory`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, fmt_duration, kronecker_style_beliefs, time_once};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};

fn main() {
    let max_id = arg_usize("--max", 6).min(9);
    let eps = 0.0005; // inside the convergence region for all scales run here
    let ho = CouplingMatrix::fig6b_residual();
    let h_res = ho.scale(eps);
    let h_raw = CouplingMatrix::from_residual(&ho, eps).unwrap();

    println!("5 iterations each, k = 3, εH = {eps}, 5% explicit beliefs");
    println!(
        "{:>2} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>9} {:>14}",
        "#",
        "nodes",
        "edges",
        "BP(naive)",
        "BP(cached)",
        "LinBP",
        "BPn/Lin",
        "BPc/Lin",
        "LinBP edges/s"
    );
    for scale in kronecker_schedule().into_iter().filter(|s| s.id <= max_id) {
        let graph = kronecker_graph(scale.exponent);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, scale.id as u64, false);

        // Naive BP: the straightforward per-edge implementation (O(deg²·k)
        // per node) — the kind of baseline the paper compares against.
        let naive_opts = BpOptions {
            max_iter: 5,
            tol: 0.0,
            naive_products: true,
            ..Default::default()
        };
        let (_, naive_time) = time_once(|| bp(&adj, &e, h_raw.raw(), &naive_opts).unwrap());
        // Cached BP: the same messages via product caching (O(deg·k)).
        let bp_opts = BpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let (bp_result, bp_time) = time_once(|| bp(&adj, &e, h_raw.raw(), &bp_opts).unwrap());
        let lin_opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        let (lin_result, lin_time) = time_once(|| linbp(&adj, &e, &h_res, &lin_opts).unwrap());
        assert_eq!(bp_result.iterations, 5);
        assert_eq!(lin_result.iterations, 5);

        let eps_per_sec = scale.directed_edges as f64 * 5.0 / lin_time.as_secs_f64();
        println!(
            "{:>2} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8.0} {:>9.0} {:>14.2e}",
            scale.id,
            n,
            scale.directed_edges,
            fmt_duration(naive_time),
            fmt_duration(bp_time),
            fmt_duration(lin_time),
            naive_time.as_secs_f64() / lin_time.as_secs_f64(),
            bp_time.as_secs_f64() / lin_time.as_secs_f64(),
            eps_per_sec
        );
    }
    println!(
        "\nPaper's qualitative claims to compare against: LinBP scales ~linearly in edges\n\
         (reference line: 100k edges/s on 2011 hardware); straightforward BP is orders of\n\
         magnitude slower and its gap *grows* with graph size (Fig. 7c: 60 → 642), because\n\
         Kronecker max degree grows with size and naive message products cost O(deg²).\n\
         The BP(cached) column isolates how much of that gap is the product-caching\n\
         optimization vs. the beliefs-as-matrix reformulation itself."
    );
}

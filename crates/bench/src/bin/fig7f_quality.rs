//! Fig. 7(f): precision and recall of LinBP with BP as ground truth,
//! sweeping εH over [1e−8, 1e−2].
//!
//! Protocol (Sect. 7, Question 4): Kronecker graph (default #5 like the
//! paper — `--graph N` to change), 5% explicit beliefs, Fig. 6b coupling.
//! Vertical markers: the Lemma 9 sufficient threshold and the Lemma 8
//! exact threshold. `cargo run --release -p lsbp-bench --bin fig7f_quality`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, kronecker_style_beliefs, log_sweep};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};

fn main() {
    let id = arg_usize("--graph", 5).clamp(1, 9);
    let points = arg_usize("--points", 13);
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    // Extra belief digits suppress exact ties, as the paper recommends.
    let e = kronecker_style_beliefs(n, 3, n / 20, 5, true);
    let ho = CouplingMatrix::fig6b_residual();

    let eps_suff = eps_max_sufficient_linbp(&ho, &adj);
    let eps_exact = eps_max_exact_linbp(&ho, &adj, 1e-4);
    println!(
        "graph #{id}: {n} nodes; thresholds: sufficient εH = {eps_suff:.2e} (paper 2e-4), exact εH = {eps_exact:.2e} (paper 2.8e-3)"
    );
    println!(
        "{:>10} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "εH", "BPconv", "Lconv", "recall", "precision", "F1"
    );

    for eps in log_sweep(1e-8, 1e-2, points) {
        let h_raw = CouplingMatrix::from_residual(&ho, eps).unwrap();
        let bp_r = bp(
            &adj,
            &e,
            h_raw.raw(),
            &BpOptions {
                max_iter: 200,
                tol: 1e-14,
                ..Default::default()
            },
        )
        .unwrap();
        let lin = linbp(
            &adj,
            &e,
            &ho.scale(eps),
            &LinBpOptions {
                max_iter: 2000,
                tol: 1e-16,
                ..Default::default()
            },
        )
        .unwrap();
        if lin.diverged {
            println!(
                "{eps:>10.1e} {:>6} {:>6}   (LinBP diverged)",
                bp_r.converged, "—"
            );
            continue;
        }
        let gt = bp_r.beliefs.top_belief_assignment(1e-6);
        let ours = lin.beliefs.top_belief_assignment(1e-6);
        let q = quality(&gt, &ours);
        println!(
            "{eps:>10.1e} {:>6} {:>6} {:>9.4} {:>9.4} {:>9.4}",
            bp_r.converged, lin.converged, q.recall, q.precision, q.f1
        );
    }
    println!(
        "\nShape check vs paper: r = p ≈ 1 in the upper convergent range; deviations at\n\
         very small εH come from floating-point round-off (Result 4); overall accuracy\n\
         stays > 99.9%."
    );
}

//! Fig. 7(g): quality of SBP and LinBP\* with LinBP as ground truth,
//! sweeping εH over [1e−8, 1e−2].
//!
//! The paper's observations to reproduce: LinBP\* ≈ LinBP exactly while
//! both converge (r = p, single curve); SBP matches closely with recall
//! above precision (SBP reports tied top beliefs where LinBP resolves
//! them) — averaged r ≈ 0.995, p ≈ 0.978 without tie-breaking digits.
//! `cargo run --release -p lsbp-bench --bin fig7g_quality [--ties 1]`

use lsbp::prelude::*;
use lsbp_bench::{arg_usize, kronecker_style_beliefs, log_sweep};
use lsbp_graph::generators::{kronecker_graph, kronecker_schedule};

fn main() {
    let id = arg_usize("--graph", 5).clamp(1, 9);
    let points = arg_usize("--points", 13);
    // `--ties 1` keeps the raw 0.01-grid beliefs (more ties, the paper's
    // oscillating curves); default adds tie-breaking digits.
    let keep_ties = arg_usize("--ties", 0) == 1;
    let scale = kronecker_schedule()[id - 1];
    let graph = kronecker_graph(scale.exponent);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let e = kronecker_style_beliefs(n, 3, n / 20, 5, !keep_ties);
    let ho = CouplingMatrix::fig6b_residual();

    // SBP is εH-independent: compute once.
    let sbp_r = sbp(&adj, &e, &ho).unwrap();
    let sbp_tops = sbp_r.beliefs.top_belief_assignment(1e-9);

    println!(
        "graph #{id}: {n} nodes, ties {}",
        if keep_ties {
            "kept (paper's oscillating regime)"
        } else {
            "broken with extra digits"
        }
    );
    println!(
        "{:>10} | {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "εH", "L* r=p", "L* F1", "SBP r", "SBP p", "SBP F1"
    );
    let opts = LinBpOptions {
        max_iter: 2000,
        tol: 1e-16,
        ..Default::default()
    };
    let mut sbp_r_sum = 0.0;
    let mut sbp_p_sum = 0.0;
    let mut count = 0usize;
    for eps in log_sweep(1e-8, 1e-2, points) {
        let h = ho.scale(eps);
        let lin = linbp(&adj, &e, &h, &opts).unwrap();
        if lin.diverged {
            println!("{eps:>10.1e} |   (LinBP diverged — right edge of Fig. 7g)");
            continue;
        }
        let gt = lin.beliefs.top_belief_assignment(1e-6);
        let star = linbp_star(&adj, &e, &h, &opts).unwrap();
        let star_q = quality(&gt, &star.beliefs.top_belief_assignment(1e-6));
        let sbp_q = quality(&gt, &sbp_tops);
        sbp_r_sum += sbp_q.recall;
        sbp_p_sum += sbp_q.precision;
        count += 1;
        println!(
            "{eps:>10.1e} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} {:>9.4}",
            star_q.recall, star_q.f1, sbp_q.recall, sbp_q.precision, sbp_q.f1
        );
    }
    if count > 0 {
        println!(
            "\naveraged SBP vs LinBP: recall {:.4} (paper 0.995), precision {:.4} (paper 0.978)",
            sbp_r_sum / count as f64,
            sbp_p_sum / count as f64
        );
    }
    println!(
        "Shape check vs paper: LinBP* ≡ LinBP while convergent; SBP slightly lower\n\
         precision than recall (tied top beliefs); accuracy > 98.6% throughout."
    );
}

//! Criterion bench for Fig. 7(a)'s LinBP column: cost of 5 LinBP /
//! LinBP\* iterations across Kronecker graph scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbp::prelude::*;
use lsbp_bench::kronecker_style_beliefs;
use lsbp_graph::generators::kronecker_graph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("linbp_5iter");
    group.sample_size(10);
    let ho = CouplingMatrix::fig6b_residual();
    let h = ho.scale(0.0005);
    for m in [5u32, 6, 7] {
        let graph = kronecker_graph(m);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, m as u64, false);
        let opts = LinBpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("linbp", n), &n, |b, _| {
            b.iter(|| linbp(&adj, &e, &h, &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("linbp_star", n), &n, |b, _| {
            b.iter(|| linbp_star(&adj, &e, &h, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

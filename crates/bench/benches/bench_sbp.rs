//! Criterion bench for SBP: full runs (single pass over the graph) and
//! incremental maintenance (Algorithms 3 & 4, native implementations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbp::prelude::*;
use lsbp_bench::{kronecker_style_beliefs, random_labels};
use lsbp_graph::generators::kronecker_graph;

fn bench(c: &mut Criterion) {
    let ho = CouplingMatrix::fig6b_residual();

    let mut group = c.benchmark_group("sbp_full");
    group.sample_size(10);
    for m in [5u32, 6, 7] {
        let graph = kronecker_graph(m);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, m as u64, false);
        group.bench_with_input(BenchmarkId::new("sbp", n), &n, |b, _| {
            b.iter(|| sbp(&adj, &e, &ho).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sbp_incremental");
    group.sample_size(10);
    let graph = kronecker_graph(7);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let e = kronecker_style_beliefs(n, 3, n / 20, 3, false);
    let prev = sbp(&adj, &e, &ho).unwrap();
    let delta = random_labels(n, 3, (n / 1000).max(1), 9);
    group.bench_function("add_explicit_1permille", |b| {
        b.iter(|| sbp_add_explicit(&adj, &ho, &prev, &delta).unwrap())
    });
    // Edge insertion: re-add the last 0.5% of edges.
    let keep = graph.num_edges() - graph.num_edges() / 200;
    let (base, extra) = graph.split_edges(keep);
    let prev_base = sbp(&base.adjacency(), &e, &ho).unwrap();
    let new_edges: Vec<_> = extra.edges().collect();
    group.bench_function("add_edges_0.5pct", |b| {
        b.iter(|| sbp_add_edges(&adj, &new_edges, &ho, &prev_base).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

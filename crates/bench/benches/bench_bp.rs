//! Criterion bench for Fig. 7(a)'s BP column: cost of 5 message-passing
//! rounds of standard BP (per-edge k-vectors — the baseline LinBP beats).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbp::prelude::*;
use lsbp_bench::kronecker_style_beliefs;
use lsbp_graph::generators::kronecker_graph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_5iter");
    group.sample_size(10);
    let ho = CouplingMatrix::fig6b_residual();
    let h_raw = CouplingMatrix::from_residual(&ho, 0.0005).unwrap();
    for m in [5u32, 6] {
        let graph = kronecker_graph(m);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, m as u64, false);
        let opts = BpOptions {
            max_iter: 5,
            tol: 0.0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("bp", n), &n, |b, _| {
            b.iter(|| bp(&adj, &e, h_raw.raw(), &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

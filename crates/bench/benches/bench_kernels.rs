//! Ablation benches for DESIGN.md's design decision #1: why is LinBP
//! fast? Compares the two possible update kernels on the same graph —
//!
//! * beliefs-as-matrix: one CSR SpMM + a k×k matmul per iteration
//!   (what LinBP does),
//! * messages-as-edges: 2|E| per-edge k-vector updates per iteration
//!   (what standard BP does),
//!
//! plus the primitive kernels (SpMM, SpMV, dense matmul) they decompose
//! into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbp::linbp::linbp_step;
use lsbp::prelude::*;
use lsbp_bench::kronecker_style_beliefs;
use lsbp_graph::generators::kronecker_graph;
use lsbp_linalg::Mat;
use lsbp_sparse::FusedLinBpStep;

fn bench(c: &mut Criterion) {
    let ho = CouplingMatrix::fig6b_residual();
    let h = ho.scale(0.0005);
    let h_raw = CouplingMatrix::from_residual(&ho, 0.0005).unwrap();

    let mut group = c.benchmark_group("update_kernels_per_iteration");
    group.sample_size(10);
    for m in [6u32, 7] {
        let graph = kronecker_graph(m);
        let adj = graph.adjacency();
        let n = graph.num_nodes();
        let e = kronecker_style_beliefs(n, 3, n / 20, m as u64, false);

        // One LinBP step (beliefs-as-matrix).
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        let e_hat = e.residual_matrix().clone();
        let b0 = e_hat.clone();
        group.bench_with_input(BenchmarkId::new("beliefs_matrix_step", n), &n, |bch, _| {
            let mut scratch = LinBpScratch::new(n, 3);
            let mut out = Mat::zeros(n, 3);
            let cfg = ParallelismConfig::serial();
            bch.iter(|| {
                linbp_step(
                    &adj,
                    &e_hat,
                    &b0,
                    &h,
                    Some(&h2),
                    &degrees,
                    &mut scratch,
                    &mut out,
                    &cfg,
                );
            })
        });

        // One *fused* LinBP step (PR 4): the same update plus the
        // convergence read-out in a single row-partitioned pass.
        group.bench_with_input(BenchmarkId::new("fused_step", n), &n, |bch, _| {
            let mut out = Mat::zeros(n, 3);
            let mut deltas = [0.0f64];
            let cfg = ParallelismConfig::serial();
            let step = FusedLinBpStep {
                e_hat: &e_hat,
                h: &h,
                h2: Some(&h2),
                degrees: &degrees,
                damping: 0.0,
            };
            bch.iter(|| {
                adj.linbp_step_fused_with(&b0, &step, &mut out, &mut deltas, &cfg);
            })
        });

        // One BP round (messages-as-edges) — measured as 1 iteration of bp.
        let opts = BpOptions {
            max_iter: 1,
            tol: 0.0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("messages_edges_round", n), &n, |bch, _| {
            bch.iter(|| bp(&adj, &e, h_raw.raw(), &opts).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("primitive_kernels");
    group.sample_size(20);
    let graph = kronecker_graph(7);
    let adj = graph.adjacency();
    let n = graph.num_nodes();
    let b = Mat::from_fn(n, 3, |r, c| ((r * 3 + c) % 17) as f64 * 0.01);
    group.bench_function("spmm_nx3", |bch| {
        let mut out = Mat::zeros(n, 3);
        bch.iter(|| adj.spmm_into(&b, &mut out))
    });
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1).collect();
    group.bench_function("spmv", |bch| {
        let mut y = vec![0.0; n];
        bch.iter(|| adj.spmv_into(&x, &mut y))
    });
    group.bench_function("dense_matmul_nx3_3x3", |bch| {
        let k3 = Mat::from_fn(3, 3, |r, c| 0.1 * (r + c) as f64);
        bch.iter(|| b.matmul(&k3))
    });
    group.finish();

    // The transpose split heuristic at the size where the PR 3 parallel
    // scatter regressed (kronecker m9, average degree ~13): with the
    // retuned write-bound clamp the 2/4-thread configurations refuse to
    // split and must match the serial time instead of trailing it.
    let mut group = c.benchmark_group("transpose_m9_split_heuristic");
    group.sample_size(10);
    let graph = kronecker_graph(9);
    let adj = graph.adjacency();
    for threads in [1usize, 2, 4] {
        let cfg = ParallelismConfig::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("transpose", threads),
            &threads,
            |bch, _| bch.iter(|| adj.transpose_with(&cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

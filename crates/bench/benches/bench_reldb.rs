//! Criterion bench for the relational engine (Fig. 7(b)'s columns):
//! SQL LinBP vs SQL SBP vs ΔSBP on Kronecker graph #1.

use criterion::{criterion_group, criterion_main, Criterion};
use lsbp::prelude::*;
use lsbp_bench::{kronecker_style_beliefs, random_labels};
use lsbp_graph::generators::kronecker_graph;
use lsbp_reldb::SqlDb;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reldb_graph1");
    group.sample_size(10);
    let ho = CouplingMatrix::fig6b_residual();
    let graph = kronecker_graph(5);
    let n = graph.num_nodes();
    let e = kronecker_style_beliefs(n, 3, n / 20, 1, false);

    let db_lin = SqlDb::new(&graph, &e, &ho.scale(0.0005));
    group.bench_function("sql_linbp_5iter", |b| b.iter(|| db_lin.linbp(5, true)));

    let db_sbp = SqlDb::new(&graph, &e, &ho);
    group.bench_function("sql_sbp", |b| b.iter(|| db_sbp.sbp()));

    let delta = random_labels(n, 3, (n / 100).max(1), 5);
    group.bench_function("sql_delta_sbp_1pct", |b| {
        b.iter_with_setup(
            || (db_sbp.clone(), db_sbp.sbp()),
            |(mut db, mut state)| {
                db.sbp_add_explicit(&mut state, &delta);
                state
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

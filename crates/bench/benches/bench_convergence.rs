//! Benches for the convergence machinery (Lemma 8/9 and Appendix G):
//! spectral radii (matrix-free power iteration), εH bisection, norm
//! bounds, Mooij constant, edge-matrix radius.

use criterion::{criterion_group, criterion_main, Criterion};
use lsbp::convergence::{mooij_constant, rho_edge_matrix, spectral_radius_linbp_operator};
use lsbp::prelude::*;
use lsbp_graph::generators::{fig5c_torus, kronecker_graph};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_criteria");
    group.sample_size(10);
    let coupling = CouplingMatrix::fig1c().unwrap();
    let ho = coupling.residual();
    let graph = kronecker_graph(6);
    let adj = graph.adjacency();

    group.bench_function("rho_adjacency_59k_edges", |b| {
        b.iter(|| adj.spectral_radius())
    });
    let h = ho.scale(0.01);
    group.bench_function("rho_linbp_operator", |b| {
        b.iter(|| spectral_radius_linbp_operator(&adj, &h, true))
    });
    group.bench_function("rho_edge_matrix", |b| b.iter(|| rho_edge_matrix(&adj)));
    group.bench_function("norm_bounds_lemma9", |b| {
        b.iter(|| eps_max_sufficient_linbp(&ho, &adj))
    });
    group.bench_function("mooij_constant_k3", |b| {
        let raw = coupling.raw_at_scale(0.1);
        b.iter(|| mooij_constant(&raw))
    });

    // The full bisection only on the small torus (it runs many power
    // iterations).
    let torus = fig5c_torus().adjacency();
    group.bench_function("eps_bisection_torus", |b| {
        b.iter(|| eps_max_exact_linbp(&ho, &torus, 1e-4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

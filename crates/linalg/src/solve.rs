//! Dense LU factorization with partial pivoting.
//!
//! The closed form of Proposition 7 inverts `I_nk − Ĥ⊗A + Ĥ²⊗D`. For small
//! systems (`n·k` up to a few thousand) we materialize that matrix and solve
//! it directly — this is the correctness oracle the iterative LinBP updates
//! are validated against in the integration tests.

use crate::matrix::Mat;

/// Errors from dense solving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is singular (a pivot below tolerance was encountered).
    Singular,
    /// Dimension mismatch between the matrix and the right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular => write!(f, "matrix is singular to working precision"),
            LuError::DimensionMismatch => write!(f, "dimension mismatch in linear solve"),
        }
    }
}

impl std::error::Error for LuError {}

/// In-place LU decomposition with partial pivoting.
/// Returns the permutation (row i of LU corresponds to row perm[i] of A).
fn lu_decompose(a: &mut Mat) -> Result<Vec<usize>, LuError> {
    let n = a.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot: largest absolute value in this column at or below the diagonal.
        let mut pivot_row = col;
        let mut pivot_val = a[(col, col)].abs();
        for r in (col + 1)..n {
            let v = a[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LuError::Singular);
        }
        if pivot_row != col {
            perm.swap(col, pivot_row);
            for c in 0..n {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
        }
        let inv_pivot = 1.0 / a[(col, col)];
        for r in (col + 1)..n {
            let factor = a[(r, col)] * inv_pivot;
            a[(r, col)] = factor; // store L below the diagonal
            if factor != 0.0 {
                for c in (col + 1)..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
            }
        }
    }
    Ok(perm)
}

/// Solves `A x = b` by LU with partial pivoting.
///
/// `A` must be square; `b.len()` must equal `A.rows()`.
pub fn lu_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>, LuError> {
    if !a.is_square() || a.rows() != b.len() {
        return Err(LuError::DimensionMismatch);
    }
    let n = a.rows();
    let mut lu = a.clone();
    let perm = lu_decompose(&mut lu)?;
    // Forward substitution on the permuted RHS (L has unit diagonal).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[perm[i]];
        for j in 0..i {
            sum -= lu[(i, j)] * y[j];
        }
        y[i] = sum;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= lu[(i, j)] * x[j];
        }
        x[i] = sum / lu[(i, i)];
    }
    Ok(x)
}

/// Matrix inverse via LU (column-by-column solve). Only intended for the
/// small `k × k` coupling matrices, e.g. `(I_k − Ĥ²)⁻¹` in Lemma 6.
pub fn lu_inverse(a: &Mat) -> Result<Mat, LuError> {
    if !a.is_square() {
        return Err(LuError::DimensionMismatch);
    }
    let n = a.rows();
    let mut lu = a.clone();
    let perm = lu_decompose(&mut lu)?;
    let mut inv = Mat::zeros(n, n);
    let mut y = vec![0.0; n];
    for col in 0..n {
        // Solve A x = e_col re-using the single factorization.
        for i in 0..n {
            let mut sum = if perm[i] == col { 1.0 } else { 0.0 };
            for j in 0..i {
                sum -= lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= lu[(i, j)] * inv[(j, col)];
            }
            inv[(i, col)] = sum / lu[(i, i)];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let i = Mat::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(lu_solve(&i, &b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // [[2,1],[1,3]] x = [5, 10] → x = [1, 3]
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal entry — fails without partial pivoting.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LuError::Singular));
        assert_eq!(lu_inverse(&a), Err(LuError::Singular));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0]), Err(LuError::DimensionMismatch));
        assert_eq!(
            lu_solve(&Mat::zeros(2, 3), &[1.0, 2.0]),
            Err(LuError::DimensionMismatch)
        );
    }

    #[test]
    fn inverse_round_trip() {
        let a = Mat::from_rows(&[&[4.0, 7.0, 1.0], &[2.0, 6.0, 0.0], &[1.0, -1.0, 3.0]]);
        let inv = lu_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-10);
        let prod2 = inv.matmul(&a);
        assert!(prod2.max_abs_diff(&Mat::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_residual_small_random() {
        // Deterministic pseudo-random 8x8 system; check the residual.
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = Mat::from_fn(8, 8, |r, c| next() + if r == c { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..8).map(|_| next()).collect();
        let x = lu_solve(&a, &b).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }
}

//! Standardization ζ (Definition 11 of the paper).
//!
//! `ζ(x)` maps a vector to its z-scores using the *population* standard
//! deviation (divide by k, not k−1) — this is what reproduces the paper's
//! worked examples: `ζ([1,0]) = [1,−1]` and
//! `ζ([1,0,0,0,0]) = [2,−0.5,−0.5,−0.5,−0.5]`.
//!
//! Theorem 19 is stated in terms of standardized beliefs: as εH → 0⁺ the
//! standardized LinBP beliefs converge to the standardized SBP beliefs, so
//! this map is how the two semantics are compared everywhere in the
//! experiments.

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation (√(Σ(x−μ)²/k)); 0 for an empty slice.
pub fn population_std(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mu = mean(x);
    (x.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / x.len() as f64).sqrt()
}

/// The standardization `ζ(x)` of Definition 11: `(x_i − μ)/σ`, or the zero
/// vector when σ = 0 (e.g. `ζ([1,1,1]) = [0,0,0]`).
pub fn standardize(x: &[f64]) -> Vec<f64> {
    let sigma = population_std(x);
    if sigma == 0.0 {
        return vec![0.0; x.len()];
    }
    let mu = mean(x);
    x.iter().map(|v| (v - mu) / sigma).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    /// The three worked examples directly under Definition 11.
    #[test]
    fn paper_examples() {
        assert_close(&standardize(&[1.0, 0.0]), &[1.0, -1.0]);
        assert_close(&standardize(&[1.0, 1.0, 1.0]), &[0.0, 0.0, 0.0]);
        assert_close(
            &standardize(&[1.0, 0.0, 0.0, 0.0, 0.0]),
            &[2.0, -0.5, -0.5, -0.5, -0.5],
        );
    }

    /// The example under Definition 11: two belief vectors that differ by a
    /// scale factor have identical standardizations.
    #[test]
    fn scale_invariance() {
        let bs = [4.0, -1.0, -1.0, -1.0, -1.0];
        let bt: Vec<f64> = bs.iter().map(|x| x * 10.0).collect();
        assert_close(&standardize(&bs), &standardize(&bt));
        assert_close(&standardize(&bs), &[2.0, -0.5, -0.5, -0.5, -0.5]);
    }

    #[test]
    fn std_of_scaled_vector() {
        let bs = [4.0, -1.0, -1.0, -1.0, -1.0];
        assert!((population_std(&bs) - 2.0).abs() < 1e-12);
        let bt: Vec<f64> = bs.iter().map(|x| x * 10.0).collect();
        assert!((population_std(&bt) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn standardized_vector_has_zero_mean_unit_std() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let z = standardize(&x);
        assert!(mean(&z).abs() < 1e-12);
        assert!((population_std(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_std(&[]), 0.0);
        assert_eq!(standardize(&[]), Vec::<f64>::new());
        assert_eq!(standardize(&[7.0]), vec![0.0]);
    }

    /// Standardization is invariant under any positive affine map a·x (a>0)
    /// — but flips sign for a<0.
    #[test]
    fn affine_behaviour() {
        let x = [1.0, 2.0, 5.0];
        let pos: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let neg: Vec<f64> = x.iter().map(|v| -3.0 * v).collect();
        assert_close(&standardize(&x), &standardize(&pos));
        let flipped: Vec<f64> = standardize(&x).iter().map(|v| -v).collect();
        assert_close(&flipped, &standardize(&neg));
    }
}

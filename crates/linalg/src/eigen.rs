//! Eigenvalue machinery for the exact convergence criteria (Lemma 8).
//!
//! Two tools:
//!
//! * [`spectral_radius_dense_symmetric`] — a cyclic Jacobi eigensolver for
//!   small symmetric matrices (the `k × k` coupling matrices; `k` is the
//!   number of classes, typically 2–10).
//! * [`power_iteration`] — a matrix-free power method for large symmetric
//!   operators, used for ρ(A) on CSR adjacency matrices and for
//!   ρ(Ĥ⊗A − Ĥ²⊗D) without ever materializing the `nk × nk` Kronecker
//!   matrix. For symmetric operators the iterate may oscillate between the
//!   ±λ eigenspaces, but the *norm growth ratio* still converges to the
//!   spectral radius, which is all Lemma 8 needs.

use crate::fixedpoint::{FixedPointOp, FixedPointSolver, StepOutcome};
use crate::matrix::Mat;

/// Options for [`power_iteration`].
#[derive(Clone, Copy, Debug)]
pub struct PowerIterationOptions {
    /// Maximum number of iterations before giving up and returning the
    /// current estimate.
    pub max_iter: usize,
    /// Relative tolerance on successive radius estimates.
    pub tol: f64,
    /// Seed for the deterministic start vector.
    pub seed: u64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        Self {
            max_iter: 1000,
            tol: 1e-10,
            seed: 0x5bd1_e995,
        }
    }
}

/// A tiny deterministic generator (SplitMix64) for start vectors; keeping it
/// internal avoids a `rand` dependency in this leaf crate and makes spectral
/// estimates reproducible across runs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_unit_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    let mut v: Vec<f64> = (0..n)
        .map(|_| (splitmix64(&mut state) as f64 / u64::MAX as f64) - 0.5)
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    } else {
        v[0] = 1.0;
    }
    v
}

/// The power-method operator: normalize-and-apply with a *relative*
/// stopping rule on successive radius estimates — expressed through the
/// unified [`FixedPointSolver`] driver, with the relative policy (and the
/// kernel/overflow special cases) reported via the operator verdict.
struct PowerIterationOp<'a, F> {
    apply: &'a mut F,
    x: Vec<f64>,
    y: Vec<f64>,
    estimate: f64,
    tol: f64,
    /// Short-circuit value for the degenerate cases (zero operator → 0,
    /// overflow → ∞); `None` means the run ended by budget or tolerance.
    early: Option<f64>,
}

impl<F: FnMut(&[f64], &mut [f64])> FixedPointOp for PowerIterationOp<'_, F> {
    fn step(&mut self, _solver: &FixedPointSolver, _iteration: usize) -> StepOutcome {
        (self.apply)(&self.x, &mut self.y);
        let norm = self.y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            // x lies in the kernel; the operators this serves are
            // symmetric, so the kernel-orthogonal start vector makes this
            // mean the operator annihilates everything.
            self.early = Some(0.0);
            return StepOutcome::converged(0.0);
        }
        if !norm.is_finite() {
            self.early = Some(f64::INFINITY);
            return StepOutcome::diverged(f64::INFINITY);
        }
        let next = norm; // ||M x|| with ||x|| = 1 → converges to ρ(M)
        self.y.iter_mut().for_each(|v| *v /= norm);
        std::mem::swap(&mut self.x, &mut self.y);
        let delta = (next - self.estimate).abs();
        let done = delta <= self.tol * next.max(1e-300);
        self.estimate = next;
        if done {
            StepOutcome::converged(delta)
        } else {
            StepOutcome::proceed(delta)
        }
    }
}

/// Estimates the spectral radius of a (symmetric) linear operator given only
/// its action `apply(x, out)` (must set `out = M·x`).
///
/// Returns `0.0` for the zero operator / empty dimension. For symmetric
/// operators convergence is geometric in `(|λ₂|/|λ₁|)²` on the norm ratio;
/// the default options are ample for the graph spectra in this workspace.
pub fn power_iteration(
    n: usize,
    mut apply: impl FnMut(&[f64], &mut [f64]),
    opts: PowerIterationOptions,
) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut op = PowerIterationOp {
        apply: &mut apply,
        x: random_unit_vector(n, opts.seed),
        y: vec![0.0; n],
        estimate: 0.0,
        tol: opts.tol,
        early: None,
    };
    // tol = 0 at the solver level: the stopping rule is *relative*, which
    // the operator implements itself via its verdict.
    FixedPointSolver::new(opts.max_iter, 0.0).run(&mut op);
    op.early.unwrap_or(op.estimate)
}

/// All eigenvalues of a small symmetric matrix via the cyclic Jacobi
/// rotation method. Deterministic, `O(k³)` per sweep, converges in a handful
/// of sweeps for the `k ≤ 16` matrices we care about.
///
/// # Panics
/// Panics if `m` is not square.
pub fn symmetric_eigenvalues(m: &Mat) -> Vec<f64> {
    assert!(
        m.is_square(),
        "symmetric_eigenvalues requires a square matrix"
    );
    let n = m.rows();
    if n == 0 {
        return Vec::new();
    }
    let mut a = m.clone();
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass; stop when negligible relative to diagonal.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[(p, q)] * a[(p, q)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frob_diag(&a)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the Givens rotation J(p,q,θ)ᵀ A J(p,q,θ).
                for i in 0..n {
                    let aip = a[(i, p)];
                    let aiq = a[(i, q)];
                    a[(i, p)] = c * aip - s * aiq;
                    a[(i, q)] = s * aip + c * aiq;
                }
                for i in 0..n {
                    let api = a[(p, i)];
                    let aqi = a[(q, i)];
                    a[(p, i)] = c * api - s * aqi;
                    a[(q, i)] = s * api + c * aqi;
                }
            }
        }
    }
    (0..n).map(|i| a[(i, i)]).collect()
}

fn frob_diag(a: &Mat) -> f64 {
    (0..a.rows())
        .map(|i| a[(i, i)] * a[(i, i)])
        .sum::<f64>()
        .sqrt()
}

/// Spectral radius (max |eigenvalue|) of a small symmetric dense matrix.
pub fn spectral_radius_dense_symmetric(m: &Mat) -> f64 {
    symmetric_eigenvalues(m)
        .into_iter()
        .fold(0.0, |acc, l| acc.max(l.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -5.0]]);
        let mut eigs = symmetric_eigenvalues(&m);
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eigs[0] + 5.0).abs() < 1e-12);
        assert!((eigs[1] - 3.0).abs() < 1e-12);
        assert!((spectral_radius_dense_symmetric(&m) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_2x2_known_eigs() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let mut eigs = symmetric_eigenvalues(&m);
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-10);
        assert!((eigs[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_3x3_trace_preserved() {
        let m = Mat::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.5], &[-2.0, 0.5, -1.0]]);
        let eigs = symmetric_eigenvalues(&m);
        let trace: f64 = 4.0 + 2.0 - 1.0;
        assert!((eigs.iter().sum::<f64>() - trace).abs() < 1e-9);
        // Determinant check via product of eigenvalues.
        let det = 4.0 * (-2.0 - 0.25) - 1.0 * (-1.0 - (-1.0)) + (-2.0) * (0.5 + 4.0);
        assert!((eigs.iter().product::<f64>() - det).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let m = Mat::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.5], &[-2.0, 0.5, -1.0]]);
        let rho_jacobi = spectral_radius_dense_symmetric(&m);
        let rho_power = power_iteration(
            3,
            |x, out| {
                let y = m.matvec(x);
                out.copy_from_slice(&y);
            },
            PowerIterationOptions::default(),
        );
        assert!(
            (rho_jacobi - rho_power).abs() < 1e-6,
            "{rho_jacobi} vs {rho_power}"
        );
    }

    /// Path graph P3 adjacency has spectral radius sqrt(2); its spectrum is
    /// {−√2, 0, √2} — a ±λ pair, the hard case for naive power iteration.
    #[test]
    fn power_iteration_handles_plus_minus_pairs() {
        let m = Mat::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let rho = power_iteration(
            3,
            |x, out| out.copy_from_slice(&m.matvec(x)),
            PowerIterationOptions::default(),
        );
        assert!((rho - 2.0f64.sqrt()).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn power_iteration_zero_operator() {
        let rho = power_iteration(4, |_x, out| out.fill(0.0), PowerIterationOptions::default());
        assert_eq!(rho, 0.0);
    }

    #[test]
    fn power_iteration_empty_dimension() {
        let rho = power_iteration(0, |_x, _out| {}, PowerIterationOptions::default());
        assert_eq!(rho, 0.0);
    }

    /// C4 cycle: eigenvalues {2, 0, 0, −2}; ρ = 2 exactly.
    #[test]
    fn power_iteration_cycle_graph() {
        let m = Mat::from_rows(&[
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
        ]);
        let rho = power_iteration(
            4,
            |x, out| out.copy_from_slice(&m.matvec(x)),
            PowerIterationOptions::default(),
        );
        assert!((rho - 2.0).abs() < 1e-6, "rho = {rho}");
    }
}

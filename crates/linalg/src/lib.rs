#![warn(missing_docs)]

//! Dense linear-algebra kernels used throughout the LSBP workspace.
//!
//! This crate is deliberately small (its only dependency is the vendored
//! persistent-pool `rayon` subset): the paper's algorithms only need
//!
//! * a row-major dense matrix ([`Mat`]) for belief matrices (`n × k`) and
//!   coupling matrices (`k × k`),
//! * matrix norms (Frobenius, induced-1, induced-∞) for the sufficient
//!   convergence criteria of Lemma 9,
//! * a symmetric eigensolver (cyclic Jacobi) and power iteration for the
//!   exact spectral-radius criteria of Lemma 8,
//! * an LU solver for the closed-form solution of Proposition 7 on small
//!   systems,
//! * the standardization map ζ (z-scores) of Definition 11, and
//! * the unified fixed-point iteration driver ([`FixedPointSolver`])
//!   every iterative method in the workspace runs on.
//!
//! Everything is `f64`; the belief residuals the paper manipulates span many
//! orders of magnitude (εH sweeps down to 1e-8), so single precision would
//! reproduce the paper's round-off pathologies far too early.

pub mod eigen;
pub mod fixedpoint;
pub mod matrix;
pub mod norms;
pub mod parallel;
pub mod simd;
pub mod solve;
pub mod standardize;

pub use eigen::{
    power_iteration, spectral_radius_dense_symmetric, symmetric_eigenvalues, PowerIterationOptions,
};
pub use fixedpoint::{
    FixedPointOp, FixedPointSolver, IterationEvent, SolveOutcome, StepOutcome, StepStatus,
    ToleranceNorm,
};
pub use matrix::Mat;
pub use norms::{frobenius_norm, induced_1_norm, induced_inf_norm, min_submultiplicative_norm};
pub use parallel::{
    default_frontier, default_memory_budget, default_num_shards, even_ranges, parse_byte_size,
    weight_balanced_ranges, ParallelismConfig, MAX_SHARDS,
};
pub use solve::{lu_inverse, lu_solve, LuError};
pub use standardize::{mean, population_std, standardize};

//! Row-major dense matrix.
//!
//! [`Mat`] is the workhorse container for belief matrices (`n × k`, one row
//! per node) and coupling matrices (`k × k`). It stores data contiguously in
//! row-major order so that a node's belief vector is a contiguous slice —
//! the access pattern of every kernel in the workspace (SpMM walks rows).

use crate::parallel::ParallelismConfig;
use crate::simd::{axpy4, max_abs4, max_abs_diff4, SquaredDiffAccumulator};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure mapping `(row, col)` to a value.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows are ragged (different lengths).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows in Mat::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Mat::from_vec length mismatch");
        Self { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing vector (row-major).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Dense matrix product `self · other`, parallelized over output rows
    /// according to the process default ([`ParallelismConfig::default`]).
    ///
    /// Uses the classic ikj loop order so the inner loop streams over
    /// contiguous rows of `other` and the output.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        self.matmul_with(other, &ParallelismConfig::default())
    }

    /// [`Mat::matmul`] with an explicit execution configuration.
    pub fn matmul_with(&self, other: &Mat, cfg: &ParallelismConfig) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_into_with(other, &mut out, cfg);
        out
    }

    /// Dense product into a caller-provided output (overwrites `out`),
    /// avoiding the allocation of [`Mat::matmul`].
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        self.matmul_into_with(other, out, &ParallelismConfig::default());
    }

    /// [`Mat::matmul_into`] with an explicit execution configuration.
    ///
    /// Output rows are partitioned into contiguous blocks computed by
    /// independent tasks; each row's accumulation order equals the serial
    /// kernel's, so the result is bitwise identical for any thread count.
    pub fn matmul_into_with(&self, other: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.rows, self.rows, "matmul output rows");
        assert_eq!(out.cols, other.cols, "matmul output cols");
        let parts = cfg.partitions(self.rows * self.cols * other.cols);
        if parts <= 1 {
            self.matmul_rows(other, 0..self.rows, out.as_mut_slice());
            return;
        }
        let ranges = crate::parallel::even_ranges(self.rows, parts);
        let row_len = other.cols;
        let mut rest: &mut [f64] = out.as_mut_slice();
        cfg.pool().scope(|s| {
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * row_len);
                rest = tail;
                s.spawn(move || self.matmul_rows(other, range, chunk));
            }
        });
    }

    /// Serial ikj kernel over the row block `rows`, writing into `block`
    /// (the flat row-major storage of exactly those output rows). Shared
    /// verbatim by the serial path and every parallel task, which is what
    /// makes parallel results bitwise identical to serial ones. The inner
    /// axpy runs 4 lanes wide ([`axpy4`]) — each output element still
    /// receives its contributions in the same `k` order, so this is
    /// bitwise the scalar kernel.
    fn matmul_rows(&self, other: &Mat, rows: std::ops::Range<usize>, block: &mut [f64]) {
        let row_len = other.cols;
        block.iter_mut().for_each(|x| *x = 0.0);
        for i in rows.clone() {
            let a_row = self.row(i);
            let o_row = &mut block[(i - rows.start) * row_len..(i - rows.start + 1) * row_len];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                axpy4(a_ik, other.row(k), o_row);
            }
        }
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        self.zip_with(other, |a, b| a - b)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other` in place.
    pub fn sub_assign(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Writes `weights[r] · self.row(r)` into `out.row(r)` — the `D·B`
    /// fuse of the LinBP echo term (`D = diag(weights)`), allocation-free.
    ///
    /// # Panics
    /// Panics if shapes disagree or `weights.len() != self.rows()`.
    pub fn scaled_rows_into(&self, weights: &[f64], out: &mut Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (out.rows, out.cols),
            "scaled_rows_into shape mismatch"
        );
        assert_eq!(weights.len(), self.rows, "scaled_rows_into weights length");
        for (r, &w) in weights.iter().enumerate() {
            for (dst, &x) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *dst = w * x;
            }
        }
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Scales in place.
    pub fn scale_assign(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    fn zip_with(&self, other: &Mat, f: impl Fn(f64, f64) -> f64) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "element-wise op shape mismatch"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Largest absolute entry (the `max` norm); 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        max_abs4(&self.data)
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        self.max_abs_diff_with(other, &ParallelismConfig::default())
    }

    /// [`Mat::max_abs_diff`] with an explicit execution configuration.
    /// `max` is order-independent, so the parallel reduction returns the
    /// exact serial value.
    pub fn max_abs_diff_with(&self, other: &Mat, cfg: &ParallelismConfig) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff shape"
        );
        let parts = cfg.partitions(self.data.len());
        if parts <= 1 {
            return max_abs_diff4(&self.data, &other.data);
        }
        let ranges = crate::parallel::even_ranges(self.data.len(), parts);
        let mut partials = vec![0.0f64; ranges.len()];
        cfg.pool().scope(|s| {
            for (slot, range) in partials.iter_mut().zip(ranges) {
                s.spawn(move || {
                    *slot = max_abs_diff4(&self.data[range.clone()], &other.data[range]);
                });
            }
        });
        partials.into_iter().fold(0.0f64, f64::max)
    }

    /// Euclidean norm of the element-wise difference to `other`
    /// (`‖self − other‖₂` over the flat storage).
    ///
    /// Always accumulates in the canonical 4-lane order over the flat
    /// element stream ([`crate::simd`]): unlike the max-abs reduction, a
    /// floating-point sum is order-dependent, so one fixed order —
    /// independent of the thread count — is what keeps the L2 tolerance
    /// policy bitwise identical across `LSBP_THREADS` settings. One pass
    /// over `n·k` entries is negligible next to the SpMM it follows.
    pub fn l2_diff(&self, other: &Mat) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "l2_diff shape"
        );
        let mut acc = SquaredDiffAccumulator::new();
        acc.feed(&self.data, &other.data);
        acc.finish().sqrt()
    }

    /// [`Mat::l2_diff`] restricted to the column block `cols` — the
    /// per-query tolerance read-out of the batched solvers. The
    /// phase-carrying accumulator assigns every element the lane its
    /// position in the *block's* row-major stream dictates, i.e. exactly
    /// the lanes a single-query `n × k` [`Mat::l2_diff`] would use on the
    /// same values — batched L2 deltas stay bitwise equal to standalone
    /// ones.
    pub fn l2_diff_cols(&self, other: &Mat, cols: std::ops::Range<usize>) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "l2_diff_cols shape"
        );
        let mut acc = SquaredDiffAccumulator::new();
        for r in 0..self.rows {
            acc.feed(&self.row(r)[cols.clone()], &other.row(r)[cols.clone()]);
        }
        acc.finish().sqrt()
    }

    /// [`Mat::max_abs`] restricted to the column block `cols` — the
    /// per-query divergence guard of the batched solvers.
    pub fn max_abs_cols(&self, cols: std::ops::Range<usize>) -> f64 {
        let mut acc = 0.0f64;
        for r in 0..self.rows {
            acc = acc.max(max_abs4(&self.row(r)[cols.clone()]));
        }
        acc
    }

    /// `true` iff the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Vectorization `vec(X)`: stacks *columns* underneath each other
    /// (the convention of Proposition 7).
    pub fn vectorize(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.rows * self.cols);
        for c in 0..self.cols {
            for r in 0..self.rows {
                v.push(self[(r, c)]);
            }
        }
        v
    }

    /// Inverse of [`Mat::vectorize`]: rebuilds a `rows × cols` matrix from a
    /// column-stacked vector.
    ///
    /// # Panics
    /// Panics if `v.len() != rows * cols`.
    pub fn from_vectorized(rows: usize, cols: usize, v: &[f64]) -> Mat {
        assert_eq!(v.len(), rows * cols, "from_vectorized length mismatch");
        Mat::from_fn(rows, cols, |r, c| v[c * rows + r])
    }

    /// Kronecker product `self ⊗ other` (dense; for tests and the dense
    /// closed-form path on small systems only).
    pub fn kronecker(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let s = self[(i, j)];
                if s == 0.0 {
                    continue;
                }
                for p in 0..other.rows {
                    for q in 0..other.cols {
                        out[(i * other.rows + p, j * other.cols + q)] = s * other[(p, q)];
                    }
                }
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "Mat index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "Mat index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Mat::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(i.matmul(&m), m);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Mat::from_rows(&[&[1.0, 0.0, 2.0]]); // 1x3
        let b = Mat::from_rows(&[&[1.0], &[1.0], &[10.0]]); // 3x1
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 21.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = vec![5.0, -1.0];
        assert_eq!(a.matvec(&x), vec![3.0, 11.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b), Mat::from_rows(&[&[4.0, 1.0]]));
        assert_eq!(a.sub(&b), Mat::from_rows(&[&[-2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Mat::from_rows(&[&[2.0, 4.0]]));
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert!(c.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn symmetric_detection() {
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        let ns = Mat::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]);
        assert!(s.is_symmetric(0.0));
        assert!(!ns.is_symmetric(1e-9));
        assert!(ns.is_symmetric(1.0));
        assert!(!Mat::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn vectorize_stacks_columns() {
        let m = Mat::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]);
        assert_eq!(m.vectorize(), vec![1.0, 2.0, 3.0, 4.0]);
        let back = Mat::from_vectorized(2, 2, &m.vectorize());
        assert_eq!(back, m);
    }

    #[test]
    fn kronecker_2x2() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = a.kronecker(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k[(0, 1)], 5.0); // 1 * 5
        assert_eq!(k[(1, 0)], 6.0); // 1 * 6
        assert_eq!(k[(2, 3)], 4.0 * 5.0); // a[1,1] * b[0,1]
        assert_eq!(k[(3, 2)], 4.0 * 6.0); // a[1,1] * b[1,0]
        assert_eq!(k[(0, 3)], 2.0 * 5.0); // a[0,1] * b[0,1]
    }

    /// Roth's column lemma: vec(X·Y·Z) = (Zᵀ ⊗ X)·vec(Y). This identity is
    /// the bridge from the LinBP matrix equation to its Kronecker closed
    /// form (Proposition 7), so we check it on a concrete instance.
    #[test]
    fn roth_column_lemma() {
        let x = Mat::from_rows(&[&[1.0, 2.0], &[0.0, -1.0], &[3.0, 1.0]]); // 3x2
        let y = Mat::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, -1.0, 4.0]]); // 2x3
        let z = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[-1.0, 0.5]]); // 3x2
        let lhs = x.matmul(&y).matmul(&z).vectorize();
        let kron = z.transpose().kronecker(&x);
        let rhs = kron.matvec(&y.vectorize());
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn max_abs_and_diff() {
        let a = Mat::from_rows(&[&[1.0, -7.0], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 7.0);
        let b = Mat::from_rows(&[&[1.0, -7.0], &[3.0, 14.0]]);
        assert_eq!(a.max_abs_diff(&b), 10.0);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0]]);
        a.fill_zero();
        assert_eq!(a, Mat::zeros(1, 2));
    }

    /// Parallel matmul is bitwise identical to serial for every thread
    /// count (the min-work floor is forced to 1 so even this small input
    /// takes the parallel path).
    #[test]
    fn matmul_parallel_bitwise_identical() {
        let a = Mat::from_fn(37, 19, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.37 - 2.0);
        let b = Mat::from_fn(19, 23, |r, c| ((r * 5 + c * 11) % 17) as f64 * 0.21 - 1.5);
        let serial = a.matmul_with(&b, &ParallelismConfig::serial());
        for threads in [2, 3, 8] {
            let cfg = ParallelismConfig::with_threads(threads).with_min_work(1);
            assert_eq!(a.matmul_with(&b, &cfg), serial, "threads = {threads}");
            let mut into = Mat::from_fn(37, 23, |_, _| 99.0); // must be overwritten
            a.matmul_into_with(&b, &mut into, &cfg);
            assert_eq!(into, serial, "threads = {threads} (into)");
        }
    }

    #[test]
    fn max_abs_diff_parallel_matches_serial() {
        let a = Mat::from_fn(41, 7, |r, c| (r as f64 - c as f64) * 0.3);
        let b = Mat::from_fn(41, 7, |r, c| (r as f64 + c as f64) * 0.29);
        let serial = a.max_abs_diff_with(&b, &ParallelismConfig::serial());
        for threads in [2, 8] {
            let cfg = ParallelismConfig::with_threads(threads).with_min_work(1);
            let par = a.max_abs_diff_with(&b, &cfg);
            assert!(par.to_bits() == serial.to_bits(), "threads = {threads}");
        }
    }
}

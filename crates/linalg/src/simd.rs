//! 4-lane accumulation primitives — the canonical kernel order.
//!
//! Every hot inner loop in this workspace (SpMV/SpMM row accumulation,
//! dense matmul, norms, convergence read-outs) is written against the
//! helpers in this module instead of a plain sequential fold. Each helper
//! keeps **four independent accumulators** and walks its input with
//! `chunks_exact(4)` plus a scalar tail — a shape stable rustc reliably
//! auto-vectorizes to 256-bit SIMD (and, even where it stays scalar, one
//! that breaks the loop-carried dependency on a single accumulator into
//! four independent chains).
//!
//! # The canonical 4-lane order
//!
//! Reassociating a floating-point sum changes its rounding, so the lane
//! scheme below is the **single canonical accumulation order** of the
//! workspace — the serial reference and every parallel task use these
//! helpers identically, which is what preserves the repo's
//! bitwise-identical-across-thread-counts invariant:
//!
//! * element at stream position `p` accumulates into lane `p mod 4`
//!   (the tail of a non-multiple-of-4 stream lands in lanes `0..tail`);
//! * the four lanes reduce as `(l0 + l1) + (l2 + l3)`.
//!
//! Order-*independent* reductions (`max`) need no such convention but are
//! written in the same 4-lane shape for the vectorization win.
//!
//! [`SquaredDiffAccumulator`] additionally carries the stream phase
//! across `feed` calls, so a sum fed slice-by-slice (the per-query
//! column-block read-out of the batched solvers) lands every element in
//! exactly the lane a single flat pass would use — keeping batched L2
//! deltas bitwise equal to single-query ones.

/// How far ahead (in CSR entries) the gather loops hint the next reads
/// — see [`prefetch_read`]. 16 entries ≈ 4 chunks of the 4-lane body:
/// far enough that the line arrives before the lanes reach it, close
/// enough not to thrash the L1 fill buffers.
pub const GATHER_PREFETCH_DISTANCE: usize = 16;

/// Hints the CPU to pull `data[i..]` into cache ahead of a gather.
///
/// The gather loops (`gather_dot4`, the fused LinBP gathers) walk CSR
/// column indices whose targets the hardware prefetcher cannot predict;
/// issuing an explicit prefetch a fixed distance ahead overlaps the
/// memory latency with the current chunk's arithmetic. This is a pure
/// cache hint: it never faults, never changes data, and therefore never
/// changes a single result bit — out-of-range indices are simply
/// skipped. On targets without a stable prefetch intrinsic this is a
/// no-op (the scalar fallback the bitwise contract requires anyway).
#[inline(always)]
pub fn prefetch_read(data: &[f64], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < data.len() {
        // SAFETY: `i` is in bounds, and `_mm_prefetch` is a pure cache
        // hint with no memory side effects.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(i) as *const i8);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, i);
    }
}

/// `y[i] += a · x[i]` — the axpy inner loop of SpMM / dense matmul,
/// unrolled 4 wide. No reassociation happens here (each `y[i]` still
/// receives exactly one contribution per call), so this kernel is
/// bit-for-bit the scalar loop, only faster.
///
/// # Panics
/// Debug-asserts `x.len() == y.len()`.
#[inline]
pub fn axpy4(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy4 length mismatch");
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact_mut(4);
    for (xx, yy) in (&mut xc).zip(&mut yc) {
        for l in 0..4 {
            yy[l] += a * xx[l];
        }
    }
    for (xr, yr) in xc.remainder().iter().zip(yc.into_remainder()) {
        *yr += a * xr;
    }
}

/// Gathered dot product `Σ_p w[p] · x[idx[p]]` in the canonical 4-lane
/// order — the SpMV row kernel (`idx` = a CSR row's column indices).
///
/// # Panics
/// Debug-asserts `idx.len() == w.len()`; indexes `x` with ordinary
/// bounds checks (an out-of-range index is a clean panic, never UB).
#[inline]
pub fn gather_dot4(idx: &[u32], w: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(idx.len(), w.len(), "gather_dot4 length mismatch");
    let mut acc = [0.0f64; 4];
    let mut ic = idx.chunks_exact(4);
    let mut wc = w.chunks_exact(4);
    let mut p = 0;
    for (ii, ww) in (&mut ic).zip(&mut wc) {
        // Hint the chunk GATHER_PREFETCH_DISTANCE entries ahead while
        // this chunk's multiplies run (pure hint — no result change).
        if let Some(ahead) = idx.get(p + GATHER_PREFETCH_DISTANCE..p + GATHER_PREFETCH_DISTANCE + 4)
        {
            for &a in ahead {
                prefetch_read(x, a as usize);
            }
        }
        p += 4;
        for l in 0..4 {
            acc[l] += ww[l] * x[ii[l] as usize];
        }
    }
    for (l, (&i, &v)) in ic.remainder().iter().zip(wc.remainder()).enumerate() {
        acc[l] += v * x[i as usize];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `Σ x[p]` in the canonical 4-lane order.
#[inline]
pub fn sum4(x: &[f64]) -> f64 {
    fold4(x, |v| v)
}

/// `Σ |x[p]|` in the canonical 4-lane order.
#[inline]
pub fn sum_abs4(x: &[f64]) -> f64 {
    fold4(x, f64::abs)
}

/// `Σ x[p]²` in the canonical 4-lane order.
#[inline]
pub fn sum_sq4(x: &[f64]) -> f64 {
    fold4(x, |v| v * v)
}

#[inline]
fn fold4(x: &[f64], f: impl Fn(f64) -> f64) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut xc = x.chunks_exact(4);
    for xx in &mut xc {
        for l in 0..4 {
            acc[l] += f(xx[l]);
        }
    }
    for (l, &v) in xc.remainder().iter().enumerate() {
        acc[l] += f(v);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `max |x[p]|`, 4 lanes wide; 0.0 for an empty slice. `max` is
/// order-independent, so this equals the sequential fold bitwise.
#[inline]
pub fn max_abs4(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut xc = x.chunks_exact(4);
    for xx in &mut xc {
        for l in 0..4 {
            acc[l] = acc[l].max(xx[l].abs());
        }
    }
    let mut m = (acc[0].max(acc[1])).max(acc[2].max(acc[3]));
    for &v in xc.remainder() {
        m = m.max(v.abs());
    }
    m
}

/// `max |a[p] − b[p]|`, 4 lanes wide; 0.0 for empty slices. Equals the
/// sequential fold bitwise (`max` is order-independent).
///
/// # Panics
/// Debug-asserts `a.len() == b.len()`.
#[inline]
pub fn max_abs_diff4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "max_abs_diff4 length mismatch");
    let mut acc = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (aa, bb) in (&mut ac).zip(&mut bc) {
        for l in 0..4 {
            acc[l] = acc[l].max((aa[l] - bb[l]).abs());
        }
    }
    let mut m = (acc[0].max(acc[1])).max(acc[2].max(acc[3]));
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        m = m.max((x - y).abs());
    }
    m
}

/// Phase-carrying 4-lane accumulator for `Σ (a[p] − b[p])²`.
///
/// Lane assignment follows the **global stream position** across `feed`
/// calls: feeding one flat `n·k` slice pair, or the same values row by
/// row in `k`-sized pieces, produces bitwise identical sums. That
/// equivalence is what keeps the batched solvers' per-query L2 deltas
/// ([`crate::Mat::l2_diff_cols`], fed per row) bitwise equal to the
/// single-query read-out ([`crate::Mat::l2_diff`], fed once).
#[derive(Clone, Debug, Default)]
pub struct SquaredDiffAccumulator {
    lanes: [f64; 4],
    phase: usize,
}

impl SquaredDiffAccumulator {
    /// A fresh accumulator at stream position 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next stretch of the element stream.
    ///
    /// # Panics
    /// Debug-asserts `a.len() == b.len()`.
    pub fn feed(&mut self, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), b.len(), "SquaredDiffAccumulator length mismatch");
        let mut i = 0;
        // Realign to lane 0 so the vector body below starts on a chunk
        // boundary of the logical stream.
        while self.phase != 0 && i < a.len() {
            let d = a[i] - b[i];
            self.lanes[self.phase] += d * d;
            self.phase = (self.phase + 1) & 3;
            i += 1;
        }
        if self.phase != 0 {
            return; // slice exhausted mid-realign
        }
        let (a, b) = (&a[i..], &b[i..]);
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for (aa, bb) in (&mut ac).zip(&mut bc) {
            for l in 0..4 {
                let d = aa[l] - bb[l];
                self.lanes[l] += d * d;
            }
        }
        for (l, (&x, &y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
            let d = x - y;
            self.lanes[l] += d * d;
        }
        self.phase = ac.remainder().len(); // < 4 by construction
    }

    /// Reduces the lanes in the canonical `(l0 + l1) + (l2 + l3)` order.
    pub fn finish(&self) -> f64 {
        (self.lanes[0] + self.lanes[1]) + (self.lanes[2] + self.lanes[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical order, spelled out: lanes by position mod 4, reduced
    /// `(l0 + l1) + (l2 + l3)`, tail landing in the leading lanes.
    fn reference_sum(x: &[f64], f: impl Fn(f64) -> f64) -> f64 {
        let mut lanes = [0.0f64; 4];
        for (p, &v) in x.iter().enumerate() {
            lanes[p % 4] += f(v);
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    #[test]
    fn sums_match_the_documented_order_exactly() {
        // Values chosen so reassociation visibly changes the rounding:
        // any deviation from the documented order would flip low bits.
        let x: Vec<f64> = (0..23)
            .map(|i| (i as f64 * 0.7 - 5.0) * 10f64.powi((i % 7) - 3))
            .collect();
        for len in [0, 1, 3, 4, 5, 8, 11, 23] {
            let s = &x[..len];
            assert_eq!(sum4(s).to_bits(), reference_sum(s, |v| v).to_bits());
            assert_eq!(sum_abs4(s).to_bits(), reference_sum(s, f64::abs).to_bits());
            assert_eq!(sum_sq4(s).to_bits(), reference_sum(s, |v| v * v).to_bits());
        }
    }

    #[test]
    fn gather_dot_matches_reference_order() {
        let idx: Vec<u32> = [3u32, 0, 2, 5, 1, 4, 0].to_vec();
        let w: Vec<f64> = (0..7).map(|i| 0.3 * i as f64 - 0.9).collect();
        let x: Vec<f64> = (0..6).map(|i| 1.0 / (i as f64 + 0.7)).collect();
        let products: Vec<f64> = idx
            .iter()
            .zip(&w)
            .map(|(&c, &v)| v * x[c as usize])
            .collect();
        assert_eq!(
            gather_dot4(&idx, &w, &x).to_bits(),
            reference_sum(&products, |v| v).to_bits()
        );
    }

    #[test]
    fn axpy_is_bitwise_the_scalar_loop() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let mut y: Vec<f64> = (0..13).map(|i| (i as f64).cos()).collect();
        let mut expect = y.clone();
        for (e, &v) in expect.iter_mut().zip(&x) {
            *e += 1.37 * v;
        }
        axpy4(1.37, &x, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn max_helpers_match_sequential_folds() {
        let a: Vec<f64> = (0..19).map(|i| (i as f64 * 1.3).sin() * 5.0).collect();
        let b: Vec<f64> = (0..19).map(|i| (i as f64 * 0.9).cos() * 5.0).collect();
        let seq_abs = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let seq_diff = a
            .iter()
            .zip(&b)
            .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()));
        assert_eq!(max_abs4(&a).to_bits(), seq_abs.to_bits());
        assert_eq!(max_abs_diff4(&a, &b).to_bits(), seq_diff.to_bits());
        assert_eq!(max_abs4(&[]), 0.0);
        assert_eq!(max_abs_diff4(&[], &[]), 0.0);
    }

    /// Feeding the stream in arbitrary pieces equals feeding it flat —
    /// the phase carry that keeps batched L2 read-outs equal to
    /// single-query ones.
    #[test]
    fn squared_diff_accumulator_is_split_invariant() {
        let a: Vec<f64> = (0..31).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
        let b: Vec<f64> = (0..31).map(|i| (i as f64 * 0.37).cos() * 3.0).collect();
        let mut flat = SquaredDiffAccumulator::new();
        flat.feed(&a, &b);
        for piece in [1usize, 2, 3, 4, 5, 7] {
            let mut split = SquaredDiffAccumulator::new();
            for (ca, cb) in a.chunks(piece).zip(b.chunks(piece)) {
                split.feed(ca, cb);
            }
            assert_eq!(
                split.finish().to_bits(),
                flat.finish().to_bits(),
                "piece size {piece}"
            );
        }
    }

    #[test]
    fn squared_diff_accumulator_empty_feeds_are_noops() {
        let mut acc = SquaredDiffAccumulator::new();
        acc.feed(&[], &[]);
        assert_eq!(acc.finish(), 0.0);
        acc.feed(&[2.0], &[1.0]); // phase 1
        acc.feed(&[], &[]);
        acc.feed(&[1.0], &[2.0]); // phase 2
        assert_eq!(acc.finish(), 2.0);
    }
}

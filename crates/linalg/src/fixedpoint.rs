//! The unified fixed-point iteration driver.
//!
//! Every iterative method in this workspace — LinBP / LinBP\* updates,
//! BP message rounds, RWR power iterations, SBP's layer sweep, the
//! matrix-free power iteration behind the Lemma 8 spectral criteria, and
//! the batched multi-query solvers — is the same control skeleton: *apply
//! one update step, measure how much the state moved, decide whether to
//! stop*. [`FixedPointSolver`] owns that skeleton exactly once:
//!
//! * **iteration budget** (`max_iter`),
//! * **tolerance policy**: an absolute threshold `tol` under a choice of
//!   norm ([`ToleranceNorm::MaxAbs`] — the paper's convergence read-out —
//!   or [`ToleranceNorm::L2`]),
//! * **damping** `λ ∈ [0, 1)`: `state ← (1−λ)·new + λ·old`, applied by
//!   the operator (the blend point differs per method: per message for
//!   BP, per belief matrix for LinBP),
//! * a **divergence guard**: the run is declared divergent when the
//!   operator's [`FixedPointOp::magnitude`] exceeds `divergence_guard`
//!   (set it to `f64::INFINITY` to disable the magnitude check) or the
//!   step delta turns non-finite,
//! * a **per-iteration observer hook** ([`FixedPointSolver::run_observed`])
//!   for instrumentation — the Fig. 7d per-iteration timing harness hangs
//!   off this instead of hand-rolling its own loop.
//!
//! Operators implement [`FixedPointOp`]: one `step` that advances the
//! state and reports the step's delta. The *operator* owns all scratch
//! (double buffers, SpMM workspaces), allocated once at construction and
//! reused across iterations; the solver guarantees `step` is called at
//! most `max_iter` times, sequentially. An operator can also end the run
//! itself via [`StepStatus`] — the escape hatch for method-specific
//! policies (relative tolerances in power iteration, per-query masks in
//! the batched solvers) that the shared absolute-tolerance check cannot
//! express.

/// Which norm the solver's tolerance threshold is compared against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ToleranceNorm {
    /// Largest absolute entry change (L∞) — order-independent, so
    /// parallel reductions are bitwise identical to serial ones. The
    /// default, and the criterion every pre-solver loop in this workspace
    /// used.
    #[default]
    MaxAbs,
    /// Euclidean norm of the change (L2). Summation runs in fixed element
    /// order regardless of thread count, so this too is deterministic
    /// across `LSBP_THREADS` settings.
    L2,
}

/// Operator-side verdict attached to a step: whether the solver should
/// keep iterating or stop now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// Keep iterating; the solver applies its own guard/tolerance policy.
    Continue,
    /// The operator decided the run converged (e.g. a relative-tolerance
    /// policy, or every query of a batch froze).
    Converged,
    /// The operator decided the run diverged.
    Diverged,
}

/// What one [`FixedPointOp::step`] reports back to the solver.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// The step's delta in the solver's [`ToleranceNorm`] (what
    /// `final_delta` records and the tolerance check compares).
    pub delta: f64,
    /// Operator-side stop verdict; [`StepStatus::Continue`] defers to the
    /// solver's policy.
    pub status: StepStatus,
}

impl StepOutcome {
    /// A step that defers the stop decision to the solver.
    pub fn proceed(delta: f64) -> Self {
        StepOutcome {
            delta,
            status: StepStatus::Continue,
        }
    }

    /// A step after which the operator declares convergence.
    pub fn converged(delta: f64) -> Self {
        StepOutcome {
            delta,
            status: StepStatus::Converged,
        }
    }

    /// A step after which the operator declares divergence.
    pub fn diverged(delta: f64) -> Self {
        StepOutcome {
            delta,
            status: StepStatus::Diverged,
        }
    }
}

/// One fixed-point update operator: the method-specific step the solver
/// drives. The operator owns its state and scratch buffers.
pub trait FixedPointOp {
    /// Applies update round `iteration` (0-based) and reports the step's
    /// delta plus an optional operator-side stop verdict.
    fn step(&mut self, solver: &FixedPointSolver, iteration: usize) -> StepOutcome;

    /// Largest state magnitude, consulted by the divergence guard after
    /// each step. The default (0.0) never trips the guard — override it
    /// for methods with a meaningful blow-up signal (LinBP's belief
    /// magnitudes).
    fn magnitude(&self) -> f64 {
        0.0
    }
}

/// What the solver hands the per-iteration observer.
#[derive(Clone, Copy, Debug)]
pub struct IterationEvent {
    /// 1-based iteration count (equals `iterations` in the final
    /// [`SolveOutcome`] when this is the last event).
    pub iteration: usize,
    /// The step's delta (same value the tolerance policy saw).
    pub delta: f64,
}

/// How a [`FixedPointSolver::run`] ended.
#[derive(Clone, Copy, Debug)]
pub struct SolveOutcome {
    /// The tolerance policy (solver's or operator's) was met before the
    /// iteration budget ran out.
    pub converged: bool,
    /// The divergence guard tripped (or the operator declared
    /// divergence).
    pub diverged: bool,
    /// Update rounds executed.
    pub iterations: usize,
    /// Delta of the final round (∞ when no round ran).
    pub final_delta: f64,
}

/// The iteration driver: budget, tolerance policy, damping factor and
/// divergence guard for a fixed-point computation. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct FixedPointSolver {
    /// Maximum number of update rounds.
    pub max_iter: usize,
    /// Absolute convergence threshold on the step delta; `0.0` disables
    /// the check (timing mode: exactly `max_iter` rounds unless the guard
    /// trips or the operator stops the run).
    pub tol: f64,
    /// Norm the delta is measured in.
    pub norm: ToleranceNorm,
    /// Damping factor `λ ∈ [0, 1)`, applied by operators that support it
    /// (`0.0` = undamped updates).
    pub damping: f64,
    /// Magnitude beyond which the run is declared divergent;
    /// `f64::INFINITY` disables the magnitude check (a non-finite step
    /// delta still stops the run).
    pub divergence_guard: f64,
}

impl FixedPointSolver {
    /// A solver with the given budget and absolute tolerance, max-abs
    /// norm, no damping, and no magnitude guard.
    pub fn new(max_iter: usize, tol: f64) -> Self {
        FixedPointSolver {
            max_iter,
            tol,
            norm: ToleranceNorm::MaxAbs,
            damping: 0.0,
            divergence_guard: f64::INFINITY,
        }
    }

    /// Sets the tolerance norm.
    pub fn with_norm(mut self, norm: ToleranceNorm) -> Self {
        self.norm = norm;
        self
    }

    /// Sets the damping factor.
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }

    /// Sets the divergence guard.
    pub fn with_divergence_guard(mut self, guard: f64) -> Self {
        self.divergence_guard = guard;
        self
    }

    /// Drives `op` to a fixed point. Equivalent to
    /// [`FixedPointSolver::run_observed`] with a no-op observer.
    pub fn run(&self, op: &mut impl FixedPointOp) -> SolveOutcome {
        self.run_observed(op, |_| {})
    }

    /// Drives `op` to a fixed point, invoking `observer` after every
    /// step (before the stop checks) — the instrumentation hook for
    /// per-iteration timing and convergence traces.
    ///
    /// Per iteration, in order: `op.step`, observer, operator verdict,
    /// divergence guard (`magnitude > divergence_guard` when the guard is
    /// finite, or a non-finite delta), tolerance check
    /// (`tol > 0 && delta < tol`).
    pub fn run_observed(
        &self,
        op: &mut impl FixedPointOp,
        mut observer: impl FnMut(&IterationEvent),
    ) -> SolveOutcome {
        let mut out = SolveOutcome {
            converged: false,
            diverged: false,
            iterations: 0,
            final_delta: f64::INFINITY,
        };
        for iteration in 0..self.max_iter {
            out.iterations += 1;
            let step = op.step(self, iteration);
            out.final_delta = step.delta;
            observer(&IterationEvent {
                iteration: out.iterations,
                delta: step.delta,
            });
            match step.status {
                StepStatus::Converged => {
                    out.converged = true;
                    break;
                }
                StepStatus::Diverged => {
                    out.diverged = true;
                    break;
                }
                StepStatus::Continue => {}
            }
            if (self.divergence_guard.is_finite() && op.magnitude() > self.divergence_guard)
                || !step.delta.is_finite()
            {
                out.diverged = true;
                break;
            }
            if self.tol > 0.0 && step.delta < self.tol {
                out.converged = true;
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar contraction x ← c·x + 1 with fixed point 1/(1−c).
    struct Contraction {
        x: f64,
        c: f64,
    }

    impl FixedPointOp for Contraction {
        fn step(&mut self, _solver: &FixedPointSolver, _iteration: usize) -> StepOutcome {
            let next = self.c * self.x + 1.0;
            let delta = (next - self.x).abs();
            self.x = next;
            StepOutcome::proceed(delta)
        }

        fn magnitude(&self) -> f64 {
            self.x.abs()
        }
    }

    #[test]
    fn contraction_converges() {
        let mut op = Contraction { x: 0.0, c: 0.5 };
        let outcome = FixedPointSolver::new(1000, 1e-12).run(&mut op);
        assert!(outcome.converged && !outcome.diverged);
        assert!((op.x - 2.0).abs() < 1e-11);
        assert!(outcome.iterations < 1000);
        assert!(outcome.final_delta < 1e-12);
    }

    #[test]
    fn timing_mode_runs_full_budget() {
        let mut op = Contraction { x: 0.0, c: 0.5 };
        let outcome = FixedPointSolver::new(7, 0.0).run(&mut op);
        assert_eq!(outcome.iterations, 7);
        assert!(!outcome.converged);
    }

    #[test]
    fn divergence_guard_trips() {
        let mut op = Contraction { x: 1.0, c: 3.0 };
        let outcome = FixedPointSolver::new(1000, 1e-12)
            .with_divergence_guard(1e6)
            .run(&mut op);
        assert!(outcome.diverged && !outcome.converged);
        assert!(outcome.iterations < 1000);
    }

    #[test]
    fn nan_delta_stops_even_without_guard() {
        struct NanOp;
        impl FixedPointOp for NanOp {
            fn step(&mut self, _: &FixedPointSolver, _: usize) -> StepOutcome {
                StepOutcome::proceed(f64::NAN)
            }
        }
        let outcome = FixedPointSolver::new(100, 0.0).run(&mut NanOp);
        assert!(outcome.diverged);
        assert_eq!(outcome.iterations, 1);
    }

    #[test]
    fn operator_verdict_overrides_policy() {
        struct StopAt(usize);
        impl FixedPointOp for StopAt {
            fn step(&mut self, _: &FixedPointSolver, iteration: usize) -> StepOutcome {
                if iteration + 1 == self.0 {
                    StepOutcome::converged(0.25)
                } else {
                    StepOutcome::proceed(1.0)
                }
            }
        }
        let outcome = FixedPointSolver::new(100, 0.0).run(&mut StopAt(5));
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 5);
        assert_eq!(outcome.final_delta, 0.25);
    }

    #[test]
    fn observer_sees_every_iteration() {
        let mut op = Contraction { x: 0.0, c: 0.5 };
        let mut events = Vec::new();
        let outcome = FixedPointSolver::new(4, 0.0).run_observed(&mut op, |e| {
            events.push((e.iteration, e.delta));
        });
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].0, 1);
        assert_eq!(events[3].0, outcome.iterations);
        assert_eq!(events[3].1, outcome.final_delta);
    }

    #[test]
    fn empty_budget() {
        let mut op = Contraction { x: 0.0, c: 0.5 };
        let outcome = FixedPointSolver::new(0, 1e-9).run(&mut op);
        assert_eq!(outcome.iterations, 0);
        assert!(!outcome.converged && !outcome.diverged);
        assert_eq!(outcome.final_delta, f64::INFINITY);
    }
}

//! Parallel-execution configuration shared by every compute crate.
//!
//! [`ParallelismConfig`] is the single knob the kernels take: a thread
//! count (1 = strictly serial) plus a minimum-work floor below which a
//! kernel stays serial regardless (spawning scoped threads for a 10-entry
//! SpMV would cost orders of magnitude more than the multiply).
//!
//! **Determinism guarantee.** Every parallel kernel in this workspace
//! partitions its *output* into disjoint contiguous regions and computes
//! each region with exactly the serial code, preserving each output
//! element's accumulation order. Results are therefore bitwise identical
//! for every thread count — `LSBP_THREADS=8` reproduces `LSBP_THREADS=1`
//! to the last ulp. Reductions (max-norms, convergence deltas) only ever
//! combine partial results with order-independent operations (`max`).

use std::ops::Range;
use std::sync::OnceLock;

/// Number of task partitions handed to the pool per worker thread; mild
/// oversubscription lets the shared task queue balance uneven partitions.
const PARTS_PER_THREAD: usize = 2;

/// Upper bound on the shard-count knob — a fat-finger guard, not a design
/// limit (a shard is a row range, so more shards than rows just collapses
/// to single-row shards).
pub const MAX_SHARDS: usize = 65_536;

/// Parses an `LSBP_SHARDS` override. Returns the shard count to use plus
/// a warning to surface when the variable was set but unusable (fell back
/// to 1) or above [`MAX_SHARDS`] (clamped). A silently-ignored typo here
/// is a silent 1-shard run — the warning names the variable, the rejected
/// value, and the fallback so misconfiguration is visible exactly once.
pub(crate) fn parse_shards_env(value: Option<&str>) -> (usize, Option<String>) {
    let Some(raw) = value else { return (1, None) };
    match raw.trim().parse::<usize>() {
        Ok(s) if (1..=MAX_SHARDS).contains(&s) => (s, None),
        Ok(s) if s > MAX_SHARDS => (
            MAX_SHARDS,
            Some(format!(
                "lsbp: LSBP_SHARDS={raw:?} exceeds the maximum of {MAX_SHARDS}; \
                 clamping to {MAX_SHARDS}"
            )),
        ),
        _ => (
            1,
            Some(format!(
                "lsbp: ignoring invalid LSBP_SHARDS={raw:?} (expected an integer in \
                 1..={MAX_SHARDS}); falling back to 1 shard"
            )),
        ),
    }
}

/// The process-default shard count: `LSBP_SHARDS` if set to a positive
/// integer, otherwise 1 (monolithic storage). Parsed exactly once per
/// process, mirroring how `LSBP_THREADS` is handled by the pool runtime;
/// a set-but-invalid value emits a one-time stderr warning naming the
/// variable and the fallback instead of being silently swallowed.
pub fn default_num_shards() -> usize {
    static DEFAULT_SHARDS: OnceLock<usize> = OnceLock::new();
    *DEFAULT_SHARDS.get_or_init(|| {
        let (shards, warning) = parse_shards_env(std::env::var("LSBP_SHARDS").ok().as_deref());
        if let Some(message) = warning {
            eprintln!("{message}");
        }
        shards
    })
}

/// Default minimum per-kernel work (≈ flops or touched entries) before a
/// kernel goes parallel. The pool spawns scoped OS threads per parallel
/// region (~tens of µs), so the floor is set where one region's compute
/// (~tens of µs at ~1 ns/unit) comfortably exceeds that overhead —
/// kernels in per-iteration hot loops (power iteration, LinBP/BP rounds)
/// must never be slower than the serial code they replaced.
pub const PAR_MIN_WORK: usize = 65_536;

/// How a kernel should execute: how many threads, how much work it
/// takes before threading is worth it, and how many row-range shards the
/// graph storage should be partitioned into (1 = monolithic). Copyable
/// and cheap — carried by value inside options structs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    threads: usize,
    min_work: usize,
    shards: usize,
}

impl ParallelismConfig {
    /// Strictly serial execution (the reference semantics): one thread,
    /// monolithic storage.
    pub const fn serial() -> Self {
        Self {
            threads: 1,
            min_work: PAR_MIN_WORK,
            shards: 1,
        }
    }

    /// Pooled execution on `threads` workers (1 = serial), monolithic
    /// storage.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        Self {
            threads: threads.min(rayon::MAX_THREADS),
            min_work: PAR_MIN_WORK,
            shards: 1,
        }
    }

    /// The environment default: `LSBP_THREADS` if set, otherwise the
    /// machine's available parallelism, and `LSBP_SHARDS` shards
    /// (default 1 = monolithic). The environment is parsed exactly once
    /// per process, at pool initialization (see
    /// `rayon::default_num_threads`) and on the first shard-count read
    /// ([`default_num_shards`]); this call just reads the cached values.
    ///
    /// Tests that must not depend on the ambient `LSBP_THREADS` have two
    /// documented overrides: construct an explicit config with
    /// [`ParallelismConfig::with_threads`] (per call site), or pin the
    /// process default before anything reads it with
    /// `rayon::set_default_num_threads` (per process — each cargo
    /// integration-test binary is its own process).
    pub fn from_env() -> Self {
        Self {
            threads: rayon::default_num_threads(),
            min_work: PAR_MIN_WORK,
            shards: default_num_shards(),
        }
    }

    /// Overrides the minimum-work floor (testing/benchmark hook: `1`
    /// forces even tiny kernels through the parallel code path).
    pub fn with_min_work(mut self, min_work: usize) -> Self {
        self.min_work = min_work.max(1);
        self
    }

    /// Sets the number of row-range shards the propagation engines should
    /// split graph storage into: 1 (the default everywhere but
    /// `LSBP_SHARDS`-configured environments) keeps the monolithic CSR
    /// path; larger values make the `CsrMatrix`-taking entry points
    /// re-shard the adjacency into that many nnz-balanced row-range
    /// blocks (`lsbp_sparse::ShardedCsr`) before solving. Results are
    /// bitwise identical at every shard count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards.min(MAX_SHARDS);
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured minimum-work floor. A floor of `1` is the
    /// documented "force the parallel code path" test/benchmark hook
    /// (see [`ParallelismConfig::with_min_work`]); profitability
    /// heuristics that would otherwise refuse to split (e.g. the CSR
    /// transpose rescan clamp) honor that intent by skipping the clamp.
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// Configured shard count (1 = monolithic storage).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// `true` iff this config never spawns threads.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// The persistent thread pool for this configuration. Pools are
    /// process-shared and cached per thread count (the default count maps
    /// to the lazily-initialized global pool), so per-kernel calls reuse
    /// long-lived parked workers — dispatching a parallel region wakes
    /// residents instead of spawning OS threads.
    pub fn pool(&self) -> rayon::ThreadPool {
        rayon::shared_pool(self.threads)
    }

    /// Number of partitions a kernel with `total_work` units should split
    /// into: 1 (serial) when the config is serial or the work is below
    /// twice the floor, otherwise up to [`PARTS_PER_THREAD`] tasks per
    /// worker, never so many that a partition drops under the floor.
    pub fn partitions(&self, total_work: usize) -> usize {
        if self.threads <= 1 || total_work < 2 * self.min_work {
            return 1;
        }
        (total_work / self.min_work)
            .min(self.threads * PARTS_PER_THREAD)
            .max(1)
    }
}

impl Default for ParallelismConfig {
    /// Defaults to [`ParallelismConfig::from_env`] — kernels called
    /// through their plain (non-`_with`) entry points follow
    /// `LSBP_THREADS`.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length. Empty ranges are dropped, so fewer than `parts` ranges come
/// back when `n < parts`.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        // u128 product: `n * (i + 1)` overflows usize for huge `n`,
        // silently mis-partitioning (or panicking in debug).
        let end = (n as u128 * (i as u128 + 1) / parts as u128) as usize;
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if out.is_empty() && n > 0 {
        out.push(0..n);
    }
    out
}

/// Splits `0..cum.len()-1` items into at most `parts` contiguous ranges of
/// near-equal *weight*, where `cum` is the cumulative weight array
/// (`cum[0] == 0`, `cum[i+1] - cum[i]` = weight of item `i` — exactly the
/// shape of a CSR `row_ptr`). This is the nnz-balanced row partitioner
/// behind the sparse kernels: a range of hub rows ends up with as many
/// stored entries as a long range of leaf rows.
pub fn weight_balanced_ranges(cum: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(!cum.is_empty(), "cumulative weights need a leading 0");
    let n = cum.len() - 1;
    let total = cum[n];
    if total == 0 || parts <= 1 {
        return even_ranges(n, parts);
    }
    let mut out = Vec::with_capacity(parts.min(n.max(1)));
    let mut start = 0;
    for i in 0..parts {
        // First index whose prefix weight reaches the i+1-th share.
        let target = (total as u128 * (i as u128 + 1) / parts as u128) as usize;
        let end = if i + 1 == parts {
            n
        } else {
            cum.partition_point(|&w| w < target).min(n).max(start)
        };
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if start < n {
        out.push(start..n);
    }
    if out.is_empty() && n > 0 {
        out.push(0..n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_never_partitions() {
        let cfg = ParallelismConfig::serial();
        assert!(cfg.is_serial());
        assert_eq!(cfg.partitions(usize::MAX / 4), 1);
    }

    #[test]
    fn partitions_respect_floor_and_cap() {
        let cfg = ParallelismConfig::with_threads(4);
        assert_eq!(cfg.partitions(0), 1);
        assert_eq!(cfg.partitions(PAR_MIN_WORK), 1); // below 2× floor
        assert_eq!(cfg.partitions(PAR_MIN_WORK * 2), 2);
        assert_eq!(cfg.partitions(PAR_MIN_WORK * 100), 8); // 4 threads × 2
        let forced = cfg.with_min_work(1);
        assert_eq!(forced.partitions(3), 3);
        assert_eq!(forced.partitions(1000), 8);
    }

    #[test]
    fn even_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 40] {
                let ranges = even_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn weight_balanced_ranges_cover_and_balance() {
        // 6 items with weights 10, 0, 0, 10, 1, 1 (cum = prefix sums).
        let cum = [0usize, 10, 10, 10, 20, 21, 22];
        for parts in [1usize, 2, 3, 6, 10] {
            let ranges = weight_balanced_ranges(&cum, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, 6);
        }
        // Two parts should split the two heavy items apart.
        let two = weight_balanced_ranges(&cum, 2);
        assert_eq!(two.len(), 2);
        assert!(two[0].end >= 1 && two[0].end <= 4);
    }

    #[test]
    fn weight_balanced_all_zero_falls_back_to_even() {
        let cum = [0usize, 0, 0, 0, 0];
        let ranges = weight_balanced_ranges(&cum, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 0..2);
        assert_eq!(ranges[1], 2..4);
    }

    #[test]
    fn default_follows_env_machinery() {
        let cfg = ParallelismConfig::default();
        assert_eq!(cfg.threads(), rayon::default_num_threads());
        assert_eq!(cfg.shards(), default_num_shards());
    }

    #[test]
    fn shard_knob_defaults_and_clamps() {
        assert_eq!(ParallelismConfig::serial().shards(), 1);
        assert_eq!(ParallelismConfig::with_threads(4).shards(), 1);
        let cfg = ParallelismConfig::serial().with_shards(8);
        assert_eq!(cfg.shards(), 8);
        assert_eq!(
            ParallelismConfig::serial().with_shards(usize::MAX).shards(),
            MAX_SHARDS
        );
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = ParallelismConfig::serial().with_shards(0);
    }

    #[test]
    fn parse_shards_env_rules() {
        // Usable values parse silently.
        assert_eq!(parse_shards_env(None), (1, None));
        assert_eq!(parse_shards_env(Some("1")), (1, None));
        assert_eq!(parse_shards_env(Some(" 16 ")), (16, None));
        assert_eq!(parse_shards_env(Some("65536")), (MAX_SHARDS, None));
        // Set-but-unusable values fall back to 1 AND warn, naming the
        // variable, the rejected value, and the fallback.
        for bad in ["abc", "0", "-3", "", "1.5"] {
            let (shards, warning) = parse_shards_env(Some(bad));
            assert_eq!(shards, 1, "LSBP_SHARDS={bad:?} must fall back to 1");
            let warning = warning.expect("invalid value must warn");
            assert!(
                warning.contains("LSBP_SHARDS"),
                "warning names the variable"
            );
            assert!(warning.contains(bad), "warning echoes the rejected value");
            assert!(
                warning.contains("falling back to 1"),
                "warning names the fallback"
            );
        }
        // Above the cap: clamped, with a warning saying so.
        let (shards, warning) = parse_shards_env(Some("99999999"));
        assert_eq!(shards, MAX_SHARDS);
        assert!(warning.expect("clamp must warn").contains("clamping"));
    }
}

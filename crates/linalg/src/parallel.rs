//! Parallel-execution configuration shared by every compute crate.
//!
//! [`ParallelismConfig`] is the single knob the kernels take: a thread
//! count (1 = strictly serial) plus a minimum-work floor below which a
//! kernel stays serial regardless (spawning scoped threads for a 10-entry
//! SpMV would cost orders of magnitude more than the multiply).
//!
//! **Determinism guarantee.** Every parallel kernel in this workspace
//! partitions its *output* into disjoint contiguous regions and computes
//! each region with exactly the serial code, preserving each output
//! element's accumulation order. Results are therefore bitwise identical
//! for every thread count — `LSBP_THREADS=8` reproduces `LSBP_THREADS=1`
//! to the last ulp. Reductions (max-norms, convergence deltas) only ever
//! combine partial results with order-independent operations (`max`).

use std::ops::Range;
use std::sync::OnceLock;

/// Number of task partitions handed to the pool per worker thread; mild
/// oversubscription lets the shared task queue balance uneven partitions.
const PARTS_PER_THREAD: usize = 2;

/// Upper bound on the shard-count knob — a fat-finger guard, not a design
/// limit (a shard is a row range, so more shards than rows just collapses
/// to single-row shards).
pub const MAX_SHARDS: usize = 65_536;

/// Parses an `LSBP_SHARDS` override. Returns the shard count to use plus
/// a warning to surface when the variable was set but unusable (fell back
/// to 1) or above [`MAX_SHARDS`] (clamped). A silently-ignored typo here
/// is a silent 1-shard run — the warning names the variable, the rejected
/// value, and the fallback so misconfiguration is visible exactly once.
pub(crate) fn parse_shards_env(value: Option<&str>) -> (usize, Option<String>) {
    let Some(raw) = value else { return (1, None) };
    match raw.trim().parse::<usize>() {
        Ok(s) if (1..=MAX_SHARDS).contains(&s) => (s, None),
        Ok(s) if s > MAX_SHARDS => (
            MAX_SHARDS,
            Some(format!(
                "lsbp: LSBP_SHARDS={raw:?} exceeds the maximum of {MAX_SHARDS}; \
                 clamping to {MAX_SHARDS}"
            )),
        ),
        _ => (
            1,
            Some(format!(
                "lsbp: ignoring invalid LSBP_SHARDS={raw:?} (expected an integer in \
                 1..={MAX_SHARDS}); falling back to 1 shard"
            )),
        ),
    }
}

/// The process-default shard count: `LSBP_SHARDS` if set to a positive
/// integer, otherwise 1 (monolithic storage). Parsed exactly once per
/// process, mirroring how `LSBP_THREADS` is handled by the pool runtime;
/// a set-but-invalid value emits a one-time stderr warning naming the
/// variable and the fallback instead of being silently swallowed.
pub fn default_num_shards() -> usize {
    static DEFAULT_SHARDS: OnceLock<usize> = OnceLock::new();
    *DEFAULT_SHARDS.get_or_init(|| {
        let (shards, warning) = parse_shards_env(std::env::var("LSBP_SHARDS").ok().as_deref());
        if let Some(message) = warning {
            eprintln!("{message}");
        }
        shards
    })
}

/// Parses a byte-size string: a non-negative integer with an optional
/// `K`/`M`/`G`/`T` suffix (case-insensitive, binary multiples, optional
/// trailing `B` as in `64KB`). Returns `None` on anything else. Shared
/// by the `LSBP_MEMORY_BUDGET` environment parse and the server's
/// `--memory-budget` flag.
pub fn parse_byte_size(raw: &str) -> Option<usize> {
    let s = raw.trim();
    if s.is_empty() {
        return None;
    }
    let upper = s.to_ascii_uppercase();
    let body = upper.strip_suffix('B').unwrap_or(&upper);
    let (digits, shift) = match body.as_bytes().last()? {
        b'K' => (&body[..body.len() - 1], 10u32),
        b'M' => (&body[..body.len() - 1], 20),
        b'G' => (&body[..body.len() - 1], 30),
        b'T' => (&body[..body.len() - 1], 40),
        b'0'..=b'9' => (body, 0),
        _ => return None,
    };
    let base: usize = digits.trim().parse().ok()?;
    base.checked_shl(shift).filter(|v| v >> shift == base)
}

/// Parses an `LSBP_MEMORY_BUDGET` override. Returns the budget in bytes
/// (0 = unbudgeted) plus a warning to surface when the variable was set
/// but unusable — same discipline as [`parse_shards_env`]: a silently
/// swallowed typo here would be a silently unbudgeted run.
pub(crate) fn parse_memory_budget_env(value: Option<&str>) -> (usize, Option<String>) {
    let Some(raw) = value else { return (0, None) };
    match parse_byte_size(raw) {
        Some(bytes) if bytes > 0 => (bytes, None),
        _ => (
            0,
            Some(format!(
                "lsbp: ignoring invalid LSBP_MEMORY_BUDGET={raw:?} (expected a positive \
                 byte count, optionally suffixed K/M/G/T); running unbudgeted"
            )),
        ),
    }
}

/// The process-default pager memory budget in bytes (0 = unbudgeted):
/// `LSBP_MEMORY_BUDGET` if set to a usable byte size, otherwise 0.
/// Parsed exactly once per process like [`default_num_shards`]; a
/// set-but-invalid value emits a one-time stderr warning instead of
/// being silently swallowed.
pub fn default_memory_budget() -> usize {
    static DEFAULT_BUDGET: OnceLock<usize> = OnceLock::new();
    *DEFAULT_BUDGET.get_or_init(|| {
        let (bytes, warning) =
            parse_memory_budget_env(std::env::var("LSBP_MEMORY_BUDGET").ok().as_deref());
        if let Some(message) = warning {
            eprintln!("{message}");
        }
        bytes
    })
}

/// Parses an `LSBP_FRONTIER` override. Accepts `on`/`1`/`true` and
/// `off`/`0`/`false` (case-insensitive); anything else keeps the default
/// (frontier on — skipping is bitwise-exact, so it is safe everywhere)
/// plus a warning, same discipline as [`parse_shards_env`].
pub(crate) fn parse_frontier_env(value: Option<&str>) -> (bool, Option<String>) {
    let Some(raw) = value else {
        return (true, None);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" => (true, None),
        "off" | "0" | "false" => (false, None),
        _ => (
            true,
            Some(format!(
                "lsbp: ignoring invalid LSBP_FRONTIER={raw:?} (expected on/off); \
                 frontier execution stays on"
            )),
        ),
    }
}

/// The process-default active-frontier switch: `LSBP_FRONTIER` if set to
/// `on`/`off` (default on — frontier skipping is bitwise identical to
/// full recomputation, so there is no correctness reason to disable it;
/// `off` is the escape hatch for perf A/B runs). Parsed exactly once per
/// process like [`default_num_shards`], with the same one-time warning on
/// a set-but-invalid value.
pub fn default_frontier() -> bool {
    static DEFAULT_FRONTIER: OnceLock<bool> = OnceLock::new();
    *DEFAULT_FRONTIER.get_or_init(|| {
        let (on, warning) = parse_frontier_env(std::env::var("LSBP_FRONTIER").ok().as_deref());
        if let Some(message) = warning {
            eprintln!("{message}");
        }
        on
    })
}

/// Default minimum per-kernel work (≈ flops or touched entries) before a
/// kernel goes parallel. The pool spawns scoped OS threads per parallel
/// region (~tens of µs), so the floor is set where one region's compute
/// (~tens of µs at ~1 ns/unit) comfortably exceeds that overhead —
/// kernels in per-iteration hot loops (power iteration, LinBP/BP rounds)
/// must never be slower than the serial code they replaced.
pub const PAR_MIN_WORK: usize = 65_536;

/// How a kernel should execute: how many threads, how much work it
/// takes before threading is worth it, and how many row-range shards the
/// graph storage should be partitioned into (1 = monolithic). Copyable
/// and cheap — carried by value inside options structs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    threads: usize,
    min_work: usize,
    shards: usize,
    /// Pager byte budget for paged (out-of-core) backends; 0 = unbudgeted.
    memory_budget: usize,
    /// Active-frontier execution in the fused LinBP path (bitwise-exact
    /// iteration skipping); `false` forces full recomputation.
    frontier: bool,
}

impl ParallelismConfig {
    /// Strictly serial execution (the reference semantics): one thread,
    /// monolithic storage, no memory budget.
    pub const fn serial() -> Self {
        Self {
            threads: 1,
            min_work: PAR_MIN_WORK,
            shards: 1,
            memory_budget: 0,
            frontier: true,
        }
    }

    /// Pooled execution on `threads` workers (1 = serial), monolithic
    /// storage, no memory budget.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        Self {
            threads: threads.min(rayon::MAX_THREADS),
            min_work: PAR_MIN_WORK,
            shards: 1,
            memory_budget: 0,
            frontier: true,
        }
    }

    /// The environment default: `LSBP_THREADS` if set, otherwise the
    /// machine's available parallelism, and `LSBP_SHARDS` shards
    /// (default 1 = monolithic). The environment is parsed exactly once
    /// per process, at pool initialization (see
    /// `rayon::default_num_threads`) and on the first shard-count read
    /// ([`default_num_shards`]); this call just reads the cached values.
    ///
    /// Tests that must not depend on the ambient `LSBP_THREADS` have two
    /// documented overrides: construct an explicit config with
    /// [`ParallelismConfig::with_threads`] (per call site), or pin the
    /// process default before anything reads it with
    /// `rayon::set_default_num_threads` (per process — each cargo
    /// integration-test binary is its own process).
    pub fn from_env() -> Self {
        Self {
            threads: rayon::default_num_threads(),
            min_work: PAR_MIN_WORK,
            shards: default_num_shards(),
            memory_budget: default_memory_budget(),
            frontier: default_frontier(),
        }
    }

    /// Overrides the minimum-work floor (testing/benchmark hook: `1`
    /// forces even tiny kernels through the parallel code path).
    pub fn with_min_work(mut self, min_work: usize) -> Self {
        self.min_work = min_work.max(1);
        self
    }

    /// Sets the number of row-range shards the propagation engines should
    /// split graph storage into: 1 (the default everywhere but
    /// `LSBP_SHARDS`-configured environments) keeps the monolithic CSR
    /// path; larger values make the `CsrMatrix`-taking entry points
    /// re-shard the adjacency into that many nnz-balanced row-range
    /// blocks (`lsbp_sparse::ShardedCsr`) before solving. Results are
    /// bitwise identical at every shard count.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards.min(MAX_SHARDS);
        self
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured minimum-work floor. A floor of `1` is the
    /// documented "force the parallel code path" test/benchmark hook
    /// (see [`ParallelismConfig::with_min_work`]); profitability
    /// heuristics that would otherwise refuse to split (e.g. the CSR
    /// transpose rescan clamp) honor that intent by skipping the clamp.
    pub fn min_work(&self) -> usize {
        self.min_work
    }

    /// Configured shard count (1 = monolithic storage).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the pager byte budget consulted by paged (out-of-core)
    /// storage backends (`lsbp_sparse::PagedCsr`): the target number of
    /// bytes of shard blocks kept resident in the buffer pool. `0`
    /// clears the budget (everything may stay resident). Resident
    /// backends ignore it — the budget caps the *pool*, not the solve's
    /// dense working set.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Configured pager byte budget, or `None` when unbudgeted. Follows
    /// `LSBP_MEMORY_BUDGET` for configs built by
    /// [`ParallelismConfig::from_env`] / [`ParallelismConfig::default`].
    pub fn memory_budget(&self) -> Option<usize> {
        (self.memory_budget > 0).then_some(self.memory_budget)
    }

    /// Enables or disables active-frontier execution of the fused LinBP
    /// path: per-iteration change tracking that skips rows whose inputs
    /// are bitwise unchanged. Default **on** (also via `LSBP_FRONTIER`
    /// for [`ParallelismConfig::from_env`] configs) — skipping is
    /// bitwise identical to full recomputation at any frontier × shard ×
    /// thread × budget combination, so `off` exists purely as a perf
    /// A/B escape hatch.
    pub fn with_frontier(mut self, on: bool) -> Self {
        self.frontier = on;
        self
    }

    /// Whether active-frontier execution is enabled (see
    /// [`ParallelismConfig::with_frontier`]).
    pub fn frontier(&self) -> bool {
        self.frontier
    }

    /// `true` iff this config never spawns threads.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// The persistent thread pool for this configuration. Pools are
    /// process-shared and cached per thread count (the default count maps
    /// to the lazily-initialized global pool), so per-kernel calls reuse
    /// long-lived parked workers — dispatching a parallel region wakes
    /// residents instead of spawning OS threads.
    pub fn pool(&self) -> rayon::ThreadPool {
        rayon::shared_pool(self.threads)
    }

    /// Number of partitions a kernel with `total_work` units should split
    /// into: 1 (serial) when the config is serial or the work is below
    /// twice the floor, otherwise up to [`PARTS_PER_THREAD`] tasks per
    /// worker, never so many that a partition drops under the floor.
    pub fn partitions(&self, total_work: usize) -> usize {
        if self.threads <= 1 || total_work < 2 * self.min_work {
            return 1;
        }
        (total_work / self.min_work)
            .min(self.threads * PARTS_PER_THREAD)
            .max(1)
    }
}

impl Default for ParallelismConfig {
    /// Defaults to [`ParallelismConfig::from_env`] — kernels called
    /// through their plain (non-`_with`) entry points follow
    /// `LSBP_THREADS`.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length. Empty ranges are dropped, so fewer than `parts` ranges come
/// back when `n < parts`.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        // u128 product: `n * (i + 1)` overflows usize for huge `n`,
        // silently mis-partitioning (or panicking in debug).
        let end = (n as u128 * (i as u128 + 1) / parts as u128) as usize;
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if out.is_empty() && n > 0 {
        out.push(0..n);
    }
    out
}

/// Splits `0..cum.len()-1` items into at most `parts` contiguous ranges of
/// near-equal *weight*, where `cum` is the cumulative weight array
/// (`cum[0] == 0`, `cum[i+1] - cum[i]` = weight of item `i` — exactly the
/// shape of a CSR `row_ptr`). This is the nnz-balanced row partitioner
/// behind the sparse kernels: a range of hub rows ends up with as many
/// stored entries as a long range of leaf rows.
pub fn weight_balanced_ranges(cum: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(!cum.is_empty(), "cumulative weights need a leading 0");
    let n = cum.len() - 1;
    let total = cum[n];
    if total == 0 || parts <= 1 {
        return even_ranges(n, parts);
    }
    // Cut targets are the weight shares `total·(i+1)/parts`. Most cut
    // indices produce no new range when `parts` is huge relative to the
    // items (usize::MAX shards on a 7-row graph), so instead of walking
    // every `i` — O(parts), ~2⁶⁴ empty iterations in that case — jump
    // straight to the smallest `i` whose target lies past the current
    // range's start: the smallest `i` with `total·(i+1)/parts > cum[start]`,
    // i.e. `i + 1 = ⌈(cum[start]+1)·parts/total⌉`. Each emitted range
    // advances `start`, so the loop is O(n · log n) regardless of `parts`.
    let parts = parts as u128;
    let total_w = total as u128;
    let mut out = Vec::with_capacity((parts as usize).min(n));
    let mut start = 0;
    while start < n {
        let i_plus_1 = ((cum[start] as u128 + 1) * parts).div_ceil(total_w);
        if i_plus_1 >= parts {
            // Last share: runs to the end by construction.
            out.push(start..n);
            break;
        }
        let target = (total_w * i_plus_1 / parts) as usize;
        // `target > cum[start]`, so the first index with prefix weight
        // `>= target` is strictly past `start` — every range is non-empty.
        let end = cum.partition_point(|&w| w < target).min(n);
        debug_assert!(end > start);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_never_partitions() {
        let cfg = ParallelismConfig::serial();
        assert!(cfg.is_serial());
        assert_eq!(cfg.partitions(usize::MAX / 4), 1);
    }

    #[test]
    fn partitions_respect_floor_and_cap() {
        let cfg = ParallelismConfig::with_threads(4);
        assert_eq!(cfg.partitions(0), 1);
        assert_eq!(cfg.partitions(PAR_MIN_WORK), 1); // below 2× floor
        assert_eq!(cfg.partitions(PAR_MIN_WORK * 2), 2);
        assert_eq!(cfg.partitions(PAR_MIN_WORK * 100), 8); // 4 threads × 2
        let forced = cfg.with_min_work(1);
        assert_eq!(forced.partitions(3), 3);
        assert_eq!(forced.partitions(1000), 8);
    }

    #[test]
    fn even_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 40] {
                let ranges = even_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn weight_balanced_ranges_cover_and_balance() {
        // 6 items with weights 10, 0, 0, 10, 1, 1 (cum = prefix sums).
        let cum = [0usize, 10, 10, 10, 20, 21, 22];
        for parts in [1usize, 2, 3, 6, 10] {
            let ranges = weight_balanced_ranges(&cum, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, 6);
        }
        // Two parts should split the two heavy items apart.
        let two = weight_balanced_ranges(&cum, 2);
        assert_eq!(two.len(), 2);
        assert!(two[0].end >= 1 && two[0].end <= 4);
    }

    /// More parts than items must terminate promptly and still produce a
    /// clean tiling — the `shards > n_rows` edge. Before the clamp the
    /// cut loop ran O(parts) iterations, so `usize::MAX` parts on a
    /// 4-item array effectively hung.
    #[test]
    fn weight_balanced_more_parts_than_items() {
        let cum = [0usize, 3, 3, 10, 12];
        for parts in [5usize, 64, MAX_SHARDS, usize::MAX] {
            let ranges = weight_balanced_ranges(&cum, parts);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= 4, "at most one range per item");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "parts={parts}");
                assert!(r.end > r.start, "parts={parts}: no degenerate range");
                next = r.end;
            }
            assert_eq!(next, 4, "parts={parts}: ranges must cover every item");
        }
        // Single item, astronomical parts: one range, immediately.
        assert_eq!(weight_balanced_ranges(&[0, 7], usize::MAX), vec![0..1]);
        // Zero items: nothing, for any parts.
        assert!(weight_balanced_ranges(&[0], usize::MAX).is_empty());
    }

    #[test]
    fn weight_balanced_all_zero_falls_back_to_even() {
        let cum = [0usize, 0, 0, 0, 0];
        let ranges = weight_balanced_ranges(&cum, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 0..2);
        assert_eq!(ranges[1], 2..4);
    }

    #[test]
    fn default_follows_env_machinery() {
        let cfg = ParallelismConfig::default();
        assert_eq!(cfg.threads(), rayon::default_num_threads());
        assert_eq!(cfg.shards(), default_num_shards());
    }

    #[test]
    fn shard_knob_defaults_and_clamps() {
        assert_eq!(ParallelismConfig::serial().shards(), 1);
        assert_eq!(ParallelismConfig::with_threads(4).shards(), 1);
        let cfg = ParallelismConfig::serial().with_shards(8);
        assert_eq!(cfg.shards(), 8);
        assert_eq!(
            ParallelismConfig::serial().with_shards(usize::MAX).shards(),
            MAX_SHARDS
        );
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = ParallelismConfig::serial().with_shards(0);
    }

    #[test]
    fn memory_budget_knob_defaults_and_clears() {
        assert_eq!(ParallelismConfig::serial().memory_budget(), None);
        assert_eq!(ParallelismConfig::with_threads(4).memory_budget(), None);
        let cfg = ParallelismConfig::serial().with_memory_budget(1 << 20);
        assert_eq!(cfg.memory_budget(), Some(1 << 20));
        assert_eq!(cfg.with_memory_budget(0).memory_budget(), None);
    }

    #[test]
    fn parse_byte_size_grammar() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("12345"), Some(12345));
        assert_eq!(parse_byte_size(" 64K "), Some(64 << 10));
        assert_eq!(parse_byte_size("64KB"), Some(64 << 10));
        assert_eq!(parse_byte_size("512m"), Some(512 << 20));
        assert_eq!(parse_byte_size("2G"), Some(2 << 30));
        assert_eq!(parse_byte_size("1T"), Some(1 << 40));
        for bad in ["", "abc", "-3", "1.5", "K", "64Q", "1e6"] {
            assert_eq!(parse_byte_size(bad), None, "{bad:?}");
        }
        // Overflow is rejected, not wrapped.
        assert_eq!(parse_byte_size("999999999999T"), None);
    }

    #[test]
    fn parse_memory_budget_env_rules() {
        // Usable values parse silently.
        assert_eq!(parse_memory_budget_env(None), (0, None));
        assert_eq!(parse_memory_budget_env(Some("65536")), (65536, None));
        assert_eq!(parse_memory_budget_env(Some("64K")), (64 << 10, None));
        // Set-but-unusable values (including 0: a zero-byte pool cannot
        // hold any shard) fall back to unbudgeted AND warn.
        for bad in ["abc", "0", "-3", "", "1.5GBs"] {
            let (bytes, warning) = parse_memory_budget_env(Some(bad));
            assert_eq!(bytes, 0, "LSBP_MEMORY_BUDGET={bad:?} must fall back");
            let warning = warning.expect("invalid value must warn");
            assert!(
                warning.contains("ignoring invalid LSBP_MEMORY_BUDGET"),
                "warning names the variable"
            );
            assert!(warning.contains(bad), "warning echoes the rejected value");
            assert!(
                warning.contains("running unbudgeted"),
                "warning names the fallback"
            );
        }
    }

    #[test]
    fn frontier_knob_defaults_and_toggles() {
        assert!(ParallelismConfig::serial().frontier());
        assert!(ParallelismConfig::with_threads(4).frontier());
        assert!(!ParallelismConfig::serial().with_frontier(false).frontier());
        assert!(ParallelismConfig::serial()
            .with_frontier(false)
            .with_frontier(true)
            .frontier());
    }

    #[test]
    fn parse_frontier_env_rules() {
        // Unset and usable values parse silently.
        assert_eq!(parse_frontier_env(None), (true, None));
        for on in ["on", "1", "true", " ON ", "True"] {
            assert_eq!(parse_frontier_env(Some(on)), (true, None), "{on:?}");
        }
        for off in ["off", "0", "false", " OFF ", "False"] {
            assert_eq!(parse_frontier_env(Some(off)), (false, None), "{off:?}");
        }
        // Set-but-unusable values keep the default (on) AND warn, naming
        // the variable, the rejected value, and the fallback.
        for bad in ["yes", "2", "", "disable"] {
            let (on, warning) = parse_frontier_env(Some(bad));
            assert!(on, "LSBP_FRONTIER={bad:?} must fall back to on");
            let warning = warning.expect("invalid value must warn");
            assert!(
                warning.contains("LSBP_FRONTIER"),
                "warning names the variable"
            );
            assert!(warning.contains(bad), "warning echoes the rejected value");
            assert!(warning.contains("stays on"), "warning names the fallback");
        }
    }

    #[test]
    fn parse_shards_env_rules() {
        // Usable values parse silently.
        assert_eq!(parse_shards_env(None), (1, None));
        assert_eq!(parse_shards_env(Some("1")), (1, None));
        assert_eq!(parse_shards_env(Some(" 16 ")), (16, None));
        assert_eq!(parse_shards_env(Some("65536")), (MAX_SHARDS, None));
        // Set-but-unusable values fall back to 1 AND warn, naming the
        // variable, the rejected value, and the fallback.
        for bad in ["abc", "0", "-3", "", "1.5"] {
            let (shards, warning) = parse_shards_env(Some(bad));
            assert_eq!(shards, 1, "LSBP_SHARDS={bad:?} must fall back to 1");
            let warning = warning.expect("invalid value must warn");
            assert!(
                warning.contains("LSBP_SHARDS"),
                "warning names the variable"
            );
            assert!(warning.contains(bad), "warning echoes the rejected value");
            assert!(
                warning.contains("falling back to 1"),
                "warning names the fallback"
            );
        }
        // Above the cap: clamped, with a warning saying so.
        let (shards, warning) = parse_shards_env(Some("99999999"));
        assert_eq!(shards, MAX_SHARDS);
        assert!(warning.expect("clamp must warn").contains("clamping"));
    }
}

//! Sub-multiplicative matrix norms.
//!
//! Lemma 9 of the paper bounds the spectral radius by *any*
//! sub-multiplicative norm and recommends taking the minimum over a set `M`
//! of three cheap ones: the Frobenius norm, the induced-1 norm (max absolute
//! column sum) and the induced-∞ norm (max absolute row sum).

use crate::matrix::Mat;
use crate::simd::{sum_abs4, sum_sq4};

/// Frobenius norm: `sqrt(Σ x_ij²)` — the element-wise 2-norm, summed in
/// the canonical 4-lane order ([`crate::simd`]).
pub fn frobenius_norm(m: &Mat) -> f64 {
    sum_sq4(m.as_slice()).sqrt()
}

/// Induced 1-norm: maximum absolute column sum.
pub fn induced_1_norm(m: &Mat) -> f64 {
    let mut col_sums = vec![0.0f64; m.cols()];
    for r in 0..m.rows() {
        for (c, &x) in m.row(r).iter().enumerate() {
            col_sums[c] += x.abs();
        }
    }
    col_sums.into_iter().fold(0.0, f64::max)
}

/// Induced ∞-norm: maximum absolute row sum (each row summed in the
/// canonical 4-lane order).
pub fn induced_inf_norm(m: &Mat) -> f64 {
    (0..m.rows())
        .map(|r| sum_abs4(m.row(r)))
        .fold(0.0, f64::max)
}

/// The minimum over the paper's recommended norm set
/// `M = {Frobenius, induced-1, induced-∞}` (Lemma 9: every member bounds
/// ρ(·), so the minimum is the tightest of the three).
pub fn min_submultiplicative_norm(m: &Mat) -> f64 {
    frobenius_norm(m)
        .min(induced_1_norm(m))
        .min(induced_inf_norm(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Mat {
        Mat::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]])
    }

    #[test]
    fn frobenius_known_value() {
        assert!((frobenius_norm(&example()) - (30.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn induced_1_is_max_col_sum() {
        assert_eq!(induced_1_norm(&example()), 6.0); // |−2|+|4| = 6
    }

    #[test]
    fn induced_inf_is_max_row_sum() {
        assert_eq!(induced_inf_norm(&example()), 7.0); // |3|+|4| = 7
    }

    #[test]
    fn min_norm_picks_smallest() {
        let m = example();
        let mn = min_submultiplicative_norm(&m);
        assert!((mn - (30.0f64).sqrt()).abs() < 1e-12); // sqrt(30) ≈ 5.48 < 6 < 7
    }

    #[test]
    fn norms_of_identity() {
        let i = Mat::identity(3);
        assert_eq!(induced_1_norm(&i), 1.0);
        assert_eq!(induced_inf_norm(&i), 1.0);
        assert!((frobenius_norm(&i) - 3.0f64.sqrt()).abs() < 1e-12);
    }

    /// All three norms are sub-multiplicative: ||AB|| ≤ ||A||·||B||.
    #[test]
    fn submultiplicativity_spot_check() {
        let a = Mat::from_rows(&[&[0.5, -1.5], &[2.0, 0.25]]);
        let b = Mat::from_rows(&[&[-1.0, 3.0], &[0.5, 0.5]]);
        let ab = a.matmul(&b);
        for norm in [frobenius_norm, induced_1_norm, induced_inf_norm] {
            assert!(norm(&ab) <= norm(&a) * norm(&b) + 1e-12);
        }
    }

    /// Every norm upper-bounds the spectral radius (here: a matrix with
    /// known eigenvalues 3 and 1).
    #[test]
    fn norms_bound_spectral_radius() {
        let m = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]); // eigs {3, 1}
        for norm in [frobenius_norm, induced_1_norm, induced_inf_norm] {
            assert!(norm(&m) >= 3.0 - 1e-12);
        }
    }
}

//! Property tests for the partitioners behind every parallel kernel and
//! graph shard layout: [`even_ranges`] and [`weight_balanced_ranges`].
//!
//! Whatever the weights — all zero, more parts than items, one hub item
//! holding nearly all the weight — the returned ranges must be **sorted,
//! disjoint, individually nonempty, and exactly cover `0..n`**. A
//! violation here is silent data corruption downstream: a dropped row
//! range means a row of the propagation matrix is never multiplied.

use lsbp_linalg::{even_ranges, weight_balanced_ranges, MAX_SHARDS};
use proptest::prelude::*;
use std::ops::Range;

/// The partition contract. `parts` bounds the count; coverage of `0..n`
/// is exact (the empty partition covers `n == 0`).
fn assert_partition(ranges: &[Range<usize>], n: usize, parts: usize) -> Result<(), TestCaseError> {
    if n == 0 {
        prop_assert!(
            ranges.is_empty(),
            "n=0 must yield no ranges, got {ranges:?}"
        );
        return Ok(());
    }
    prop_assert!(!ranges.is_empty(), "n={n} must be covered");
    prop_assert!(
        ranges.len() <= parts.max(1),
        "{} ranges exceed parts={parts}",
        ranges.len()
    );
    prop_assert_eq!(ranges[0].start, 0, "first range must start at 0");
    prop_assert_eq!(
        ranges[ranges.len() - 1].end,
        n,
        "last range must end at n={n}"
    );
    for (i, r) in ranges.iter().enumerate() {
        prop_assert!(r.start < r.end, "range {i} is empty: {r:?}");
        if i > 0 {
            // Contiguity gives sortedness, disjointness, and coverage in
            // one check.
            prop_assert_eq!(
                r.start,
                ranges[i - 1].end,
                "gap or overlap between {:?} and {:?}",
                &ranges[i - 1],
                r
            );
        }
    }
    Ok(())
}

/// Weight profiles the partitioner must survive. The selector integer
/// picks the shape (the vendored proptest has no `prop_oneof!`).
fn weights_strategy() -> impl Strategy<Value = Vec<usize>> {
    (0u8..4, 0usize..80, 0usize..80).prop_flat_map(|(mode, n, hub_at)| {
        proptest::collection::vec(0usize..5, n).prop_map(move |mut w| {
            match mode {
                // All-zero weights: must fall back to even splitting.
                0 => w.iter_mut().for_each(|x| *x = 0),
                // One hub holds ~all weight (a celebrity row in a
                // power-law graph).
                1 if !w.is_empty() => {
                    let at = hub_at % w.len();
                    w[at] = 1_000_000;
                }
                // Hub at the boundary: first item.
                2 if !w.is_empty() => w[0] = 1_000_000,
                // Mode 3 (and empty vecs): the small random weights as-is.
                _ => {}
            }
            w
        })
    })
}

fn cumulate(weights: &[usize]) -> Vec<usize> {
    let mut cum = Vec::with_capacity(weights.len() + 1);
    let mut acc = 0usize;
    cum.push(0);
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    cum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn even_ranges_satisfy_partition_contract((n, parts) in (0usize..200, 0usize..64)) {
        assert_partition(&even_ranges(n, parts), n, parts)?;
    }

    #[test]
    fn weight_balanced_ranges_satisfy_partition_contract(
        (weights, parts) in (weights_strategy(), 0usize..64)
    ) {
        let cum = cumulate(&weights);
        let ranges = weight_balanced_ranges(&cum, parts);
        assert_partition(&ranges, weights.len(), parts)?;
    }

    /// Balance claim: with positive total weight and no single item
    /// heavier than the ideal share, no range exceeds twice that share.
    #[test]
    fn weight_balanced_ranges_actually_balance(
        (weights, parts) in (proptest::collection::vec(1usize..8, 1..120), 2usize..9)
    ) {
        let cum = cumulate(&weights);
        let total = *cum.last().unwrap();
        let share = total.div_ceil(parts);
        let max_item = *weights.iter().max().unwrap();
        let ranges = weight_balanced_ranges(&cum, parts);
        for r in &ranges {
            let load = cum[r.end] - cum[r.start];
            // A range is grown past the target only by its final item.
            prop_assert!(
                load <= share + max_item,
                "range {r:?} carries {load} of {total} (share {share}, max item {max_item})"
            );
        }
    }
}

/// `parts` far beyond `n` collapses to singleton ranges, never empties.
#[test]
fn parts_beyond_n_collapse_to_singletons() {
    let ranges = even_ranges(5, MAX_SHARDS);
    assert_eq!(ranges.len(), 5);
    assert!(ranges.iter().enumerate().all(|(i, r)| *r == (i..i + 1)));

    let cum = cumulate(&[3, 0, 0, 7, 1]);
    let ranges = weight_balanced_ranges(&cum, 1000);
    assert_eq!(ranges.first().map(|r| r.start), Some(0));
    assert_eq!(ranges.last().map(|r| r.end), Some(5));
    assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
}

/// Overflow regression: `n * parts` exceeding `usize` used to wrap and
/// mis-partition. The structural invariants must hold for huge `n` too.
#[test]
fn even_ranges_survive_huge_n() {
    let n = usize::MAX - 1;
    for parts in [2, 3, 7] {
        let ranges = even_ranges(n, parts);
        assert_eq!(ranges.len(), parts);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[parts - 1].end, n);
        assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
        assert!(ranges.iter().all(|r| r.start < r.end));
    }
}

/// The all-zero-weight fallback must behave exactly like `even_ranges`.
#[test]
fn zero_total_weight_matches_even_split() {
    for n in [0usize, 1, 2, 17] {
        let cum = vec![0usize; n + 1];
        for parts in [0usize, 1, 2, 5, 100] {
            assert_eq!(weight_balanced_ranges(&cum, parts), even_ranges(n, parts));
        }
    }
}

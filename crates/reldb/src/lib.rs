#![warn(missing_docs)]

//! A minimal in-memory relational engine plus the paper's SQL
//! formulations of LinBP and SBP (Sect. 5.3, Sect. 6.3, Appendix C).
//!
//! The paper's claim is that LinBP/SBP need nothing beyond *standard SQL*:
//! joins, aggregates, and iteration (Corollary 10). This crate provides
//! exactly that operator vocabulary —
//!
//! * [`Table`] — a named, column-addressed relation of [`Value`] rows,
//! * hash equi-joins with fused projection ([`Table::join_map`]),
//! * anti-joins (`NOT EXISTS`, [`Table::anti_join`]),
//! * grouped aggregation (`GROUP BY` + `SUM`/`MIN`, [`Table::group_by_agg`]),
//! * `UNION ALL` ([`Table::union_all`]), filters and projections —
//!
//! and implements Algorithms 1–4 of the paper *purely* in terms of those
//! operators ([`sql`]). The PostgreSQL deployment of the paper is
//! substituted by this engine (see DESIGN.md); the relative behaviour the
//! experiments measure — SBP touches each edge once, LinBP re-scans all of
//! them every iteration, incremental updates touch only affected regions —
//! is a property of the query plans, which are identical.

//! A SQL *text* front end is provided on top ([`parser`] + [`exec`]): the
//! exact statements printed in the paper's Appendix D (Fig. 9a–d) parse
//! and execute against a [`Database`], and
//! [`sql::SqlDb::linbp_sql_text`] runs Algorithm 1 end-to-end from SQL
//! strings alone.
//!
//! Multi-way queries run through a cost-bounded planner
//! (Planner → [`plan::Plan`] → executor): per-table [`stats::TableStats`]
//! (distinct counts, max join degrees) are maintained incrementally, the
//! planner pushes predicates below joins into the shard-segment scan path,
//! orders joins by *pessimistic* (worst-case, AGM/FD-style) cardinality
//! bounds, and picks hash-join build sides by size. `EXPLAIN SELECT …`
//! prints the chosen plan with each node's bound next to its actual
//! cardinality.

pub mod engine;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod sql;
pub mod stats;

pub use engine::{AggFun, Table, Value};
pub use exec::{Database, SqlError};
pub use plan::{Plan, PlanNode};
pub use sql::{SqlDb, SqlSbpState};
pub use stats::TableStats;

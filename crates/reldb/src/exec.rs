//! Executor for the SQL dialect of [`crate::parser`], over a named-table
//! [`Database`].
//!
//! Multi-way SELECTs run through the cost-bounded planner
//! (Planner → [`Plan`] → executor):
//!
//! 1. **Classification** — every WHERE conjunct is resolved against the
//!    full FROM schema and classified: single-source predicates are
//!    *pushed below the joins* into the shard-segment scan path
//!    ([`Table::filter_rows_with`]); `a = b` equalities across two
//!    sources become equi-join edges; everything else is a residual
//!    filter above the join tree.
//! 2. **Ordering** — [`crate::plan::order_joins`] picks a left-deep join
//!    order minimizing pessimistic (worst-case) cardinality bounds built
//!    from the per-table statistics every [`Table`] maintains.
//! 3. **Execution** — hash joins build their index on whichever input is
//!    actually smaller at run time and `reserve` output capacity from
//!    the planner's bound; `[NOT] IN (SELECT …)` becomes a hashed
//!    semi/anti-filter; `GROUP BY` hashes group keys and folds
//!    `SUM`/`MIN`/`MAX` deterministically (groups sorted by key).
//!
//! The result's *content* (row multiset) is identical to the naive fixed
//! left-to-right strategy, which is kept as
//! [`Database::run_select_fixed`] — the reference baseline property tests
//! and `perf_baseline` compare against. For non-aggregate queries the
//! planned result is the same multiset bit for bit; for float `SUM`
//! aggregates the join order determines the accumulation order, so sums
//! agree to rounding (see README "Query planner").
//!
//! `EXPLAIN SELECT …` ([`Database::explain`]) runs the query and renders
//! the plan tree with each node's bound next to its actual cardinality.

use crate::engine::{Table, Value};
use crate::parser::{
    parse, parse_script, AggregateFun, ColumnRef, Expr, ParseError, Predicate, Select, SelectItem,
    Statement, TableRef,
};
use crate::plan::{order_joins, JoinEdge, NodeActual, Plan, PlanNode, SourceEstimate};
use lsbp_linalg::ParallelismConfig;
use std::collections::{HashMap, HashSet};

/// Execution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// Unknown table name.
    UnknownTable(String),
    /// Column could not be resolved (unknown or ambiguous).
    UnknownColumn {
        /// The reference as written (qualified when it was).
        name: String,
        /// Byte offset of the reference in the SQL text, when known —
        /// the same machinery parse errors carry.
        offset: Option<usize>,
    },
    /// A table with this name already exists (CREATE TABLE).
    TableExists(String),
    /// INSERT arity differs from the target table.
    ArityMismatch {
        /// Target table name.
        table: String,
        /// Column count of the target table.
        expected: usize,
        /// Column count of the SELECT result.
        found: usize,
    },
    /// Anything else (with a message).
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t}"),
            SqlError::UnknownColumn { name, offset } => {
                write!(f, "unknown or ambiguous column {name}")?;
                if let Some(o) = offset {
                    write!(f, " at byte {o}")?;
                }
                Ok(())
            }
            SqlError::TableExists(t) => write!(f, "table {t} already exists"),
            SqlError::ArityMismatch {
                table,
                expected,
                found,
            } => {
                write!(
                    f,
                    "insert into {table}: expected {expected} columns, found {found}"
                )
            }
            SqlError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

/// A named collection of tables with a SQL front end.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    parallelism: ParallelismConfig,
}

/// Schema of an intermediate row set: `(source alias, column name)` pairs.
type BoundSchema = Vec<(String, String)>;

/// How one WHERE conjunct participates in the plan.
enum PredClass<'a> {
    /// References a single FROM source: pushed below the joins into that
    /// source's scan.
    Pushed(usize, &'a Predicate),
    /// `a = b` across two sources: an equi-join edge (rendered form kept
    /// for EXPLAIN).
    Edge(JoinEdge, String),
    /// Anything else: filtered above the join tree.
    Residual(&'a Predicate),
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the execution configuration pushed-down scans run under
    /// (threads × shards, same semantics as the native kernels).
    pub fn with_parallelism(mut self, cfg: ParallelismConfig) -> Self {
        self.parallelism = cfg;
        self
    }

    /// Registers (or replaces) a table under `name`.
    pub fn insert_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Fetches a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Parses and executes one statement. `SELECT` (and `EXPLAIN SELECT`)
    /// return `Some(result)`; DDL/DML return `None`. For the rendered
    /// plan of an EXPLAIN, use [`Database::explain`].
    pub fn execute(&mut self, sql: &str) -> Result<Option<Table>, SqlError> {
        let stmt = parse(sql)?;
        self.execute_statement(&stmt)
    }

    /// Executes a `;`-separated script, returning the result of the final
    /// `SELECT` (if any).
    pub fn execute_script(&mut self, sql: &str) -> Result<Option<Table>, SqlError> {
        let mut last = None;
        for stmt in parse_script(sql)? {
            if let Some(t) = self.execute_statement(&stmt)? {
                last = Some(t);
            }
        }
        Ok(last)
    }

    /// Plans and runs a SELECT (given as `EXPLAIN SELECT …` or a bare
    /// `SELECT …`), returning the rendered plan tree: one node per line,
    /// each with its pessimistic bound (`bound<=`) next to the actual
    /// cardinality (`actual=`) observed during execution.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let stmt = parse(sql)?;
        let query = match &stmt {
            Statement::Explain { query } => query,
            Statement::Select(sel) => sel,
            _ => return Err(SqlError::Unsupported("EXPLAIN requires a SELECT".into())),
        };
        let (_, plan, actuals) = self.run_select_planned(query, "result")?;
        Ok(plan.render(&actuals))
    }

    fn execute_statement(&mut self, stmt: &Statement) -> Result<Option<Table>, SqlError> {
        match stmt {
            Statement::Select(sel) => Ok(Some(self.run_select(sel, "result")?)),
            Statement::Explain { query } => Ok(Some(self.run_select(query, "result")?)),
            Statement::CreateTableAs { name, query } => {
                if self.tables.contains_key(name) {
                    return Err(SqlError::TableExists(name.clone()));
                }
                let t = self.run_select(query, name)?;
                self.tables.insert(name.clone(), t);
                Ok(None)
            }
            Statement::InsertSelect { table, query } => {
                let rows = self.run_select(query, "insert")?;
                let target = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
                if rows.columns().len() != target.columns().len() {
                    return Err(SqlError::ArityMismatch {
                        table: table.clone(),
                        expected: target.columns().len(),
                        found: rows.columns().len(),
                    });
                }
                for r in rows.rows() {
                    target.push(r.clone());
                }
                Ok(None)
            }
            Statement::Delete { table, predicates } => {
                let source = self
                    .tables
                    .get(table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?
                    .clone();
                let schema: BoundSchema = source
                    .columns()
                    .iter()
                    .map(|c| (table.clone(), c.clone()))
                    .collect();
                // Pre-evaluate IN-subqueries.
                let filters = self.compile_predicates(predicates, &schema)?;
                let keep: Vec<Vec<Value>> = source
                    .rows()
                    .iter()
                    .filter(|r| !filters.iter().all(|f| f(r)))
                    .cloned()
                    .collect();
                let columns: Vec<String> = source.columns().to_vec();
                self.tables.insert(
                    table.clone(),
                    Table::from_rows(table.clone(), columns, keep),
                );
                Ok(None)
            }
            Statement::DropTable { name } => {
                self.tables
                    .remove(name)
                    .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
                Ok(None)
            }
        }
    }

    /// Runs a SELECT through the cost-bounded planner and materializes
    /// its result under `out_name`.
    pub fn run_select(&self, sel: &Select, out_name: &str) -> Result<Table, SqlError> {
        Ok(self.run_select_planned(sel, out_name)?.0)
    }

    /// Binds FROM sources (materializing subqueries) to `(alias, table)`
    /// pairs. `fixed` routes subqueries through the fixed strategy so the
    /// baseline stays planner-free end to end.
    fn bind_sources(&self, sel: &Select, fixed: bool) -> Result<Vec<(String, Table)>, SqlError> {
        let mut sources: Vec<(String, Table)> = Vec::with_capacity(sel.from.len());
        for tr in &sel.from {
            match tr {
                TableRef::Named { name, alias } => {
                    let t = self
                        .tables
                        .get(name)
                        .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
                    sources.push((alias.clone().unwrap_or_else(|| name.clone()), t.clone()));
                }
                TableRef::Subquery { query, alias } => {
                    let t = if fixed {
                        self.run_select_fixed(query, alias)?
                    } else {
                        self.run_select(query, alias)?
                    };
                    sources.push((alias.clone(), t));
                }
            }
        }
        Ok(sources)
    }

    /// Runs a SELECT through the planner, returning the result plus the
    /// chosen [`Plan`] and per-node actual cardinalities (what `EXPLAIN`
    /// renders).
    pub fn run_select_planned(
        &self,
        sel: &Select,
        out_name: &str,
    ) -> Result<(Table, Plan, Vec<NodeActual>), SqlError> {
        // 1. Bind FROM sources and lay out the global (FROM-order) schema.
        let sources = self.bind_sources(sel, false)?;
        let n = sources.len();
        let local_schemas: Vec<BoundSchema> = sources
            .iter()
            .map(|(alias, t)| {
                t.columns()
                    .iter()
                    .map(|c| (alias.clone(), c.clone()))
                    .collect()
            })
            .collect();
        let mut global_schema: BoundSchema = Vec::new();
        let mut source_of: Vec<usize> = Vec::new();
        let mut local_col: Vec<usize> = Vec::new();
        for (s, ls) in local_schemas.iter().enumerate() {
            for (c, entry) in ls.iter().enumerate() {
                global_schema.push(entry.clone());
                source_of.push(s);
                local_col.push(c);
            }
        }

        // 2. Classify predicates: pushdown / join edge / residual.
        let mut pushed: Vec<Vec<&Predicate>> = vec![Vec::new(); n];
        let mut edges: Vec<JoinEdge> = Vec::new();
        let mut edge_strs: Vec<String> = Vec::new();
        let mut residual: Vec<&Predicate> = Vec::new();
        for pred in &sel.predicates {
            match classify_predicate(pred, &global_schema, &source_of, &local_col)? {
                PredClass::Pushed(s, p) => pushed[s].push(p),
                PredClass::Edge(e, s) => {
                    edges.push(e);
                    edge_strs.push(s);
                }
                PredClass::Residual(p) => residual.push(p),
            }
        }

        // 3. Pessimistic estimates per source (pushdown folded in) and the
        // bound-minimal join order.
        let mut ests: Vec<SourceEstimate> = sources
            .iter()
            .map(|(_, t)| SourceEstimate::from_stats(t.stats()))
            .collect();
        for (s, preds) in pushed.iter().enumerate() {
            for pred in preds {
                if let Some(col) = eq_literal_column(pred, &local_schemas[s]) {
                    ests[s].apply_eq_literal(col);
                }
            }
        }
        let order = order_joins(&ests, &edges);

        // 4. Execute the left-deep chain, building the plan tree and
        // actual cardinalities as we go.
        let mut actuals: Vec<NodeActual> = Vec::new();
        let new_node = |actuals: &mut Vec<NodeActual>| -> usize {
            actuals.push(NodeActual::default());
            actuals.len() - 1
        };

        let first = order.first;
        let scan_id = new_node(&mut actuals);
        let (mut rows, mut cur_node) = self.scan_source(
            &sources[first].0,
            &sources[first].1,
            &local_schemas[first],
            &pushed[first],
            ests[first].rows,
            scan_id,
        )?;
        actuals[scan_id].rows = Some(rows.len());
        let mut exec_schema: BoundSchema = local_schemas[first].clone();
        let mut pos_of_source: Vec<Option<usize>> = vec![None; n];
        pos_of_source[first] = Some(0);
        let mut width = local_schemas[first].len();
        let mut edge_used = vec![false; edges.len()];

        for step in &order.steps {
            let t = step.source;
            let right_id = new_node(&mut actuals);
            let (right_rows, right_node) = self.scan_source(
                &sources[t].0,
                &sources[t].1,
                &local_schemas[t],
                &pushed[t],
                ests[t].rows,
                right_id,
            )?;
            actuals[right_id].rows = Some(right_rows.len());
            // Join keys: every unused edge connecting t to the prefix.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut key_strs = Vec::new();
            for (ei, e) in edges.iter().enumerate() {
                if edge_used[ei] {
                    continue;
                }
                let (pe, te) = if e.a.0 == t && pos_of_source[e.b.0].is_some() {
                    (e.b, e.a)
                } else if e.b.0 == t && pos_of_source[e.a.0].is_some() {
                    (e.a, e.b)
                } else {
                    continue;
                };
                left_keys.push(pos_of_source[pe.0].expect("prefix member") + pe.1);
                right_keys.push(te.1);
                key_strs.push(edge_strs[ei].clone());
                edge_used[ei] = true;
            }
            let join_id = new_node(&mut actuals);
            let reserve = step.bound.max(0.0).min((1usize << 20) as f64) as usize;
            let (joined, built_on_right) =
                hash_join(&rows, &right_rows, &left_keys, &right_keys, Some(reserve));
            rows = joined;
            actuals[join_id].rows = Some(rows.len());
            actuals[join_id].note = Some(format!(
                "build={}",
                if built_on_right {
                    sources[t].0.as_str()
                } else {
                    "prefix"
                }
            ));
            pos_of_source[t] = Some(width);
            width += local_schemas[t].len();
            exec_schema.extend(local_schemas[t].iter().cloned());
            cur_node = PlanNode::HashJoin {
                id: join_id,
                left: Box::new(cur_node),
                right: Box::new(right_node),
                keys: key_strs,
                bound: step.bound,
            };
        }

        // 5. Residual filters above the join tree.
        if !residual.is_empty() {
            let filters = self.compile_predicate_refs(&residual, &exec_schema)?;
            rows.retain(|r| filters.iter().all(|f| f(r)));
            let id = new_node(&mut actuals);
            actuals[id].rows = Some(rows.len());
            let bound = cur_node.bound();
            cur_node = PlanNode::Filter {
                id,
                input: Box::new(cur_node),
                preds: residual.iter().map(|p| p.to_string()).collect(),
                bound,
            };
        }

        // 6. Project / aggregate. The wildcard expands in FROM order even
        // though the executed row layout follows the join order.
        let wildcard: Vec<(String, usize)> = global_schema
            .iter()
            .enumerate()
            .map(|(g, (_, col))| {
                let pos = pos_of_source[source_of[g]].expect("all sources joined") + local_col[g];
                (col.clone(), pos)
            })
            .collect();
        let has_aggregate = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        let input_bound = cur_node.bound();
        let root_id = new_node(&mut actuals);
        let (result, root) = if has_aggregate || !sel.group_by.is_empty() {
            let out = self.project_grouped(sel, &exec_schema, &wildcard, &rows, out_name)?;
            // Groups cannot exceed the product of the group columns'
            // distinct-count bounds (empty product = 1: a pure aggregate).
            let mut group_bound = 1.0f64;
            for c in &sel.group_by {
                let g = resolve(&global_schema, c)?;
                group_bound *=
                    ests[source_of[g]].cols[local_col[g]].map_or(input_bound, |cb| cb.distinct);
                if group_bound >= input_bound {
                    group_bound = input_bound;
                    break;
                }
            }
            let node = PlanNode::Aggregate {
                id: root_id,
                input: Box::new(cur_node),
                group_by: sel.group_by.iter().map(|c| c.to_string()).collect(),
                bound: group_bound.min(input_bound),
            };
            (out, node)
        } else {
            let out = self.project_plain(sel, &exec_schema, &wildcard, &rows, out_name)?;
            let node = PlanNode::Project {
                id: root_id,
                input: Box::new(cur_node),
                items: sel.items.iter().map(|i| i.to_string()).collect(),
                bound: input_bound,
            };
            (out, node)
        };
        actuals[root_id].rows = Some(result.len());
        let plan = Plan {
            root,
            node_count: actuals.len(),
        };
        Ok((result, plan, actuals))
    }

    /// Scans one FROM source with its pushed-down predicates applied
    /// inside the shard-segment scan, returning the surviving rows and
    /// the plan's Scan node.
    fn scan_source(
        &self,
        alias: &str,
        table: &Table,
        local_schema: &BoundSchema,
        pushed: &[&Predicate],
        bound: f64,
        id: usize,
    ) -> Result<(Vec<Vec<Value>>, PlanNode), SqlError> {
        let rows = if pushed.is_empty() {
            table.rows().to_vec()
        } else {
            let filters = self.compile_predicate_refs(pushed, local_schema)?;
            let pred = move |r: &[Value]| filters.iter().all(|f| f(r));
            table.filter_rows_with(&pred, &self.parallelism)
        };
        let node = PlanNode::Scan {
            id,
            label: alias.to_string(),
            input_rows: table.len(),
            pushed: pushed.iter().map(|p| p.to_string()).collect(),
            bound,
        };
        Ok((rows, node))
    }

    /// Runs a SELECT with the pre-planner fixed strategy: FROM sources
    /// join strictly left to right on whatever equality predicates bridge
    /// the prefix to the next source, all other predicates filter after
    /// the joins. Kept as the reference baseline the planner is measured
    /// against (`perf_baseline` planner section, property tests); results
    /// have the same row multiset as [`Database::run_select`].
    pub fn run_select_fixed(&self, sel: &Select, out_name: &str) -> Result<Table, SqlError> {
        // 1. Bind FROM sources.
        let sources = self.bind_sources(sel, true)?;

        // 2. Join left-to-right using connecting equality predicates.
        let mut consumed = vec![false; sel.predicates.len()];
        let (first_alias, first_table) = &sources[0];
        let mut schema: BoundSchema = first_table
            .columns()
            .iter()
            .map(|c| (first_alias.clone(), c.clone()))
            .collect();
        let mut rows: Vec<Vec<Value>> = first_table.rows().to_vec();
        for (alias, table) in sources.iter().skip(1) {
            let new_schema: BoundSchema = table
                .columns()
                .iter()
                .map(|c| (alias.clone(), c.clone()))
                .collect();
            // Find equality predicates bridging the current prefix and the
            // new source.
            let mut left_keys: Vec<usize> = Vec::new();
            let mut right_keys: Vec<usize> = Vec::new();
            for (pi, pred) in sel.predicates.iter().enumerate() {
                if consumed[pi] {
                    continue;
                }
                if let Predicate::Compare(Expr::Column(a), op, Expr::Column(b)) = pred {
                    if op != "=" {
                        continue;
                    }
                    let a_left = resolve(&schema, a).ok();
                    let a_right = resolve(&new_schema, a).ok();
                    let b_left = resolve(&schema, b).ok();
                    let b_right = resolve(&new_schema, b).ok();
                    if let (Some(l), Some(r)) = (a_left, b_right) {
                        left_keys.push(l);
                        right_keys.push(r);
                        consumed[pi] = true;
                    } else if let (Some(l), Some(r)) = (b_left, a_right) {
                        left_keys.push(l);
                        right_keys.push(r);
                        consumed[pi] = true;
                    }
                }
            }
            rows = hash_join(&rows, table.rows(), &left_keys, &right_keys, None).0;
            schema.extend(new_schema);
        }

        // 3. Remaining predicates as filters.
        let remaining: Vec<&Predicate> = sel
            .predicates
            .iter()
            .enumerate()
            .filter(|(pi, _)| !consumed[*pi])
            .map(|(_, p)| p)
            .collect();
        if !remaining.is_empty() {
            let filters = self.compile_predicate_refs(&remaining, &schema)?;
            rows.retain(|r| filters.iter().all(|f| f(r)));
        }

        // 4. Project / aggregate (wildcard = schema order, which here is
        // FROM order).
        let wildcard: Vec<(String, usize)> = schema
            .iter()
            .enumerate()
            .map(|(i, (_, c))| (c.clone(), i))
            .collect();
        let has_aggregate = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        if has_aggregate || !sel.group_by.is_empty() {
            self.project_grouped(sel, &schema, &wildcard, &rows, out_name)
        } else {
            self.project_plain(sel, &schema, &wildcard, &rows, out_name)
        }
    }

    fn project_plain(
        &self,
        sel: &Select,
        schema: &BoundSchema,
        wildcard: &[(String, usize)],
        rows: &[Vec<Value>],
        out_name: &str,
    ) -> Result<Table, SqlError> {
        let (names, evals) = self.compile_items(sel, schema, wildcard)?;
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut out = Table::new(out_name, &name_refs);
        out.reserve(rows.len());
        for r in rows {
            let mut row = Vec::with_capacity(evals.len());
            for ev in &evals {
                match ev {
                    ItemEval::Scalar(f) => row.push(f(r)),
                    ItemEval::All(positions) => row.extend(positions.iter().map(|&i| r[i])),
                    ItemEval::Agg(..) => unreachable!("plain projection"),
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    fn project_grouped(
        &self,
        sel: &Select,
        schema: &BoundSchema,
        wildcard: &[(String, usize)],
        rows: &[Vec<Value>],
        out_name: &str,
    ) -> Result<Table, SqlError> {
        let (names, evals) = self.compile_items(sel, schema, wildcard)?;
        if evals.iter().any(|e| matches!(e, ItemEval::All(_))) {
            return Err(SqlError::Unsupported("SELECT * with GROUP BY".into()));
        }
        let key_idx: Vec<usize> = sel
            .group_by
            .iter()
            .map(|c| resolve(schema, c))
            .collect::<Result<_, _>>()?;
        // Group rows (keys hashed by canonical f64 bits).
        let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for (ri, r) in rows.iter().enumerate() {
            let key: Vec<u64> = key_idx.iter().map(|&i| r[i].as_float().to_bits()).collect();
            groups.entry(key).or_default().push(ri);
        }
        // Aggregate-only queries over zero rows produce zero rows (like the
        // engine's group_by_agg; good enough for our algorithms).
        let mut entries: Vec<(Vec<u64>, Vec<usize>)> = groups.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut out = Table::new(out_name, &name_refs);
        out.reserve(entries.len());
        for (_, members) in entries {
            let first = &rows[members[0]];
            let mut row = Vec::with_capacity(evals.len());
            for ev in &evals {
                match ev {
                    ItemEval::Scalar(f) => row.push(f(first)),
                    ItemEval::Agg(fun, f) => {
                        let mut acc: Option<Value> = None;
                        for &ri in &members {
                            let v = f(&rows[ri]);
                            acc = Some(match (acc, fun) {
                                (None, AggregateFun::Sum) => Value::Float(v.as_float()),
                                (None, _) => v,
                                (Some(a), AggregateFun::Sum) => {
                                    Value::Float(a.as_float() + v.as_float())
                                }
                                (Some(a), AggregateFun::Min) => {
                                    if v.as_float() < a.as_float() {
                                        v
                                    } else {
                                        a
                                    }
                                }
                                (Some(a), AggregateFun::Max) => {
                                    if v.as_float() > a.as_float() {
                                        v
                                    } else {
                                        a
                                    }
                                }
                            });
                        }
                        row.push(acc.expect("groups are non-empty"));
                    }
                    ItemEval::All(_) => unreachable!(),
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Compiles SELECT items to output names + evaluators. `wildcard`
    /// maps `*` to `(output name, row position)` pairs — positions differ
    /// from schema order when the planner reordered the joins.
    #[allow(clippy::type_complexity)]
    fn compile_items(
        &self,
        sel: &Select,
        schema: &BoundSchema,
        wildcard: &[(String, usize)],
    ) -> Result<(Vec<String>, Vec<ItemEval>), SqlError> {
        let mut names = Vec::new();
        let mut evals = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (name, _) in wildcard {
                        names.push(name.clone());
                    }
                    evals.push(ItemEval::All(wildcard.iter().map(|&(_, p)| p).collect()));
                }
                SelectItem::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| default_name(expr, i)));
                    evals.push(ItemEval::Scalar(compile_expr(expr, schema)?));
                }
                SelectItem::Aggregate { fun, arg, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| format!("agg{i}")));
                    evals.push(ItemEval::Agg(*fun, compile_expr(arg, schema)?));
                }
            }
        }
        Ok((names, evals))
    }

    fn compile_predicates(
        &self,
        preds: &[Predicate],
        schema: &BoundSchema,
    ) -> Result<Vec<RowPredicate>, SqlError> {
        let refs: Vec<&Predicate> = preds.iter().collect();
        self.compile_predicate_refs(&refs, schema)
    }

    fn compile_predicate_refs(
        &self,
        preds: &[&Predicate],
        schema: &BoundSchema,
    ) -> Result<Vec<RowPredicate>, SqlError> {
        let mut out: Vec<RowPredicate> = Vec::with_capacity(preds.len());
        for pred in preds {
            match pred {
                Predicate::Compare(lhs, op, rhs) => {
                    let l = compile_expr(lhs, schema)?;
                    let r = compile_expr(rhs, schema)?;
                    let op = op.clone();
                    out.push(Box::new(move |row| {
                        let a = l(row).as_float();
                        let b = r(row).as_float();
                        match op.as_str() {
                            "=" => a == b,
                            "<" => a < b,
                            ">" => a > b,
                            "<=" => a <= b,
                            ">=" => a >= b,
                            "<>" => a != b,
                            _ => unreachable!("parser only emits known operators"),
                        }
                    }));
                }
                Predicate::InSubquery {
                    expr,
                    query,
                    negated,
                } => {
                    let sub = self.run_select(query, "in")?;
                    if sub.columns().is_empty() {
                        return Err(SqlError::Unsupported("IN over zero-column subquery".into()));
                    }
                    let set: HashSet<u64> = sub
                        .rows()
                        .iter()
                        .map(|r| r[0].as_float().to_bits())
                        .collect();
                    let e = compile_expr(expr, schema)?;
                    let negated = *negated;
                    out.push(Box::new(move |row| {
                        let hit = set.contains(&e(row).as_float().to_bits());
                        hit != negated
                    }));
                }
            }
        }
        Ok(out)
    }
}

/// Classifies one WHERE conjunct against the full FROM schema.
fn classify_predicate<'a>(
    pred: &'a Predicate,
    global_schema: &BoundSchema,
    source_of: &[usize],
    local_col: &[usize],
) -> Result<PredClass<'a>, SqlError> {
    let mut refs = Vec::new();
    predicate_columns(pred, &mut refs);
    let mut resolved = Vec::with_capacity(refs.len());
    let mut srcs: Vec<usize> = Vec::new();
    for c in &refs {
        let g = resolve(global_schema, c)?;
        resolved.push(g);
        if !srcs.contains(&source_of[g]) {
            srcs.push(source_of[g]);
        }
    }
    Ok(match (srcs.len(), pred) {
        (0, _) => PredClass::Residual(pred),
        (1, _) => PredClass::Pushed(srcs[0], pred),
        (2, Predicate::Compare(Expr::Column(_), op, Expr::Column(_))) if op == "=" => {
            let (ga, gb) = (resolved[0], resolved[1]);
            let render = |g: usize| {
                let (alias, col) = &global_schema[g];
                format!("{alias}.{col}")
            };
            PredClass::Edge(
                JoinEdge {
                    a: (source_of[ga], local_col[ga]),
                    b: (source_of[gb], local_col[gb]),
                },
                format!("{} = {}", render(ga), render(gb)),
            )
        }
        _ => PredClass::Residual(pred),
    })
}

/// If `pred` is `col = literal` (either orientation), returns the
/// column's index in `local_schema` — the estimate the planner tightens
/// via max-frequency.
fn eq_literal_column(pred: &Predicate, local_schema: &BoundSchema) -> Option<usize> {
    let Predicate::Compare(lhs, op, rhs) = pred else {
        return None;
    };
    if op != "=" {
        return None;
    }
    let col = match (lhs, rhs) {
        (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => c,
        _ => return None,
    };
    resolve(local_schema, col).ok()
}

/// Collects every column reference of an expression.
fn expr_columns<'a>(e: &'a Expr, out: &mut Vec<&'a ColumnRef>) {
    match e {
        Expr::Column(c) => out.push(c),
        Expr::Literal(_) => {}
        Expr::Binary(l, _, r) => {
            expr_columns(l, out);
            expr_columns(r, out);
        }
    }
}

/// Column references of a predicate that bind to the *outer* query (an
/// IN-subquery's body is independent).
fn predicate_columns<'a>(p: &'a Predicate, out: &mut Vec<&'a ColumnRef>) {
    match p {
        Predicate::Compare(l, _, r) => {
            expr_columns(l, out);
            expr_columns(r, out);
        }
        Predicate::InSubquery { expr, .. } => expr_columns(expr, out),
    }
}

type RowPredicate = Box<dyn Fn(&[Value]) -> bool + Sync>;
type RowExpr = Box<dyn Fn(&[Value]) -> Value + Sync>;

enum ItemEval {
    Scalar(RowExpr),
    Agg(AggregateFun, RowExpr),
    All(Vec<usize>),
}

fn default_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        _ => format!("expr{index}"),
    }
}

/// Resolves a column reference against a bound schema.
fn resolve(schema: &BoundSchema, col: &ColumnRef) -> Result<usize, SqlError> {
    let matches: Vec<usize> = schema
        .iter()
        .enumerate()
        .filter(|(_, (alias, name))| {
            name == &col.column && col.table.as_ref().is_none_or(|t| t == alias)
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SqlError::UnknownColumn {
            name: format_col(col),
            offset: col.offset,
        }),
        _ => Err(SqlError::UnknownColumn {
            name: format!("{} (ambiguous)", format_col(col)),
            offset: col.offset,
        }),
    }
}

fn format_col(col: &ColumnRef) -> String {
    match &col.table {
        Some(t) => format!("{t}.{}", col.column),
        None => col.column.clone(),
    }
}

/// Compiles a scalar expression to a closure over joined rows.
fn compile_expr(expr: &Expr, schema: &BoundSchema) -> Result<RowExpr, SqlError> {
    Ok(match expr {
        Expr::Column(c) => {
            let idx = resolve(schema, c)?;
            Box::new(move |row| row[idx])
        }
        Expr::Literal(v) => {
            // Integral literals stay integers so ids/geodesic numbers keep
            // their type through INSERT ... SELECT '1' (Fig. 9c).
            let value = if v.fract() == 0.0 && v.abs() < 9e15 {
                Value::Int(*v as i64)
            } else {
                Value::Float(*v)
            };
            Box::new(move |_| value)
        }
        Expr::Binary(lhs, op, rhs) => {
            let l = compile_expr(lhs, schema)?;
            let r = compile_expr(rhs, schema)?;
            let op = *op;
            Box::new(move |row| {
                let a = l(row);
                let b = r(row);
                // Integer arithmetic when both sides are integers (except
                // division); float otherwise.
                match (a, b, op) {
                    (Value::Int(x), Value::Int(y), '+') => Value::Int(x + y),
                    (Value::Int(x), Value::Int(y), '-') => Value::Int(x - y),
                    (Value::Int(x), Value::Int(y), '*') => Value::Int(x * y),
                    (a, b, '+') => Value::Float(a.as_float() + b.as_float()),
                    (a, b, '-') => Value::Float(a.as_float() - b.as_float()),
                    (a, b, '*') => Value::Float(a.as_float() * b.as_float()),
                    (a, b, '/') => Value::Float(a.as_float() / b.as_float()),
                    _ => unreachable!("parser only emits + - * /"),
                }
            })
        }
    })
}

/// Hash join of materialized row sets on canonical-f64 keys; with no keys
/// it degrades to the cross product (comma-join without a bridge). The
/// hash index is always built on the smaller input (the probe side keeps
/// its row order); the output layout is `left ++ right` regardless of
/// build side. `bound_hint` (the planner's pessimistic output bound)
/// sizes the output reservation, tightened by the build side's max
/// bucket and capped so a bad bound cannot pre-allocate unbounded
/// memory. Returns the rows plus whether the build side was `right`.
fn hash_join(
    left: &[Vec<Value>],
    right: &[Vec<Value>],
    left_keys: &[usize],
    right_keys: &[usize],
    bound_hint: Option<usize>,
) -> (Vec<Vec<Value>>, bool) {
    if left_keys.is_empty() {
        let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()).min(1 << 20));
        for l in left {
            for r in right {
                let mut row = l.clone();
                row.extend(r.iter().copied());
                out.push(row);
            }
        }
        return (out, true);
    }
    // Build on the smaller side.
    let built_on_right = right.len() <= left.len();
    let (build, build_keys, probe, probe_keys) = if built_on_right {
        (right, right_keys, left, left_keys)
    } else {
        (left, left_keys, right, right_keys)
    };
    let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::with_capacity(build.len());
    let mut max_bucket = 0usize;
    for (i, r) in build.iter().enumerate() {
        let key: Vec<u64> = build_keys
            .iter()
            .map(|&k| r[k].as_float().to_bits())
            .collect();
        let bucket = index.entry(key).or_default();
        bucket.push(i);
        max_bucket = max_bucket.max(bucket.len());
    }
    let degree_bound = probe.len().saturating_mul(max_bucket);
    let reserve = bound_hint
        .map_or(degree_bound, |h| h.min(degree_bound))
        .min(1 << 20);
    let mut out = Vec::with_capacity(reserve);
    for p in probe {
        let key: Vec<u64> = probe_keys
            .iter()
            .map(|&k| p[k].as_float().to_bits())
            .collect();
        if let Some(matches) = index.get(&key) {
            for &i in matches {
                let mut row;
                if built_on_right {
                    row = p.clone();
                    row.extend(build[i].iter().copied());
                } else {
                    row = build[i].clone();
                    row.extend(p.iter().copied());
                }
                out.push(row);
            }
        }
    }
    (out, built_on_right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_edges() -> Database {
        let mut db = Database::new();
        let mut a = Table::new("A", &["s", "t", "w"]);
        for (s, t, w) in [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)] {
            a.push(vec![Value::Int(s), Value::Int(t), Value::Float(w)]);
        }
        db.insert_table("A", a);
        let mut e = Table::new("E", &["v", "c", "b"]);
        e.push(vec![Value::Int(0), Value::Int(0), Value::Float(0.1)]);
        e.push(vec![Value::Int(0), Value::Int(1), Value::Float(-0.1)]);
        db.insert_table("E", e);
        db
    }

    /// Sorted row multiset (canonical f64 bits) for order-insensitive
    /// comparison.
    fn sorted_rows(t: &Table) -> Vec<Vec<u64>> {
        let mut rows: Vec<Vec<u64>> = t
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.as_float().to_bits()).collect())
            .collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn select_filter_project() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, w * 2 as w2 from A where s = 1")
            .unwrap()
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.columns(), &["s".to_string(), "w2".to_string()]);
        assert_eq!(r.rows()[0][1], Value::Float(2.0));
    }

    #[test]
    fn join_via_where_equality() {
        let mut db = db_with_edges();
        let r = db
            .execute("select A.t, E.b from A, E where A.s = E.v")
            .unwrap()
            .unwrap();
        // E has node 0 only; A rows with s = 0: (0,1). Two E rows (classes).
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn explicit_join_on_syntax_matches_comma_join() {
        let mut db = db_with_edges();
        let comma = db
            .execute("select A.t, E.b from A, E where A.s = E.v")
            .unwrap()
            .unwrap();
        let joined = db
            .execute("select A.t, E.b from A join E on A.s = E.v")
            .unwrap()
            .unwrap();
        assert_eq!(sorted_rows(&joined), sorted_rows(&comma));
    }

    #[test]
    fn cross_product_without_bridge() {
        let mut db = db_with_edges();
        let r = db.execute("select A.s, E.c from A, E").unwrap().unwrap();
        assert_eq!(r.len(), 4 * 2);
    }

    #[test]
    fn group_by_sum_matches_engine() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, sum(w * w) as d from A group by s")
            .unwrap()
            .unwrap();
        assert_eq!(r.len(), 3);
        // Node 1 has edges of weight 1 and 2 → d = 5.
        let d1 = r.rows().iter().find(|row| row[0] == Value::Int(1)).unwrap()[1];
        assert_eq!(d1, Value::Float(5.0));
    }

    /// Fig. 9a end-to-end: CREATE TABLE H2 AS the Ĥ² self-join.
    #[test]
    fn fig9a_h_squared() {
        let mut db = Database::new();
        let mut h = Table::new("H", &["c1", "c2", "h"]);
        let vals = [[0.2, -0.1], [-0.1, 0.2]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                h.push(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Float(v),
                ]);
            }
        }
        db.insert_table("H", h);
        db.execute(
            "create table H2 as select H1.c1, H2.c2, sum(H1.h*H2.h) as h \
             from H H1, H H2 where H1.c2 = H2.c1 group by H1.c1, H2.c2",
        )
        .unwrap();
        let h2 = db.table("H2").unwrap();
        assert_eq!(h2.len(), 4);
        // (Ĥ²)(0,0) = 0.2·0.2 + (−0.1)·(−0.1) = 0.05.
        let v00 = h2
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(0) && r[1] == Value::Int(0))
            .unwrap()[2];
        assert!((v00.as_float() - 0.05).abs() < 1e-12);
    }

    /// Fig. 9b end-to-end: top-belief assignment via FROM-subquery.
    #[test]
    fn fig9b_top_beliefs() {
        let mut db = Database::new();
        let mut b = Table::new("B", &["v", "c", "b"]);
        for (v, c, val) in [(0, 0, 0.4), (0, 1, -0.4), (1, 0, -0.2), (1, 1, 0.2)] {
            b.push(vec![Value::Int(v), Value::Int(c), Value::Float(val)]);
        }
        db.insert_table("B", b);
        let top = db
            .execute(
                "select B.v, B.c from B, \
                 (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
                 where B.v = X.v and B.b = X.b",
            )
            .unwrap()
            .unwrap();
        assert_eq!(top.len(), 2);
        let classes: HashMap<i64, i64> = top
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int()))
            .collect();
        assert_eq!(classes[&0], 0);
        assert_eq!(classes[&1], 1);
    }

    /// Fig. 9c end-to-end: the BFS step with NOT IN.
    #[test]
    fn fig9c_bfs_step() {
        let mut db = db_with_edges();
        let mut g = Table::new("G", &["v", "g"]);
        g.push(vec![Value::Int(0), Value::Int(0)]);
        db.insert_table("G", g);
        db.execute(
            "insert into G (select A.t, '1' from G, A where G.v = A.s and G.g = '0' \
             and A.t not in (select G.v from G))",
        )
        .unwrap();
        let g = db.table("G").unwrap();
        assert_eq!(g.len(), 2);
        assert!(g
            .rows()
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(1)));
    }

    /// Fig. 9d end-to-end: the upsert as DELETE + INSERT.
    #[test]
    fn fig9d_upsert() {
        let mut db = Database::new();
        let mut b = Table::new("B", &["v", "c", "b"]);
        b.push(vec![Value::Int(0), Value::Int(0), Value::Float(1.0)]);
        b.push(vec![Value::Int(1), Value::Int(0), Value::Float(2.0)]);
        db.insert_table("B", b);
        let mut bn = Table::new("Bn", &["v", "c", "b"]);
        bn.push(vec![Value::Int(1), Value::Int(0), Value::Float(9.0)]);
        db.insert_table("Bn", bn);
        db.execute_script(
            "delete from B where v in (select Bn.v from Bn); insert into B select * from Bn;",
        )
        .unwrap();
        let b = db.table("B").unwrap();
        assert_eq!(b.len(), 2);
        let v1 = b.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(v1[2], Value::Float(9.0));
    }

    #[test]
    fn error_paths() {
        let mut db = db_with_edges();
        assert!(matches!(
            db.execute("select x from A"),
            Err(SqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            db.execute("select s from Nope"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("create table A as select s from A"),
            Err(SqlError::TableExists(_))
        ));
        assert!(matches!(
            db.execute("insert into E select s from A"),
            Err(SqlError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.execute("drop table Nope"),
            Err(SqlError::UnknownTable(_))
        ));
        // Ambiguous unqualified column across a self-join.
        assert!(matches!(
            db.execute("select s from A A1, A A2 where A1.s = A2.t"),
            Err(SqlError::UnknownColumn { .. })
        ));
    }

    /// A bad column in any clause is a typed error carrying the byte
    /// offset of the reference — never a panic (`Table::col` is not on
    /// the query path).
    #[test]
    fn unknown_column_carries_byte_offset() {
        let mut db = db_with_edges();
        let sql = "select s from A where A.nope = 1";
        let err = db.execute(sql).unwrap_err();
        let SqlError::UnknownColumn { name, offset } = err else {
            panic!("{err:?}")
        };
        assert_eq!(name, "A.nope");
        assert_eq!(offset, Some(sql.find("A.nope").unwrap()));
        assert_eq!(
            SqlError::UnknownColumn {
                name: "A.nope".into(),
                offset: Some(22)
            }
            .to_string(),
            "unknown or ambiguous column A.nope at byte 22"
        );
        // GROUP BY and EXPLAIN paths are typed too.
        assert!(matches!(
            db.execute("select sum(w) from A group by zz"),
            Err(SqlError::UnknownColumn { .. })
        ));
        assert!(matches!(
            db.explain("explain select zz from A"),
            Err(SqlError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn integer_literal_typing() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, '1' from A where s = 0")
            .unwrap()
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(1));
        let r2 = db
            .execute("select 1.5 from A where s = 0")
            .unwrap()
            .unwrap();
        assert_eq!(r2.rows()[0][0], Value::Float(1.5));
    }

    /// A database with a hub-skewed 3-way chain where the fixed
    /// left-to-right order explodes quadratically.
    fn skewed_chain_db(n: i64, hub: i64) -> Database {
        let mut db = Database::new();
        let mut r = Table::new("R", &["k", "p"]);
        let mut s = Table::new("S", &["k", "j"]);
        let mut sel = Table::new("Sel", &["j"]);
        for i in 0..n {
            let k = if i < hub { 0 } else { i };
            r.push(vec![Value::Int(k), Value::Int(i)]);
            // Hub rows of S get j values outside Sel's range.
            let j = if i < hub { n + i } else { i % 50 };
            s.push(vec![Value::Int(k), Value::Int(j)]);
        }
        for j in 0..25 {
            sel.push(vec![Value::Int(j)]);
        }
        db.insert_table("R", r);
        db.insert_table("S", s);
        db.insert_table("Sel", sel);
        db
    }

    /// The planner must defer the hub join (R ⋈ S on k) until after the
    /// selective S ⋈ Sel join — the bound-minimal order on a workload
    /// where the fixed FROM order is asymptotically worse — while
    /// producing exactly the fixed strategy's row multiset.
    #[test]
    fn planner_picks_bound_minimal_order_on_skewed_chain() {
        let db = skewed_chain_db(400, 80);
        let sql = "select R.p, Sel.j from R, S, Sel where R.k = S.k and S.j = Sel.j";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        let (planned, plan, actuals) = db.run_select_planned(&sel, "result").unwrap();
        // Chosen join order: R (the hub side) last.
        assert_eq!(
            plan.scan_order().last().unwrap(),
            "R",
            "{:?}",
            plan.scan_order()
        );
        // Bounds are honest: every actual ≤ its node's bound.
        fn check(node: &PlanNode, actuals: &[NodeActual]) {
            if let Some(rows) = actuals[node.id()].rows {
                assert!(
                    rows as f64 <= node.bound() + 0.5,
                    "node {} actual {} exceeds bound {}",
                    node.id(),
                    rows,
                    node.bound()
                );
            }
            match node {
                PlanNode::HashJoin { left, right, .. } => {
                    check(left, actuals);
                    check(right, actuals);
                }
                PlanNode::Filter { input, .. }
                | PlanNode::Aggregate { input, .. }
                | PlanNode::Project { input, .. } => check(input, actuals),
                PlanNode::Scan { .. } => {}
            }
        }
        check(&plan.root, &actuals);
        // Identical content to the fixed order.
        let fixed = db.run_select_fixed(&sel, "result").unwrap();
        assert_eq!(sorted_rows(&planned), sorted_rows(&fixed));
    }

    /// EXPLAIN round-trips through the parser and prints the chosen join
    /// order with a pessimistic bound and actual cardinality per node.
    #[test]
    fn explain_renders_bounds_and_actuals() {
        let db = skewed_chain_db(400, 80);
        let text = db
            .explain("explain select R.p, Sel.j from R, S, Sel where R.k = S.k and S.j = Sel.j")
            .unwrap();
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("HashJoin on"), "{text}");
        assert!(text.contains("Scan R"), "{text}");
        assert!(text.contains("bound<="), "{text}");
        assert!(text.contains("actual="), "{text}");
        assert!(text.contains("build="), "{text}");
        // The scan order in the rendering puts the hub table R last: its
        // Scan line is the deepest-indented one.
        let r_line = text.lines().find(|l| l.contains("Scan R")).unwrap();
        let sel_line = text.lines().find(|l| l.contains("Scan Sel")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(r_line) < indent(sel_line), "{text}");
        // `EXPLAIN SELECT …` also executes through the statement path.
        let mut db = db;
        let result = db
            .execute("explain select R.p from R where R.k = 0")
            .unwrap()
            .unwrap();
        assert_eq!(result.len(), 80);
    }

    /// Pushed-down scans run under the configured parallelism with
    /// results identical to serial execution.
    #[test]
    fn parallel_scans_match_serial() {
        let sql = "select R.p, Sel.j from R, S, Sel where R.k = S.k and S.j = Sel.j \
                   and R.p > 3 and S.j < 40";
        let serial = {
            let cfg = ParallelismConfig::with_threads(1).with_shards(1);
            let mut db = skewed_chain_db(300, 60).with_parallelism(cfg);
            db.execute(sql).unwrap().unwrap()
        };
        for threads in [2usize, 4] {
            let cfg = ParallelismConfig::with_threads(threads)
                .with_shards(3)
                .with_min_work(1);
            let mut db = skewed_chain_db(300, 60).with_parallelism(cfg);
            let par = db.execute(sql).unwrap().unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }
}

//! Executor for the SQL dialect of [`crate::parser`], over a named-table
//! [`Database`].
//!
//! The planner is intentionally simple and predictable: comma-joins become
//! hash equi-joins on the WHERE equality predicates that connect a new
//! source to the already-joined prefix (cross products only when no such
//! predicate exists); remaining predicates become post-filters; `[NOT] IN
//! (SELECT …)` becomes a hashed semi/anti-join; `GROUP BY` hashes group
//! keys and folds `SUM`/`MIN`/`MAX`.

use crate::engine::{Table, Value};
use crate::parser::{
    parse, parse_script, AggregateFun, ColumnRef, Expr, ParseError, Predicate, Select, SelectItem,
    Statement, TableRef,
};
use std::collections::{HashMap, HashSet};

/// Execution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// Unknown table name.
    UnknownTable(String),
    /// Column could not be resolved (unknown or ambiguous).
    UnknownColumn(String),
    /// A table with this name already exists (CREATE TABLE).
    TableExists(String),
    /// INSERT arity differs from the target table.
    ArityMismatch {
        /// Target table name.
        table: String,
        /// Column count of the target table.
        expected: usize,
        /// Column count of the SELECT result.
        found: usize,
    },
    /// Anything else (with a message).
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown or ambiguous column {c}"),
            SqlError::TableExists(t) => write!(f, "table {t} already exists"),
            SqlError::ArityMismatch {
                table,
                expected,
                found,
            } => {
                write!(
                    f,
                    "insert into {table}: expected {expected} columns, found {found}"
                )
            }
            SqlError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

/// A named collection of tables with a SQL front end.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

/// Schema of an intermediate row set: `(source alias, column name)` pairs.
type BoundSchema = Vec<(String, String)>;

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn insert_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Fetches a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Parses and executes one statement. `SELECT` returns `Some(result)`;
    /// DDL/DML return `None`.
    pub fn execute(&mut self, sql: &str) -> Result<Option<Table>, SqlError> {
        let stmt = parse(sql)?;
        self.execute_statement(&stmt)
    }

    /// Executes a `;`-separated script, returning the result of the final
    /// `SELECT` (if any).
    pub fn execute_script(&mut self, sql: &str) -> Result<Option<Table>, SqlError> {
        let mut last = None;
        for stmt in parse_script(sql)? {
            if let Some(t) = self.execute_statement(&stmt)? {
                last = Some(t);
            }
        }
        Ok(last)
    }

    fn execute_statement(&mut self, stmt: &Statement) -> Result<Option<Table>, SqlError> {
        match stmt {
            Statement::Select(sel) => Ok(Some(self.run_select(sel, "result")?)),
            Statement::CreateTableAs { name, query } => {
                if self.tables.contains_key(name) {
                    return Err(SqlError::TableExists(name.clone()));
                }
                let t = self.run_select(query, name)?;
                self.tables.insert(name.clone(), t);
                Ok(None)
            }
            Statement::InsertSelect { table, query } => {
                let rows = self.run_select(query, "insert")?;
                let target = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
                if rows.columns().len() != target.columns().len() {
                    return Err(SqlError::ArityMismatch {
                        table: table.clone(),
                        expected: target.columns().len(),
                        found: rows.columns().len(),
                    });
                }
                for r in rows.rows() {
                    target.push(r.clone());
                }
                Ok(None)
            }
            Statement::Delete { table, predicates } => {
                let source = self
                    .tables
                    .get(table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?
                    .clone();
                let schema: BoundSchema = source
                    .columns()
                    .iter()
                    .map(|c| (table.clone(), c.clone()))
                    .collect();
                // Pre-evaluate IN-subqueries.
                let filters = self.compile_predicates(predicates, &schema)?;
                let keep: Vec<Vec<Value>> = source
                    .rows()
                    .iter()
                    .filter(|r| !filters.iter().all(|f| f(r)))
                    .cloned()
                    .collect();
                let mut rebuilt = Table::new(
                    table.clone(),
                    &source
                        .columns()
                        .iter()
                        .map(String::as_str)
                        .collect::<Vec<_>>(),
                );
                for r in keep {
                    rebuilt.push(r);
                }
                self.tables.insert(table.clone(), rebuilt);
                Ok(None)
            }
            Statement::DropTable { name } => {
                self.tables
                    .remove(name)
                    .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
                Ok(None)
            }
        }
    }

    /// Runs a SELECT and materializes its result under `out_name`.
    pub fn run_select(&self, sel: &Select, out_name: &str) -> Result<Table, SqlError> {
        // 1. Bind FROM sources.
        let mut sources: Vec<(String, Table)> = Vec::with_capacity(sel.from.len());
        for tr in &sel.from {
            match tr {
                TableRef::Named { name, alias } => {
                    let t = self
                        .tables
                        .get(name)
                        .ok_or_else(|| SqlError::UnknownTable(name.clone()))?;
                    sources.push((alias.clone().unwrap_or_else(|| name.clone()), t.clone()));
                }
                TableRef::Subquery { query, alias } => {
                    let t = self.run_select(query, alias)?;
                    sources.push((alias.clone(), t.clone()));
                }
            }
        }

        // 2. Join left-to-right using connecting equality predicates.
        let mut consumed = vec![false; sel.predicates.len()];
        let (first_alias, first_table) = &sources[0];
        let mut schema: BoundSchema = first_table
            .columns()
            .iter()
            .map(|c| (first_alias.clone(), c.clone()))
            .collect();
        let mut rows: Vec<Vec<Value>> = first_table.rows().to_vec();
        for (alias, table) in sources.iter().skip(1) {
            let new_schema: BoundSchema = table
                .columns()
                .iter()
                .map(|c| (alias.clone(), c.clone()))
                .collect();
            // Find equality predicates bridging the current prefix and the
            // new source.
            let mut left_keys: Vec<usize> = Vec::new();
            let mut right_keys: Vec<usize> = Vec::new();
            for (pi, pred) in sel.predicates.iter().enumerate() {
                if consumed[pi] {
                    continue;
                }
                if let Predicate::Compare(Expr::Column(a), op, Expr::Column(b)) = pred {
                    if op != "=" {
                        continue;
                    }
                    let a_left = resolve(&schema, a).ok();
                    let a_right = resolve(&new_schema, a).ok();
                    let b_left = resolve(&schema, b).ok();
                    let b_right = resolve(&new_schema, b).ok();
                    if let (Some(l), Some(r)) = (a_left, b_right) {
                        left_keys.push(l);
                        right_keys.push(r);
                        consumed[pi] = true;
                    } else if let (Some(l), Some(r)) = (b_left, a_right) {
                        left_keys.push(l);
                        right_keys.push(r);
                        consumed[pi] = true;
                    }
                }
            }
            rows = hash_join(&rows, table.rows(), &left_keys, &right_keys);
            schema.extend(new_schema);
        }

        // 3. Remaining predicates as filters.
        let remaining: Vec<&Predicate> = sel
            .predicates
            .iter()
            .enumerate()
            .filter(|(pi, _)| !consumed[*pi])
            .map(|(_, p)| p)
            .collect();
        if !remaining.is_empty() {
            let filters = self.compile_predicate_refs(&remaining, &schema)?;
            rows.retain(|r| filters.iter().all(|f| f(r)));
        }

        // 4. Project / aggregate.
        let has_aggregate = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        if has_aggregate || !sel.group_by.is_empty() {
            self.project_grouped(sel, &schema, &rows, out_name)
        } else {
            self.project_plain(sel, &schema, &rows, out_name)
        }
    }

    fn project_plain(
        &self,
        sel: &Select,
        schema: &BoundSchema,
        rows: &[Vec<Value>],
        out_name: &str,
    ) -> Result<Table, SqlError> {
        let (names, evals) = self.compile_items(sel, schema)?;
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut out = Table::new(out_name, &name_refs);
        out.reserve(rows.len());
        for r in rows {
            let mut row = Vec::with_capacity(evals.len());
            for ev in &evals {
                match ev {
                    ItemEval::Scalar(f) => row.push(f(r)),
                    ItemEval::All => row.extend(r.iter().copied()),
                    ItemEval::Agg(..) => unreachable!("plain projection"),
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    fn project_grouped(
        &self,
        sel: &Select,
        schema: &BoundSchema,
        rows: &[Vec<Value>],
        out_name: &str,
    ) -> Result<Table, SqlError> {
        let (names, evals) = self.compile_items(sel, schema)?;
        if evals.iter().any(|e| matches!(e, ItemEval::All)) {
            return Err(SqlError::Unsupported("SELECT * with GROUP BY".into()));
        }
        let key_idx: Vec<usize> = sel
            .group_by
            .iter()
            .map(|c| resolve(schema, c))
            .collect::<Result<_, _>>()?;
        // Group rows (keys hashed by canonical f64 bits).
        let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for (ri, r) in rows.iter().enumerate() {
            let key: Vec<u64> = key_idx.iter().map(|&i| r[i].as_float().to_bits()).collect();
            groups.entry(key).or_default().push(ri);
        }
        // Aggregate-only queries over zero rows produce zero rows (like the
        // engine's group_by_agg; good enough for our algorithms).
        let mut entries: Vec<(Vec<u64>, Vec<usize>)> = groups.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut out = Table::new(out_name, &name_refs);
        out.reserve(entries.len());
        for (_, members) in entries {
            let first = &rows[members[0]];
            let mut row = Vec::with_capacity(evals.len());
            for ev in &evals {
                match ev {
                    ItemEval::Scalar(f) => row.push(f(first)),
                    ItemEval::Agg(fun, f) => {
                        let mut acc: Option<Value> = None;
                        for &ri in &members {
                            let v = f(&rows[ri]);
                            acc = Some(match (acc, fun) {
                                (None, AggregateFun::Sum) => Value::Float(v.as_float()),
                                (None, _) => v,
                                (Some(a), AggregateFun::Sum) => {
                                    Value::Float(a.as_float() + v.as_float())
                                }
                                (Some(a), AggregateFun::Min) => {
                                    if v.as_float() < a.as_float() {
                                        v
                                    } else {
                                        a
                                    }
                                }
                                (Some(a), AggregateFun::Max) => {
                                    if v.as_float() > a.as_float() {
                                        v
                                    } else {
                                        a
                                    }
                                }
                            });
                        }
                        row.push(acc.expect("groups are non-empty"));
                    }
                    ItemEval::All => unreachable!(),
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Compiles SELECT items to output names + evaluators.
    #[allow(clippy::type_complexity)]
    fn compile_items(
        &self,
        sel: &Select,
        schema: &BoundSchema,
    ) -> Result<(Vec<String>, Vec<ItemEval>), SqlError> {
        let mut names = Vec::new();
        let mut evals = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (_, col) in schema {
                        names.push(col.clone());
                    }
                    evals.push(ItemEval::All);
                }
                SelectItem::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| default_name(expr, i)));
                    evals.push(ItemEval::Scalar(compile_expr(expr, schema)?));
                }
                SelectItem::Aggregate { fun, arg, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| format!("agg{i}")));
                    evals.push(ItemEval::Agg(*fun, compile_expr(arg, schema)?));
                }
            }
        }
        Ok((names, evals))
    }

    fn compile_predicates(
        &self,
        preds: &[Predicate],
        schema: &BoundSchema,
    ) -> Result<Vec<RowPredicate>, SqlError> {
        let refs: Vec<&Predicate> = preds.iter().collect();
        self.compile_predicate_refs(&refs, schema)
    }

    fn compile_predicate_refs(
        &self,
        preds: &[&Predicate],
        schema: &BoundSchema,
    ) -> Result<Vec<RowPredicate>, SqlError> {
        let mut out: Vec<RowPredicate> = Vec::with_capacity(preds.len());
        for pred in preds {
            match pred {
                Predicate::Compare(lhs, op, rhs) => {
                    let l = compile_expr(lhs, schema)?;
                    let r = compile_expr(rhs, schema)?;
                    let op = op.clone();
                    out.push(Box::new(move |row| {
                        let a = l(row).as_float();
                        let b = r(row).as_float();
                        match op.as_str() {
                            "=" => a == b,
                            "<" => a < b,
                            ">" => a > b,
                            "<=" => a <= b,
                            ">=" => a >= b,
                            "<>" => a != b,
                            _ => unreachable!("parser only emits known operators"),
                        }
                    }));
                }
                Predicate::InSubquery {
                    expr,
                    query,
                    negated,
                } => {
                    let sub = self.run_select(query, "in")?;
                    if sub.columns().is_empty() {
                        return Err(SqlError::Unsupported("IN over zero-column subquery".into()));
                    }
                    let set: HashSet<u64> = sub
                        .rows()
                        .iter()
                        .map(|r| r[0].as_float().to_bits())
                        .collect();
                    let e = compile_expr(expr, schema)?;
                    let negated = *negated;
                    out.push(Box::new(move |row| {
                        let hit = set.contains(&e(row).as_float().to_bits());
                        hit != negated
                    }));
                }
            }
        }
        Ok(out)
    }
}

type RowPredicate = Box<dyn Fn(&[Value]) -> bool>;
type RowExpr = Box<dyn Fn(&[Value]) -> Value>;

enum ItemEval {
    Scalar(RowExpr),
    Agg(AggregateFun, RowExpr),
    All,
}

fn default_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        _ => format!("expr{index}"),
    }
}

/// Resolves a column reference against a bound schema.
fn resolve(schema: &BoundSchema, col: &ColumnRef) -> Result<usize, SqlError> {
    let matches: Vec<usize> = schema
        .iter()
        .enumerate()
        .filter(|(_, (alias, name))| {
            name == &col.column && col.table.as_ref().is_none_or(|t| t == alias)
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SqlError::UnknownColumn(format_col(col))),
        _ => Err(SqlError::UnknownColumn(format!(
            "{} (ambiguous)",
            format_col(col)
        ))),
    }
}

fn format_col(col: &ColumnRef) -> String {
    match &col.table {
        Some(t) => format!("{t}.{}", col.column),
        None => col.column.clone(),
    }
}

/// Compiles a scalar expression to a closure over joined rows.
fn compile_expr(expr: &Expr, schema: &BoundSchema) -> Result<RowExpr, SqlError> {
    Ok(match expr {
        Expr::Column(c) => {
            let idx = resolve(schema, c)?;
            Box::new(move |row| row[idx])
        }
        Expr::Literal(v) => {
            // Integral literals stay integers so ids/geodesic numbers keep
            // their type through INSERT ... SELECT '1' (Fig. 9c).
            let value = if v.fract() == 0.0 && v.abs() < 9e15 {
                Value::Int(*v as i64)
            } else {
                Value::Float(*v)
            };
            Box::new(move |_| value)
        }
        Expr::Binary(lhs, op, rhs) => {
            let l = compile_expr(lhs, schema)?;
            let r = compile_expr(rhs, schema)?;
            let op = *op;
            Box::new(move |row| {
                let a = l(row);
                let b = r(row);
                // Integer arithmetic when both sides are integers (except
                // division); float otherwise.
                match (a, b, op) {
                    (Value::Int(x), Value::Int(y), '+') => Value::Int(x + y),
                    (Value::Int(x), Value::Int(y), '-') => Value::Int(x - y),
                    (Value::Int(x), Value::Int(y), '*') => Value::Int(x * y),
                    (a, b, '+') => Value::Float(a.as_float() + b.as_float()),
                    (a, b, '-') => Value::Float(a.as_float() - b.as_float()),
                    (a, b, '*') => Value::Float(a.as_float() * b.as_float()),
                    (a, b, '/') => Value::Float(a.as_float() / b.as_float()),
                    _ => unreachable!("parser only emits + - * /"),
                }
            })
        }
    })
}

/// Hash join of materialized row sets on canonical-f64 keys; with no keys
/// it degrades to the cross product (comma-join without a bridge).
fn hash_join(
    left: &[Vec<Value>],
    right: &[Vec<Value>],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Vec<Value>> {
    if left_keys.is_empty() {
        let mut out = Vec::with_capacity(left.len() * right.len());
        for l in left {
            for r in right {
                let mut row = l.clone();
                row.extend(r.iter().copied());
                out.push(row);
            }
        }
        return out;
    }
    let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        let key: Vec<u64> = right_keys
            .iter()
            .map(|&k| r[k].as_float().to_bits())
            .collect();
        index.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    for l in left {
        let key: Vec<u64> = left_keys
            .iter()
            .map(|&k| l[k].as_float().to_bits())
            .collect();
        if let Some(matches) = index.get(&key) {
            for &i in matches {
                let mut row = l.clone();
                row.extend(right[i].iter().copied());
                out.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_edges() -> Database {
        let mut db = Database::new();
        let mut a = Table::new("A", &["s", "t", "w"]);
        for (s, t, w) in [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)] {
            a.push(vec![Value::Int(s), Value::Int(t), Value::Float(w)]);
        }
        db.insert_table("A", a);
        let mut e = Table::new("E", &["v", "c", "b"]);
        e.push(vec![Value::Int(0), Value::Int(0), Value::Float(0.1)]);
        e.push(vec![Value::Int(0), Value::Int(1), Value::Float(-0.1)]);
        db.insert_table("E", e);
        db
    }

    #[test]
    fn select_filter_project() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, w * 2 as w2 from A where s = 1")
            .unwrap()
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.columns(), &["s".to_string(), "w2".to_string()]);
        assert_eq!(r.rows()[0][1], Value::Float(2.0));
    }

    #[test]
    fn join_via_where_equality() {
        let mut db = db_with_edges();
        let r = db
            .execute("select A.t, E.b from A, E where A.s = E.v")
            .unwrap()
            .unwrap();
        // E has node 0 only; A rows with s = 0: (0,1). Two E rows (classes).
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn cross_product_without_bridge() {
        let mut db = db_with_edges();
        let r = db.execute("select A.s, E.c from A, E").unwrap().unwrap();
        assert_eq!(r.len(), 4 * 2);
    }

    #[test]
    fn group_by_sum_matches_engine() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, sum(w * w) as d from A group by s")
            .unwrap()
            .unwrap();
        assert_eq!(r.len(), 3);
        // Node 1 has edges of weight 1 and 2 → d = 5.
        let d1 = r.rows().iter().find(|row| row[0] == Value::Int(1)).unwrap()[1];
        assert_eq!(d1, Value::Float(5.0));
    }

    /// Fig. 9a end-to-end: CREATE TABLE H2 AS the Ĥ² self-join.
    #[test]
    fn fig9a_h_squared() {
        let mut db = Database::new();
        let mut h = Table::new("H", &["c1", "c2", "h"]);
        let vals = [[0.2, -0.1], [-0.1, 0.2]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                h.push(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Float(v),
                ]);
            }
        }
        db.insert_table("H", h);
        db.execute(
            "create table H2 as select H1.c1, H2.c2, sum(H1.h*H2.h) as h \
             from H H1, H H2 where H1.c2 = H2.c1 group by H1.c1, H2.c2",
        )
        .unwrap();
        let h2 = db.table("H2").unwrap();
        assert_eq!(h2.len(), 4);
        // (Ĥ²)(0,0) = 0.2·0.2 + (−0.1)·(−0.1) = 0.05.
        let v00 = h2
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(0) && r[1] == Value::Int(0))
            .unwrap()[2];
        assert!((v00.as_float() - 0.05).abs() < 1e-12);
    }

    /// Fig. 9b end-to-end: top-belief assignment via FROM-subquery.
    #[test]
    fn fig9b_top_beliefs() {
        let mut db = Database::new();
        let mut b = Table::new("B", &["v", "c", "b"]);
        for (v, c, val) in [(0, 0, 0.4), (0, 1, -0.4), (1, 0, -0.2), (1, 1, 0.2)] {
            b.push(vec![Value::Int(v), Value::Int(c), Value::Float(val)]);
        }
        db.insert_table("B", b);
        let top = db
            .execute(
                "select B.v, B.c from B, \
                 (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
                 where B.v = X.v and B.b = X.b",
            )
            .unwrap()
            .unwrap();
        assert_eq!(top.len(), 2);
        let classes: HashMap<i64, i64> = top
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int()))
            .collect();
        assert_eq!(classes[&0], 0);
        assert_eq!(classes[&1], 1);
    }

    /// Fig. 9c end-to-end: the BFS step with NOT IN.
    #[test]
    fn fig9c_bfs_step() {
        let mut db = db_with_edges();
        let mut g = Table::new("G", &["v", "g"]);
        g.push(vec![Value::Int(0), Value::Int(0)]);
        db.insert_table("G", g);
        db.execute(
            "insert into G (select A.t, '1' from G, A where G.v = A.s and G.g = '0' \
             and A.t not in (select G.v from G))",
        )
        .unwrap();
        let g = db.table("G").unwrap();
        assert_eq!(g.len(), 2);
        assert!(g
            .rows()
            .iter()
            .any(|r| r[0] == Value::Int(1) && r[1] == Value::Int(1)));
    }

    /// Fig. 9d end-to-end: the upsert as DELETE + INSERT.
    #[test]
    fn fig9d_upsert() {
        let mut db = Database::new();
        let mut b = Table::new("B", &["v", "c", "b"]);
        b.push(vec![Value::Int(0), Value::Int(0), Value::Float(1.0)]);
        b.push(vec![Value::Int(1), Value::Int(0), Value::Float(2.0)]);
        db.insert_table("B", b);
        let mut bn = Table::new("Bn", &["v", "c", "b"]);
        bn.push(vec![Value::Int(1), Value::Int(0), Value::Float(9.0)]);
        db.insert_table("Bn", bn);
        db.execute_script(
            "delete from B where v in (select Bn.v from Bn); insert into B select * from Bn;",
        )
        .unwrap();
        let b = db.table("B").unwrap();
        assert_eq!(b.len(), 2);
        let v1 = b.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(v1[2], Value::Float(9.0));
    }

    #[test]
    fn error_paths() {
        let mut db = db_with_edges();
        assert!(matches!(
            db.execute("select x from A"),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("select s from Nope"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("create table A as select s from A"),
            Err(SqlError::TableExists(_))
        ));
        assert!(matches!(
            db.execute("insert into E select s from A"),
            Err(SqlError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.execute("drop table Nope"),
            Err(SqlError::UnknownTable(_))
        ));
        // Ambiguous unqualified column across a self-join.
        assert!(matches!(
            db.execute("select s from A A1, A A2 where A1.s = A2.t"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn integer_literal_typing() {
        let mut db = db_with_edges();
        let r = db
            .execute("select s, '1' from A where s = 0")
            .unwrap()
            .unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(1));
        let r2 = db
            .execute("select 1.5 from A where s = 0")
            .unwrap()
            .unwrap();
        assert_eq!(r2.rows()[0][0], Value::Float(1.5));
    }
}

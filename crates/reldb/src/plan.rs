//! Typed query plans and the cost-bounded planner.
//!
//! The SQL layer is split Planner → [`Plan`] (node tree) → executor:
//! [`crate::exec::Database`] classifies WHERE predicates (pushdown below
//! joins vs. equi-join edges vs. residual filters), asks [`order_joins`]
//! for a join order, and executes the resulting left-deep tree. The
//! ordering cost model is built from the per-table statistics
//! ([`crate::stats::TableStats`]) every [`crate::Table`] maintains.
//!
//! # Pessimistic cardinality bounds
//!
//! All estimates are *upper bounds* — numbers the data provably cannot
//! exceed — in the spirit of worst-case output bounds for join queries
//! (AGM bounds; Abo Khamis–Ngo–Suciu bounds under functional
//! dependencies) and pessimistic cardinality estimation. Never
//! independence-assumption guesses: a plan chosen by minimum bound is a
//! plan whose worst case is smallest. For a join `S ⋈ T` on key pairs
//! `(x, y)` the bound is
//!
//! ```text
//! |S ⋈ T|  ≤  min( |S|·|T|,                              cross product
//!                  |S|·maxfreq_T(y),                     T's max degree
//!                  |T|·maxfreq_S(x),                     S's max degree
//!                  min(d_S(x), d_T(y))·maxfreq_S(x)·maxfreq_T(y) )
//! ```
//!
//! taking the tightest key pair, where `d` is the distinct count and
//! `maxfreq` the multiplicity of the most frequent value. Degree
//! statistics propagate through join prefixes (a column's max frequency
//! can grow by at most the joined side's per-row fanout), so multi-way
//! prefixes stay bounded. Join orders are enumerated left-deep over
//! subsets (exhaustive dynamic programming up to [`DP_MAX_SOURCES`]
//! relations, greedy beyond), minimizing the *sum of intermediate-result
//! bounds* with a deterministic lexicographic tie-break.

use crate::stats::TableStats;
use std::fmt::Write as _;

/// Upper-bound statistics for one column of a (possibly intermediate)
/// relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColBound {
    /// Upper bound on the number of distinct values.
    pub distinct: f64,
    /// Upper bound on the multiplicity of the most frequent value (the
    /// column's max degree as a join key).
    pub max_freq: f64,
}

/// Planner-facing estimate of one FROM source after predicate pushdown.
#[derive(Clone, Debug)]
pub struct SourceEstimate {
    /// Upper bound on the rows surviving the pushed-down predicates.
    pub rows: f64,
    /// Per-column bounds; `None` for untracked (float-bearing) columns,
    /// for which only `rows` bounds anything.
    pub cols: Vec<Option<ColBound>>,
}

impl SourceEstimate {
    /// Exact estimate from a base table's maintained statistics.
    pub fn from_stats(stats: &TableStats) -> Self {
        let cols = stats
            .columns()
            .iter()
            .map(|c| match (c.distinct(), c.max_freq()) {
                (Some(d), Some(m)) => Some(ColBound {
                    distinct: d as f64,
                    max_freq: m as f64,
                }),
                _ => None,
            })
            .collect();
        SourceEstimate {
            rows: stats.rows() as f64,
            cols,
        }
    }

    /// Folds a pushed-down `col = literal` equality into the estimate: at
    /// most `maxfreq(col)` rows can survive, and the column becomes
    /// single-valued. Still an upper bound — the literal may match
    /// nothing.
    pub fn apply_eq_literal(&mut self, col: usize) {
        if let Some(cb) = self.cols[col] {
            self.rows = self.rows.min(cb.max_freq);
            self.cols[col] = Some(ColBound {
                distinct: cb.distinct.min(1.0),
                max_freq: cb.max_freq,
            });
            self.clamp_to_rows();
        }
    }

    /// Tightens every column bound to the row bound (no column of an
    /// `r`-row relation can have more than `r` distinct values or a value
    /// with multiplicity above `r`).
    pub fn clamp_to_rows(&mut self) {
        for cb in self.cols.iter_mut().flatten() {
            cb.distinct = cb.distinct.min(self.rows);
            cb.max_freq = cb.max_freq.min(self.rows);
        }
    }
}

/// An equi-join edge between two FROM sources, as `(source index, column
/// index)` endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: (usize, usize),
    /// The other endpoint (a different source).
    pub b: (usize, usize),
}

/// One step of the chosen left-deep join order.
#[derive(Clone, Debug)]
pub struct JoinStep {
    /// Index of the source joined to the prefix at this step.
    pub source: usize,
    /// Pessimistic upper bound on the rows after this step.
    pub bound: f64,
}

/// The chosen join order with per-prefix bounds.
#[derive(Clone, Debug)]
pub struct JoinOrder {
    /// First source of the left-deep chain.
    pub first: usize,
    /// Remaining sources in execution order.
    pub steps: Vec<JoinStep>,
}

impl JoinOrder {
    /// All sources in execution order.
    pub fn sources(&self) -> Vec<usize> {
        let mut v = vec![self.first];
        v.extend(self.steps.iter().map(|s| s.source));
        v
    }

    /// Sum of the intermediate-result bounds (the planner's cost).
    pub fn cost(&self) -> f64 {
        self.steps.iter().map(|s| s.bound).sum()
    }
}

/// Largest source count ordered by exhaustive subset DP; beyond this the
/// planner falls back to a greedy bound-minimal construction.
pub const DP_MAX_SOURCES: usize = 12;

/// Per-(prefix, candidate) join bound plus the degree multipliers needed
/// to propagate column stats into the merged prefix.
fn join_step_bound(
    prefix_bound: f64,
    prefix_cols: &[Option<ColBound>],
    mask: u64,
    t: usize,
    sources: &[SourceEstimate],
    edges: &[JoinEdge],
    offsets: &[usize],
) -> (f64, f64, f64) {
    let te = &sources[t];
    let mut bound = prefix_bound * te.rows;
    // Per-row fanout caps: how many output rows one prefix row (resp. one
    // row of t) can produce. No join key → the other side's row bound.
    let mut mult_prefix = te.rows;
    let mut mult_t = prefix_bound;
    for e in edges {
        let (p, q) = if e.a.0 == t && mask & (1u64 << e.b.0) != 0 {
            (e.b, e.a) // p = prefix endpoint, q = endpoint on t
        } else if e.b.0 == t && mask & (1u64 << e.a.0) != 0 {
            (e.a, e.b)
        } else {
            continue;
        };
        let ps = prefix_cols[offsets[p.0] + p.1];
        let ts = te.cols[q.1];
        if let Some(ts) = ts {
            bound = bound.min(prefix_bound * ts.max_freq);
            mult_prefix = mult_prefix.min(ts.max_freq);
        }
        if let Some(ps) = ps {
            bound = bound.min(te.rows * ps.max_freq);
            mult_t = mult_t.min(ps.max_freq);
        }
        if let (Some(ps), Some(ts)) = (ps, ts) {
            bound = bound.min(ps.distinct.min(ts.distinct) * ps.max_freq * ts.max_freq);
        }
    }
    (bound, mult_prefix, mult_t)
}

/// Merges column bounds after a join step: prefix columns fan out by at
/// most `mult_prefix`, the new source's by at most `mult_t`, and nothing
/// exceeds the output bound. `step` is [`join_step_bound`]'s
/// `(bound, mult_prefix, mult_t)` result for this candidate.
fn merge_cols(
    prefix_cols: &[Option<ColBound>],
    mask: u64,
    t: usize,
    sources: &[SourceEstimate],
    offsets: &[usize],
    step: (f64, f64, f64),
) -> Vec<Option<ColBound>> {
    let (bound, mult_prefix, mult_t) = step;
    let mut out = vec![None; prefix_cols.len()];
    for (s, src) in sources.iter().enumerate() {
        let (member, mult) = if mask & (1u64 << s) != 0 {
            (true, mult_prefix)
        } else if s == t {
            (false, mult_t)
        } else {
            continue;
        };
        for (c, slot) in src.cols.iter().enumerate() {
            let cb = if member {
                prefix_cols[offsets[s] + c]
            } else {
                *slot
            };
            if let Some(cb) = cb {
                out[offsets[s] + c] = Some(ColBound {
                    distinct: cb.distinct.min(bound),
                    max_freq: (cb.max_freq * mult).min(bound),
                });
            }
        }
    }
    out
}

fn place_single(
    sources: &[SourceEstimate],
    i: usize,
    offsets: &[usize],
    width: usize,
) -> Vec<Option<ColBound>> {
    let mut cols = vec![None; width];
    for (c, cb) in sources[i].cols.iter().enumerate() {
        cols[offsets[i] + c] = *cb;
    }
    cols
}

/// Chooses a left-deep join order minimizing the summed pessimistic
/// intermediate-result bounds. Exhaustive subset DP up to
/// [`DP_MAX_SOURCES`] sources, greedy beyond; ties break on the
/// lexicographically smallest source sequence, so the result is fully
/// deterministic.
pub fn order_joins(sources: &[SourceEstimate], edges: &[JoinEdge]) -> JoinOrder {
    let n = sources.len();
    assert!(n >= 1, "order_joins needs at least one source");
    let mut offsets = Vec::with_capacity(n);
    let mut width = 0usize;
    for s in sources {
        offsets.push(width);
        width += s.cols.len();
    }
    if n == 1 {
        return JoinOrder {
            first: 0,
            steps: Vec::new(),
        };
    }
    if n <= DP_MAX_SOURCES {
        order_joins_dp(sources, edges, &offsets, width)
    } else {
        order_joins_greedy(sources, edges, &offsets, width)
    }
}

struct DpEntry {
    cost: f64,
    bound: f64,
    cols: Vec<Option<ColBound>>,
    order: Vec<usize>,
    bounds: Vec<f64>,
}

fn order_joins_dp(
    sources: &[SourceEstimate],
    edges: &[JoinEdge],
    offsets: &[usize],
    width: usize,
) -> JoinOrder {
    let n = sources.len();
    let full: u64 = (1u64 << n) - 1;
    let mut best: Vec<Option<DpEntry>> = (0..=full).map(|_| None).collect();
    for i in 0..n {
        best[1usize << i] = Some(DpEntry {
            cost: 0.0,
            bound: sources[i].rows,
            cols: place_single(sources, i, offsets, width),
            order: vec![i],
            bounds: Vec::new(),
        });
    }
    for mask in 1..=full {
        let Some(entry) = best[mask as usize].take() else {
            continue;
        };
        if mask != full {
            for t in 0..n {
                if mask & (1u64 << t) != 0 {
                    continue;
                }
                let (bound, mult_prefix, mult_t) =
                    join_step_bound(entry.bound, &entry.cols, mask, t, sources, edges, offsets);
                let cost = entry.cost + bound;
                let next = (mask | (1u64 << t)) as usize;
                let better = match &best[next] {
                    None => true,
                    Some(cur) => {
                        cost < cur.cost
                            || (cost == cur.cost && {
                                let mut cand = entry.order.clone();
                                cand.push(t);
                                cand < cur.order
                            })
                    }
                };
                if better {
                    let cols = merge_cols(
                        &entry.cols,
                        mask,
                        t,
                        sources,
                        offsets,
                        (bound, mult_prefix, mult_t),
                    );
                    let mut order = entry.order.clone();
                    order.push(t);
                    let mut bounds = entry.bounds.clone();
                    bounds.push(bound);
                    best[next] = Some(DpEntry {
                        cost,
                        bound,
                        cols,
                        order,
                        bounds,
                    });
                }
            }
        }
        best[mask as usize] = Some(entry);
    }
    let winner = best[full as usize]
        .take()
        .expect("DP reaches the full source set");
    JoinOrder {
        first: winner.order[0],
        steps: winner.order[1..]
            .iter()
            .zip(&winner.bounds)
            .map(|(&source, &bound)| JoinStep { source, bound })
            .collect(),
    }
}

fn order_joins_greedy(
    sources: &[SourceEstimate],
    edges: &[JoinEdge],
    offsets: &[usize],
    width: usize,
) -> JoinOrder {
    let n = sources.len();
    // Start from the smallest row bound (lowest index on ties).
    let mut first = 0;
    for i in 1..n {
        if sources[i].rows < sources[first].rows {
            first = i;
        }
    }
    let mut mask = 1u64 << first;
    let mut bound = sources[first].rows;
    let mut cols = place_single(sources, first, offsets, width);
    let mut steps = Vec::with_capacity(n - 1);
    while (mask.count_ones() as usize) < n {
        let mut pick: Option<(usize, f64, f64, f64)> = None;
        for t in 0..n {
            if mask & (1u64 << t) != 0 {
                continue;
            }
            let (b, mp, mt) = join_step_bound(bound, &cols, mask, t, sources, edges, offsets);
            if pick.is_none_or(|p| b < p.1) {
                pick = Some((t, b, mp, mt));
            }
        }
        let (t, b, mp, mt) = pick.expect("an unjoined source remains");
        cols = merge_cols(&cols, mask, t, sources, offsets, (b, mp, mt));
        mask |= 1u64 << t;
        bound = b;
        steps.push(JoinStep {
            source: t,
            bound: b,
        });
    }
    JoinOrder { first, steps }
}

/// A node of a compiled query plan. Every node carries a stable `id`
/// indexing the executor's actual-cardinality array and the planner's
/// pessimistic output bound.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// Base-table (or materialized subquery) scan with pushed-down
    /// filters applied inside the shard-segment scan.
    Scan {
        /// Node id.
        id: usize,
        /// Display label: the source's alias or table name.
        label: String,
        /// Rows in the underlying relation before filtering.
        input_rows: usize,
        /// Rendered pushed-down predicates.
        pushed: Vec<String>,
        /// Pessimistic bound on the scan output.
        bound: f64,
    },
    /// Hash equi-join of the left-deep prefix (left child) with one scan
    /// (right child). The executor builds the hash index on whichever
    /// input is actually smaller at run time.
    HashJoin {
        /// Node id.
        id: usize,
        /// The joined prefix.
        left: Box<PlanNode>,
        /// The newly joined source.
        right: Box<PlanNode>,
        /// Rendered equi-join keys; empty means cross product.
        keys: Vec<String>,
        /// Pessimistic bound on the join output.
        bound: f64,
    },
    /// Residual filter above the join tree (predicates that span several
    /// sources without being equi-join keys).
    Filter {
        /// Node id.
        id: usize,
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered residual predicates.
        preds: Vec<String>,
        /// Pessimistic bound on the filter output.
        bound: f64,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Node id.
        id: usize,
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered GROUP BY columns.
        group_by: Vec<String>,
        /// Pessimistic bound on the number of groups.
        bound: f64,
    },
    /// Final projection.
    Project {
        /// Node id.
        id: usize,
        /// Input node.
        input: Box<PlanNode>,
        /// Rendered projection items.
        items: Vec<String>,
        /// Pessimistic bound on the output (the input's bound).
        bound: f64,
    },
}

impl PlanNode {
    /// The node's id.
    pub fn id(&self) -> usize {
        match self {
            PlanNode::Scan { id, .. }
            | PlanNode::HashJoin { id, .. }
            | PlanNode::Filter { id, .. }
            | PlanNode::Aggregate { id, .. }
            | PlanNode::Project { id, .. } => *id,
        }
    }

    /// The node's pessimistic output bound.
    pub fn bound(&self) -> f64 {
        match self {
            PlanNode::Scan { bound, .. }
            | PlanNode::HashJoin { bound, .. }
            | PlanNode::Filter { bound, .. }
            | PlanNode::Aggregate { bound, .. }
            | PlanNode::Project { bound, .. } => *bound,
        }
    }
}

/// Actual execution counts for one plan node, filled in by the executor.
#[derive(Clone, Debug, Default)]
pub struct NodeActual {
    /// Rows the node actually produced.
    pub rows: Option<usize>,
    /// Free-form execution note (e.g. which join side the hash index was
    /// built on).
    pub note: Option<String>,
}

/// A compiled query plan: the node tree plus the number of nodes (ids are
/// `0..node_count`).
#[derive(Clone, Debug)]
pub struct Plan {
    /// Root of the plan tree.
    pub root: PlanNode,
    /// Number of nodes; every node id is below this.
    pub node_count: usize,
}

fn fmt_bound(b: f64) -> String {
    if b < 1e12 {
        format!("{b:.0}")
    } else {
        format!("{b:.3e}")
    }
}

impl Plan {
    /// Scan labels in join-execution order (the chosen join order).
    pub fn scan_order(&self) -> Vec<String> {
        fn walk(node: &PlanNode, out: &mut Vec<String>) {
            match node {
                PlanNode::Scan { label, .. } => out.push(label.clone()),
                PlanNode::HashJoin { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                PlanNode::Filter { input, .. }
                | PlanNode::Aggregate { input, .. }
                | PlanNode::Project { input, .. } => walk(input, out),
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Renders the plan tree, one node per line, with each node's
    /// pessimistic bound (`bound<=`) next to the actual cardinality
    /// (`actual=`) from execution. `actuals` is indexed by node id; pass
    /// `&[]` to render estimates only.
    pub fn render(&self, actuals: &[NodeActual]) -> String {
        let mut out = String::new();
        render_node(&self.root, actuals, 0, &mut out);
        out
    }
}

fn render_node(node: &PlanNode, actuals: &[NodeActual], depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let (id, children): (usize, Vec<&PlanNode>) = match node {
        PlanNode::Scan {
            id,
            label,
            input_rows,
            pushed,
            bound,
        } => {
            let _ = write!(out, "Scan {label}");
            if !pushed.is_empty() {
                let _ = write!(out, " [{}]", pushed.join(" and "));
            }
            let _ = write!(out, " rows={input_rows} bound<={}", fmt_bound(*bound));
            (*id, vec![])
        }
        PlanNode::HashJoin {
            id,
            left,
            right,
            keys,
            bound,
        } => {
            if keys.is_empty() {
                let _ = write!(out, "HashJoin (cross product)");
            } else {
                let _ = write!(out, "HashJoin on {}", keys.join(" and "));
            }
            let _ = write!(out, " bound<={}", fmt_bound(*bound));
            (*id, vec![left.as_ref(), right.as_ref()])
        }
        PlanNode::Filter {
            id,
            input,
            preds,
            bound,
        } => {
            let _ = write!(
                out,
                "Filter [{}] bound<={}",
                preds.join(" and "),
                fmt_bound(*bound)
            );
            (*id, vec![input.as_ref()])
        }
        PlanNode::Aggregate {
            id,
            input,
            group_by,
            bound,
        } => {
            let _ = write!(
                out,
                "Aggregate group by [{}] bound<={}",
                group_by.join(", "),
                fmt_bound(*bound)
            );
            (*id, vec![input.as_ref()])
        }
        PlanNode::Project {
            id,
            input,
            items,
            bound,
        } => {
            let _ = write!(
                out,
                "Project [{}] bound<={}",
                items.join(", "),
                fmt_bound(*bound)
            );
            (*id, vec![input.as_ref()])
        }
    };
    if let Some(actual) = actuals.get(id) {
        if let Some(rows) = actual.rows {
            let _ = write!(out, " actual={rows}");
        }
        if let Some(note) = &actual.note {
            let _ = write!(out, " ({note})");
        }
    }
    out.push('\n');
    for child in children {
        render_node(child, actuals, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(rows: f64, cols: &[(f64, f64)]) -> SourceEstimate {
        SourceEstimate {
            rows,
            cols: cols
                .iter()
                .map(|&(d, m)| {
                    Some(ColBound {
                        distinct: d,
                        max_freq: m,
                    })
                })
                .collect(),
        }
    }

    /// Chain R(k,p) ⋈ S(k,j) ⋈ Sel(j) with a hub key in R⋈S: the planner
    /// must start from the selective S⋈Sel side, not the hub join.
    #[test]
    fn chain_avoids_hub_join_first() {
        // R: 2000 rows, k has a 400-row hub. S: 2000 rows, same hub on k,
        // j nearly unique. Sel: 50 rows, j unique.
        let r = est(2000.0, &[(1601.0, 400.0), (2000.0, 1.0)]);
        let s = est(2000.0, &[(1601.0, 400.0), (1000.0, 2.0)]);
        let sel = est(50.0, &[(50.0, 1.0)]);
        let edges = [
            JoinEdge {
                a: (0, 0),
                b: (1, 0),
            }, // R.k = S.k
            JoinEdge {
                a: (1, 1),
                b: (2, 0),
            }, // S.j = Sel.j
        ];
        let order = order_joins(&[r, s, sel], &edges);
        let seq = order.sources();
        // S and Sel (indices 1, 2) must come before R (index 0).
        assert_eq!(seq[2], 0, "hub join deferred to last: {seq:?}");
        // And the chosen cost must beat the fixed left-to-right order's.
        let fixed_first_bound = 2000.0 * 400.0; // R⋈S via max degree
        assert!(order.steps[0].bound < fixed_first_bound / 100.0);
    }

    /// Star: two dimension tables only connect through the fact table —
    /// joining them first would be a cross product.
    #[test]
    fn star_avoids_cross_product() {
        let d1 = est(300.0, &[(300.0, 1.0)]);
        let d2 = est(300.0, &[(300.0, 1.0)]);
        let fact = est(2000.0, &[(500.0, 4.0), (500.0, 4.0), (2000.0, 1.0)]);
        let edges = [
            JoinEdge {
                a: (2, 0),
                b: (0, 0),
            }, // F.a = D1.a
            JoinEdge {
                a: (2, 1),
                b: (1, 0),
            }, // F.b = D2.b
        ];
        let order = order_joins(&[d1, d2, fact], &edges);
        let seq = order.sources();
        // The fact table must be joined second (never D1 ⋈ D2 first).
        assert_eq!(seq[1], 2, "no cross product: {seq:?}");
        // Both steps stay far below the 300·300 cross product.
        for step in &order.steps {
            assert!(step.bound <= 300.0 * 4.0 + 1.0, "{:?}", order.steps);
        }
    }

    /// An empty relation collapses every bound that joins it to zero, so
    /// it is joined as early as possible.
    #[test]
    fn empty_relation_zeroes_bounds() {
        let a = est(1000.0, &[(1000.0, 1.0)]);
        let b = est(0.0, &[(0.0, 0.0)]);
        let c = est(1000.0, &[(1000.0, 1.0)]);
        let edges = [
            JoinEdge {
                a: (0, 0),
                b: (1, 0),
            },
            JoinEdge {
                a: (1, 0),
                b: (2, 0),
            },
        ];
        let order = order_joins(&[a, b, c], &edges);
        assert_eq!(order.steps.last().unwrap().bound, 0.0);
        assert_eq!(order.cost(), 0.0);
    }

    /// Untracked (float) join keys fall back to cross-product × row
    /// bounds without panicking.
    #[test]
    fn untracked_columns_fall_back_to_row_bounds() {
        let a = SourceEstimate {
            rows: 10.0,
            cols: vec![None],
        };
        let b = SourceEstimate {
            rows: 20.0,
            cols: vec![None],
        };
        let order = order_joins(
            &[a, b],
            &[JoinEdge {
                a: (0, 0),
                b: (1, 0),
            }],
        );
        assert_eq!(order.steps[0].bound, 200.0);
    }

    /// Greedy (n > DP_MAX_SOURCES) and DP agree on an easy chain.
    #[test]
    fn greedy_handles_many_sources() {
        let sources: Vec<SourceEstimate> = (0..14)
            .map(|i| est(10.0 + i as f64, &[(10.0, 1.0), (10.0, 1.0)]))
            .collect();
        let edges: Vec<JoinEdge> = (0..13)
            .map(|i| JoinEdge {
                a: (i, 1),
                b: (i + 1, 0),
            })
            .collect();
        let order = order_joins(&sources, &edges);
        assert_eq!(order.sources().len(), 14);
        // All 14 sources appear exactly once.
        let mut seen = order.sources();
        seen.sort_unstable();
        assert_eq!(seen, (0..14).collect::<Vec<_>>());
    }

    #[test]
    fn render_shows_bounds_and_actuals() {
        let plan = Plan {
            root: PlanNode::Project {
                id: 2,
                items: vec!["A.s".into()],
                bound: 40.0,
                input: Box::new(PlanNode::HashJoin {
                    id: 3,
                    keys: vec!["A.s = B.v".into()],
                    bound: 40.0,
                    left: Box::new(PlanNode::Scan {
                        id: 0,
                        label: "A".into(),
                        input_rows: 100,
                        pushed: vec!["A.w > 0".into()],
                        bound: 100.0,
                    }),
                    right: Box::new(PlanNode::Scan {
                        id: 1,
                        label: "B".into(),
                        input_rows: 10,
                        pushed: vec![],
                        bound: 10.0,
                    }),
                }),
            },
            node_count: 4,
        };
        let actuals = vec![
            NodeActual {
                rows: Some(80),
                note: None,
            },
            NodeActual {
                rows: Some(10),
                note: None,
            },
            NodeActual {
                rows: Some(33),
                note: None,
            },
            NodeActual {
                rows: Some(33),
                note: Some("build=B".into()),
            },
        ];
        let text = plan.render(&actuals);
        assert!(text.contains("Project [A.s] bound<=40 actual=33"));
        assert!(text.contains("HashJoin on A.s = B.v bound<=40 actual=33 (build=B)"));
        assert!(text.contains("Scan A [A.w > 0] rows=100 bound<=100 actual=80"));
        assert!(text.contains("Scan B rows=10 bound<=10 actual=10"));
        // Estimates-only rendering works too.
        assert!(plan.render(&[]).contains("bound<=40"));
    }
}

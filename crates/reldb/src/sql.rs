//! The paper's SQL algorithms, expressed over the relational engine.
//!
//! Schemas follow Sect. 5.3 verbatim:
//!
//! * `A(s, t, w)` — weighted adjacency (each undirected edge stored in
//!   both directions),
//! * `E(v, c, b)` — explicit residual beliefs,
//! * `H(c1, c2, h)` — residual coupling strengths,
//! * derived: `D(v, d)` (squared-weight degrees) and `H2(c1, c2, h)` (Ĥ²,
//!   Eq. 20),
//! * results: `B(v, c, b)` (final beliefs) and `G(v, g)` (geodesic
//!   numbers, Sect. 6.3).
//!
//! Algorithm-to-method map:
//!
//! | Paper          | Method                        |
//! |----------------|-------------------------------|
//! | Algorithm 1    | [`SqlDb::linbp`]              |
//! | Algorithm 2    | [`SqlDb::sbp`]                |
//! | Algorithm 3    | [`SqlDb::sbp_add_explicit`]   |
//! | Algorithm 4    | [`SqlDb::sbp_add_edges`]      |
//!
//! One deviation is documented inline: Algorithm 4's guard `¬(G(t,gt),
//! gt < gs)` admits edges between equal-geodesic nodes, which the paper's
//! own case analysis (Appendix C, case 1) says must be ignored; we use
//! `gt ≤ gs`, the reading consistent with that analysis.

use crate::engine::{AggFun, Table, Value};
use lsbp::beliefs::{BeliefMatrix, ExplicitBeliefs};
use lsbp_graph::Graph;
use lsbp_linalg::{Mat, ParallelismConfig};

/// A relational database holding one classification problem.
#[derive(Clone, Debug)]
pub struct SqlDb {
    n: usize,
    k: usize,
    a: Table,
    e: Table,
    h: Table,
    parallelism: ParallelismConfig,
}

/// The persistent state of a relational SBP computation: the belief table
/// `B(v,c,b)` and geodesic table `G(v,g)`, kept for incremental updates.
#[derive(Clone, Debug)]
pub struct SqlSbpState {
    /// Final beliefs `B(v, c, b)`.
    pub b: Table,
    /// Geodesic numbers `G(v, g)`.
    pub g: Table,
}

impl SqlDb {
    /// Loads the relational representation of a labeled graph.
    pub fn new(graph: &Graph, explicit: &ExplicitBeliefs, h_residual: &Mat) -> Self {
        assert_eq!(
            graph.num_nodes(),
            explicit.n(),
            "graph/beliefs node count mismatch"
        );
        let k = explicit.k();
        assert_eq!(h_residual.rows(), k, "coupling arity mismatch");
        // Parallel edges merge into one row with summed weight — the same
        // semantics as the CSR adjacency matrix (Sect. 5.2: parallel paths
        // add up, and the echo-cancellation degree is the square of the
        // *merged* weight).
        let mut raw = Table::new("Araw", &["s", "t", "w"]);
        raw.reserve(graph.num_directed_edges());
        for (s, t, w) in graph.edges() {
            raw.push(vec![
                Value::Int(s as i64),
                Value::Int(t as i64),
                Value::Float(w),
            ]);
            raw.push(vec![
                Value::Int(t as i64),
                Value::Int(s as i64),
                Value::Float(w),
            ]);
        }
        let a = raw
            .group_by_agg("A", &["s", "t"], "w", AggFun::SumFloat, |r| r[2])
            .project("A", &["s", "t", "w"], |r| vec![r[0], r[1], r[2]]);
        let e = explicit_to_table(explicit);
        let mut h = Table::new("H", &["c1", "c2", "h"]);
        for c1 in 0..k {
            for c2 in 0..k {
                h.push(vec![
                    Value::Int(c1 as i64),
                    Value::Int(c2 as i64),
                    Value::Float(h_residual[(c1, c2)]),
                ]);
            }
        }
        Self {
            n: graph.num_nodes(),
            k,
            a,
            e,
            h,
            parallelism: ParallelismConfig::default(),
        }
    }

    /// Picks serial vs. pooled execution for the engine's hot joins (the
    /// per-iteration `A ⋈ B` probes of [`SqlDb::linbp`]). The default
    /// follows `LSBP_THREADS` and `LSBP_SHARDS`; a shard count above 1
    /// makes every hot probe stream the edge relation in that many
    /// contiguous storage segments, one pool region per segment — the
    /// relational mirror of the native engines' sharded execution.
    /// Results are identical either way.
    pub fn with_parallelism(mut self, cfg: ParallelismConfig) -> Self {
        self.parallelism = cfg;
        self
    }

    /// Node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Class count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The adjacency relation `A(s,t,w)`.
    pub fn a(&self) -> &Table {
        &self.a
    }

    /// The explicit-belief relation `E(v,c,b)`.
    pub fn e(&self) -> &Table {
        &self.e
    }

    /// `D(v, d)` — `D(s, sum(w·w)) :− A(s, t, w)` (Sect. 5.3).
    pub fn degree_table(&self) -> Table {
        self.a
            .group_by_agg("D", &["s"], "d", AggFun::SumFloat, |r| {
                let w = r[2].as_float();
                Value::Float(w * w)
            })
    }

    /// `H2(c1, c2, sum(h1·h2)) :− H(c1, c3, h1), H(c3, c2, h2)` (Eq. 20).
    pub fn h2_table(&self) -> Table {
        self.h
            .join_map(
                &self.h,
                &["c2"],
                &["c1"],
                "HH",
                &["c1", "c2", "hh"],
                |l, r| vec![l[0], r[1], Value::Float(l[2].as_float() * r[2].as_float())],
            )
            .group_by_agg("H2", &["c1", "c2"], "h", AggFun::SumFloat, |r| r[2])
    }

    /// **Algorithm 1 (LinBP in SQL)** — `l` fixed iterations of the update
    /// `B ← E + A·B·Ĥ − D·B·Ĥ²` expressed as two view joins plus a grouped
    /// union (the paper's footnote 15). `echo = false` drops V2 (LinBP\*).
    /// The per-iteration `A ⋈ B` probe honors the shard knob on the
    /// configured parallelism (see [`SqlDb::with_parallelism`]).
    pub fn linbp(&self, l: usize, echo: bool) -> BeliefMatrix {
        let d = self.degree_table();
        let h2 = self.h2_table();
        // Line 1: B(s,c,b) :− E(s,c,b).
        let mut b = self.e.clone();
        let cfg = &self.parallelism;
        for _ in 0..l {
            // V1(t,c2,sum(w·b·h)) :− A(s,t,w), B(s,c1,b), H(c1,c2,h). The
            // A ⋈ B probe (one row per stored edge) and the follow-up ⋈ H
            // (one row per edge × class) are the engine's hot loops —
            // executed with the configured parallelism.
            let ab = self.a.join_map_with(
                &b,
                &["s"],
                &["v"],
                "AB",
                &["t", "c1", "wb"],
                |a, bb| {
                    vec![
                        a[1],
                        bb[1],
                        Value::Float(a[2].as_float() * bb[2].as_float()),
                    ]
                },
                cfg,
            );
            let v1 = ab
                .join_map_with(
                    &self.h,
                    &["c1"],
                    &["c1"],
                    "ABH",
                    &["t", "c2", "wbh"],
                    |l, h| vec![l[0], h[1], Value::Float(l[2].as_float() * h[2].as_float())],
                    cfg,
                )
                .group_by_agg("V1", &["t", "c2"], "b", AggFun::SumFloat, |r| r[2]);
            // V2(s,c2,sum(d·b·h)) :− D(s,d), B(s,c1,b), H2(c1,c2,h).
            let combined = if echo {
                let db = d.join_map_with(
                    &b,
                    &["s"],
                    &["v"],
                    "DB",
                    &["v", "c1", "db"],
                    |dd, bb| {
                        vec![
                            dd[0],
                            bb[1],
                            Value::Float(dd[1].as_float() * bb[2].as_float()),
                        ]
                    },
                    cfg,
                );
                let v2 = db
                    .join_map_with(
                        &h2,
                        &["c1"],
                        &["c1"],
                        "DBH",
                        &["v", "c2", "dbh"],
                        |l, h| vec![l[0], h[1], Value::Float(l[2].as_float() * h[2].as_float())],
                        cfg,
                    )
                    .group_by_agg("V2", &["v", "c2"], "b", AggFun::SumFloat, |r| r[2]);
                // Negate V2 before the union (the −b₃ of line 4).
                let neg_v2 = v2.project("V2n", &["v", "c", "b"], |r| {
                    vec![r[0], r[1], Value::Float(-r[2].as_float())]
                });
                self.e.union_all(&v1).union_all(&neg_v2)
            } else {
                self.e.union_all(&v1)
            };
            // Line 4 via union all + group by (v, c).
            b = combined.group_by_agg("B", &["v", "c"], "b", AggFun::SumFloat, |r| r[2]);
        }
        belief_table_to_matrix(&b, self.n, self.k)
    }

    /// **Batched Algorithm 1** — answers `q` labeling queries (different
    /// seed relations over the same graph and coupling) in **one pass**:
    /// the explicit-belief relation gains a query-id column,
    /// `EQ(q, v, c, b)`, and the same two view joins + grouped union run
    /// once per iteration for *all* queries — the `A ⋈ B` probe streams
    /// the edge relation through the executor once per round instead of
    /// `q` times, the relational mirror of the stacked-SpMM
    /// `lsbp::batch::linbp_batch`.
    ///
    /// Runs `l` fixed iterations per query (Algorithm 1 has no
    /// convergence read-out — the paper's SQL loop is `l` rounds); pass
    /// the per-query matrices to the native read-outs for top-belief
    /// queries. Returns one belief matrix per query, in query order.
    ///
    /// # Panics
    /// Panics if a query's node or class count disagrees with the loaded
    /// graph (same contract as [`SqlDb::new`]).
    pub fn linbp_batch(
        &self,
        queries: &[ExplicitBeliefs],
        l: usize,
        echo: bool,
    ) -> Vec<BeliefMatrix> {
        for e in queries {
            assert_eq!(e.n(), self.n, "query node count mismatch");
            assert_eq!(e.k(), self.k, "query class count mismatch");
        }
        if queries.is_empty() {
            return Vec::new();
        }
        // EQ(q, v, c, b): all seed relations, tagged by query id.
        let mut eq = Table::new("EQ", &["q", "v", "c", "b"]);
        for (j, e) in queries.iter().enumerate() {
            for v in e.explicit_nodes() {
                for (c, &val) in e.row(v).iter().enumerate() {
                    eq.push(vec![
                        Value::Int(j as i64),
                        Value::Int(v as i64),
                        Value::Int(c as i64),
                        Value::Float(val),
                    ]);
                }
            }
        }
        let d = self.degree_table();
        let h2 = self.h2_table();
        let cfg = &self.parallelism;
        // Line 1: B(q,v,c,b) :− EQ(q,v,c,b).
        let mut b = eq.clone();
        for _ in 0..l {
            // V1(q,t,c2,sum(w·b·h)) :− A(s,t,w), B(q,s,c1,b), H(c1,c2,h).
            let ab = self.a.join_map_with(
                &b,
                &["s"],
                &["v"],
                "AB",
                &["q", "t", "c1", "wb"],
                |a, bb| {
                    vec![
                        bb[0],
                        a[1],
                        bb[2],
                        Value::Float(a[2].as_float() * bb[3].as_float()),
                    ]
                },
                cfg,
            );
            let v1 = ab
                .join_map_with(
                    &self.h,
                    &["c1"],
                    &["c1"],
                    "ABH",
                    &["q", "t", "c2", "wbh"],
                    |left, h| {
                        vec![
                            left[0],
                            left[1],
                            h[1],
                            Value::Float(left[3].as_float() * h[2].as_float()),
                        ]
                    },
                    cfg,
                )
                .group_by_agg("V1", &["q", "t", "c2"], "b", AggFun::SumFloat, |r| r[3]);
            // V2(q,s,c2,sum(d·b·h)) :− D(s,d), B(q,s,c1,b), H2(c1,c2,h).
            let combined = if echo {
                let db = d.join_map_with(
                    &b,
                    &["s"],
                    &["v"],
                    "DB",
                    &["q", "v", "c1", "db"],
                    |dd, bb| {
                        vec![
                            bb[0],
                            dd[0],
                            bb[2],
                            Value::Float(dd[1].as_float() * bb[3].as_float()),
                        ]
                    },
                    cfg,
                );
                let v2 = db
                    .join_map_with(
                        &h2,
                        &["c1"],
                        &["c1"],
                        "DBH",
                        &["q", "v", "c2", "dbh"],
                        |left, h| {
                            vec![
                                left[0],
                                left[1],
                                h[1],
                                Value::Float(left[3].as_float() * h[2].as_float()),
                            ]
                        },
                        cfg,
                    )
                    .group_by_agg("V2", &["q", "v", "c2"], "b", AggFun::SumFloat, |r| r[3]);
                let neg_v2 = v2.project("V2n", &["q", "v", "c", "b"], |r| {
                    vec![r[0], r[1], r[2], Value::Float(-r[3].as_float())]
                });
                eq.union_all(&v1).union_all(&neg_v2)
            } else {
                eq.union_all(&v1)
            };
            b = combined.group_by_agg("B", &["q", "v", "c"], "b", AggFun::SumFloat, |r| r[3]);
        }
        // Split per query id back into dense matrices.
        let (qi, vi, ci, bi) = (b.col("q"), b.col("v"), b.col("c"), b.col("b"));
        let mut out: Vec<Mat> = (0..queries.len())
            .map(|_| Mat::zeros(self.n, self.k))
            .collect();
        for r in b.rows() {
            let j = r[qi].as_int() as usize;
            let v = r[vi].as_int() as usize;
            let c = r[ci].as_int() as usize;
            out[j][(v, c)] += r[bi].as_float();
        }
        out.into_iter().map(BeliefMatrix::from_mat).collect()
    }

    /// **Algorithm 1 driven by SQL text** — the same computation as
    /// [`SqlDb::linbp`], but every step is parsed from the literal SQL of
    /// Sect. 5.3 / Appendix D and executed by the [`crate::exec`]
    /// interpreter: `D` and `H2` via `CREATE TABLE … AS` (Fig. 9a style),
    /// each iteration as `CREATE TABLE`s for the views `V1`/`V2` and the
    /// grouped union of line 4, with `Bn`/`B` swapped by `DROP`/`CREATE`.
    /// Its multi-way joins (notably the 3-way `A ⋈ B ⋈ H` of line 4) go
    /// through the cost-bounded planner ([`crate::plan`]); the plan-built
    /// methods like [`SqlDb::linbp`] construct engine operator plans
    /// directly and bypass it.
    ///
    /// # Panics
    /// Panics if the embedded SQL fails to execute — that would be a bug in
    /// the parser/executor, which the test suite pins against the native
    /// implementation.
    pub fn linbp_sql_text(&self, l: usize) -> BeliefMatrix {
        let mut db = crate::exec::Database::new();
        db.insert_table("A", self.a.clone());
        db.insert_table("E", self.e.clone());
        db.insert_table("H", self.h.clone());
        let run = |db: &mut crate::exec::Database, sql: &str| {
            db.execute_script(sql)
                .unwrap_or_else(|e| panic!("embedded SQL failed: {e}\n{sql}"))
        };
        // Derived tables: D(s, sum(w·w)) and H2 = Ĥ² (Fig. 9a).
        run(
            &mut db,
            "create table D as select s, sum(w * w) as d from A group by s",
        );
        run(
            &mut db,
            "create table H2 as select H1.c1, H2.c2, sum(H1.h * H2.h) as h \
             from H H1, H H2 where H1.c2 = H2.c1 group by H1.c1, H2.c2",
        );
        // Line 1: B := E.
        run(&mut db, "create table B as select v, c, b from E");
        for _ in 0..l {
            // Line 3, V1(t, c2, sum(w·b·h)) :− A(s,t,w), B(s,c1,b), H(c1,c2,h).
            run(
                &mut db,
                "create table V1 as \
                 select A.t as v, H.c2 as c, sum(A.w * B.b * H.h) as b \
                 from A, B, H \
                 where A.s = B.v and B.c = H.c1 \
                 group by A.t, H.c2",
            );
            // Line 3, V2(s, c2, sum(d·b·h)) :− D(s,d), B(s,c1,b), H2(c1,c2,h).
            run(
                &mut db,
                "create table V2 as \
                 select D.s as v, H2.c2 as c, sum(D.d * B.b * H2.h) as b \
                 from D, B, H2 \
                 where D.s = B.v and B.c = H2.c1 \
                 group by D.s, H2.c2",
            );
            // Line 4: B(v, c, b1 + b2 − b3) via UNION ALL + GROUP BY
            // (footnote 15), assembled from E, V1 and negated V2.
            run(&mut db, "create table U as select v, c, b from E");
            run(&mut db, "insert into U select v, c, b from V1");
            run(&mut db, "insert into U select v, c, 0 - b from V2");
            run(&mut db, "drop table B");
            run(
                &mut db,
                "create table B as select v, c, sum(b) as b from U group by v, c",
            );
            run(&mut db, "drop table V1; drop table V2; drop table U");
        }
        let b = db.table("B").expect("B exists").clone();
        belief_table_to_matrix(&b, self.n, self.k)
    }

    /// The paper's Fig. 9b read-out: top-belief assignment computed by SQL
    /// text over a belief table (ties via exact float equality with the
    /// per-node maximum, as in the paper).
    pub fn top_beliefs_sql_text(b: &Table) -> Vec<(i64, i64)> {
        let mut db = crate::exec::Database::new();
        db.insert_table("B", b.clone());
        let top = db
            .execute(
                "select B.v, B.c from B, \
                 (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
                 where B.v = X.v and B.b = X.b",
            )
            .expect("Fig. 9b SQL executes")
            .expect("SELECT returns rows");
        let mut pairs: Vec<(i64, i64)> = top
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int()))
            .collect();
        pairs.sort_unstable();
        pairs
    }

    /// **Algorithm 2 (SBP in SQL)** — initial belief assignment by layered
    /// single-pass propagation.
    pub fn sbp(&self) -> SqlSbpState {
        // Line 1: G(v,0) :− E(v,_,_);  B(v,c,b) :− E(v,c,b).
        let mut g = Table::new("G", &["v", "g"]);
        for v in self.e.distinct_ints("v") {
            g.push(vec![Value::Int(v), Value::Int(0)]);
        }
        let mut b = self.e.clone();
        let mut i: i64 = 1;
        loop {
            // Line 4: G(t,i) :− G(s,i−1), A(s,t,_), ¬G(t,_).
            let frontier = g.filter("Gf", |r| r[1].as_int() == i - 1);
            let reached =
                frontier.join_map(&self.a, &["v"], &["s"], "R", &["t"], |_, a| vec![a[1]]);
            let fresh = reached.anti_join(&g, &["t"], &["v"]);
            let new_nodes = fresh.distinct_ints("t");
            if new_nodes.is_empty() {
                break;
            }
            let mut g_new = Table::new("Gn", &["v", "g"]);
            for t in &new_nodes {
                g_new.push(vec![Value::Int(*t), Value::Int(i)]);
            }
            // Line 5: B(t,c2,sum(w·b·h)) :− G(t,i), A(s,t,w), B(s,c1,b),
            //                               G(s,i−1), H(c1,c2,h).
            let b_new = propagate_layer(&self.a, &b, &self.h, &frontier, &g_new);
            g = g.union_all(&g_new);
            b = b.union_all(&b_new);
            i += 1;
        }
        SqlSbpState { b, g }
    }

    /// **Algorithm 3 (ΔSBP: new explicit beliefs)** — batch insertion of
    /// explicit beliefs with incremental maintenance of `B` and `G`.
    pub fn sbp_add_explicit(&mut self, state: &mut SqlSbpState, additions: &ExplicitBeliefs) {
        let en = explicit_to_table(additions);
        // Line 1: Gn(v,0) :− En(v,_,_);  !G(v,0).
        let mut gn = Table::new("Gn", &["v", "g"]);
        for v in en.distinct_ints("v") {
            gn.push(vec![Value::Int(v), Value::Int(0)]);
        }
        state.g.upsert(&gn, &["v"]);
        // Line 2: Bn := En;  !B.
        state.b.upsert(&en, &["v"]);
        // Merge the additions into E so later recomputations see them.
        self.e.upsert(&en, &["v"]);

        let mut i: i64 = 1;
        loop {
            // Line 5: Gn(t,i) :− Gn(s,i−1), A(s,t,_), ¬(G(t,gt), gt < i).
            let reached = gn.join_map(&self.a, &["v"], &["s"], "R", &["t"], |_, a| vec![a[1]]);
            let settled = state.g.filter("Gs", |r| r[1].as_int() < i);
            let fresh = reached.anti_join(&settled, &["t"], &["v"]);
            let nodes = fresh.distinct_ints("t");
            if nodes.is_empty() {
                break;
            }
            let mut gn_next = Table::new("Gn", &["v", "g"]);
            for t in &nodes {
                gn_next.push(vec![Value::Int(*t), Value::Int(i)]);
            }
            state.g.upsert(&gn_next, &["v"]);
            // Line 6: recompute beliefs of the updated nodes from *all*
            // parents at level i−1 (updated or not).
            let parents = state.g.filter("Gp", |r| r[1].as_int() == i - 1);
            let bn = propagate_layer(&self.a, &state.b, &self.h, &parents, &gn_next);
            // !B — replace whole node rows (Fig. 9d).
            state.b.upsert(&bn, &["v"]);
            gn = gn_next;
            i += 1;
        }
    }

    /// **Algorithm 4 (ΔSBP: new edges)** — batch insertion of edges.
    ///
    /// `new_edges` are undirected `(s, t, w)` triples. Follows Appendix C's
    /// Algorithm 4 (with the `gt ≤ gs` guard, see module docs); nodes may
    /// be updated more than once as shorter geodesic paths cascade.
    pub fn sbp_add_edges(&mut self, state: &mut SqlSbpState, new_edges: &[(usize, usize, f64)]) {
        // Line 1: !A(s,t,w) :− An(s,t,w) (both directions).
        let mut an = Table::new("An", &["s", "t", "w"]);
        for &(s, t, w) in new_edges {
            an.push(vec![
                Value::Int(s as i64),
                Value::Int(t as i64),
                Value::Float(w),
            ]);
            an.push(vec![
                Value::Int(t as i64),
                Value::Int(s as i64),
                Value::Float(w),
            ]);
        }
        for row in an.rows() {
            self.a.push(row.clone());
        }
        // Re-merge parallel edges (see `new`): an inserted edge that
        // duplicates an existing one accumulates into its weight.
        self.a = self
            .a
            .group_by_agg("A", &["s", "t"], "w", AggFun::SumFloat, |r| r[2])
            .project("A", &["s", "t", "w"], |r| vec![r[0], r[1], r[2]]);

        // Line 2: seed nodes — Gn(t, min(gs+1)) :− G(s,gs), An(s,t,_),
        // ¬(G(t,gt), gt ≤ gs).
        let mut gn = self.relax_step(&an, &state.g, &state.g);
        loop {
            if gn.is_empty() {
                break;
            }
            // !G and belief recomputation for the seeds of this round
            // (lines 2–3 first pass, lines 5–6 in the loop).
            state.g.upsert(&gn, &["v"]);
            let bn = recompute_from_parents(&self.a, &state.b, &self.h, &state.g, &gn);
            state.b.upsert(&bn, &["v"]);
            // Line 5: next frontier from the nodes just updated; edges now
            // come from the full (updated) adjacency.
            let frontier_edges =
                self.a
                    .join_map(&gn, &["s"], &["v"], "Af", &["s", "t", "w", "gs"], |a, g| {
                        vec![a[0], a[1], a[2], g[1]]
                    });
            gn = self.relax_step_from(&frontier_edges, &state.g);
        }
    }

    /// One relaxation: candidate geodesic updates flowing across `edges`
    /// (which must carry columns `s,t,w`), with source levels taken from
    /// `g_src` and guard levels from `g_all`.
    fn relax_step(&self, edges: &Table, g_src: &Table, g_all: &Table) -> Table {
        let with_gs = edges.join_map(
            g_src,
            &["s"],
            &["v"],
            "Ag",
            &["s", "t", "w", "gs"],
            |a, g| vec![a[0], a[1], a[2], g[1]],
        );
        self.relax_step_from(&with_gs, g_all)
    }

    /// Shared tail of the relaxation: given `(s,t,w,gs)` rows, keep targets
    /// whose current geodesic number exceeds `gs` (or is unset) and
    /// aggregate `min(gs+1)` per target.
    fn relax_step_from(&self, edges_with_gs: &Table, g_all: &Table) -> Table {
        // Join candidates with current G to apply the guard; targets
        // without a G row pass automatically (anti-join path).
        let with_gt =
            edges_with_gs.join_map(g_all, &["t"], &["v"], "Agt", &["t", "gs", "gt"], |e, g| {
                vec![e[1], e[3], g[1]]
            });
        let improving = with_gt.filter("Ai", |r| r[2].as_int() > r[1].as_int());
        let unreached =
            edges_with_gs
                .anti_join(g_all, &["t"], &["v"])
                .project("Au", &["t", "gs", "gt"], |r| {
                    vec![r[1], r[3], Value::Int(i64::MAX - 1)]
                });
        improving
            .union_all(&unreached)
            .group_by_agg("Gn", &["t"], "g", AggFun::MinInt, |r| {
                Value::Int(r[1].as_int() + 1)
            })
            .project("Gn", &["v", "g"], |r| vec![r[0], r[1]])
    }
}

/// Line 5 of Algorithm 2 / line 6 of Algorithm 3: beliefs of the nodes in
/// `targets` computed from the parents in `parents` (a `G` slice at level
/// i−1):
/// `B(t,c2,sum(w·b·h)) :− targets(t,_), A(s,t,w), B(s,c1,b), parents(s,_),
///  H(c1,c2,h)`.
fn propagate_layer(a: &Table, b: &Table, h: &Table, parents: &Table, targets: &Table) -> Table {
    let from_parents = a.join_map(parents, &["s"], &["v"], "Ap", &["s", "t", "w"], |a, _| {
        vec![a[0], a[1], a[2]]
    });
    let to_targets =
        from_parents.join_map(targets, &["t"], &["v"], "At", &["s", "t", "w"], |e, _| {
            vec![e[0], e[1], e[2]]
        });
    let with_b = to_targets.join_map(b, &["s"], &["v"], "AtB", &["t", "c1", "wb"], |e, bb| {
        vec![
            e[1],
            bb[1],
            Value::Float(e[2].as_float() * bb[2].as_float()),
        ]
    });
    let terms = with_b.join_map(h, &["c1"], &["c1"], "AtBH", &["t", "c2", "wbh"], |l, hh| {
        vec![
            l[0],
            hh[1],
            Value::Float(l[2].as_float() * hh[2].as_float()),
        ]
    });
    sum_terms_with_cancellation_snap(&terms)
}

/// Aggregates a `(t, c2, wbh)` term relation into `B(v, c, b)` rows,
/// snapping sums within the shared rounding bound of 0 to an exact 0 —
/// exact SBP cancellations (a node fed by seeds of all `k` classes) must
/// read out as ties here just as they do in the in-memory engine (see
/// [`lsbp::sbp::CANCELLATION_EPS`]).
fn sum_terms_with_cancellation_snap(terms: &Table) -> Table {
    let sums = terms.group_by_agg("Bsum", &["t", "c2"], "b", AggFun::SumFloat, |r| r[2]);
    let abs_sums = terms.group_by_agg("Babs", &["t", "c2"], "s", AggFun::SumFloat, |r| {
        Value::Float(r[2].as_float().abs())
    });
    sums.join_map(
        &abs_sums,
        &["t", "c2"],
        &["t", "c2"],
        "Bn",
        &["v", "c", "b"],
        |l, a| {
            let b = l[2].as_float();
            let bound = lsbp::sbp::CANCELLATION_EPS * a[2].as_float();
            let snapped = if b.abs() <= bound { 0.0 } else { b };
            vec![l[0], l[1], Value::Float(snapped)]
        },
    )
}

/// Algorithm 4's belief recomputation: like [`propagate_layer`] but the
/// parent level differs per target (`g_parent = g_target − 1`), so the
/// parent filter is a join predicate instead of a pre-sliced table.
fn recompute_from_parents(a: &Table, b: &Table, h: &Table, g: &Table, targets: &Table) -> Table {
    // (t, gt) ⋈ A(s,t,w) ⋈ G(s,gs) with gs = gt − 1 ⋈ B(s,c1,b) ⋈ H.
    let edges_in = a.join_map(
        targets,
        &["t"],
        &["v"],
        "Ain",
        &["s", "t", "w", "gt"],
        |e, tg| vec![e[0], e[1], e[2], tg[1]],
    );
    let with_gs = edges_in.join_map(
        g,
        &["s"],
        &["v"],
        "Ags",
        &["s", "t", "w", "gt", "gs"],
        |e, gg| vec![e[0], e[1], e[2], e[3], gg[1]],
    );
    let parent_edges = with_gs.filter("Apar", |r| r[4].as_int() == r[3].as_int() - 1);
    let with_b = parent_edges.join_map(b, &["s"], &["v"], "AB", &["t", "c1", "wb"], |e, bb| {
        vec![
            e[1],
            bb[1],
            Value::Float(e[2].as_float() * bb[2].as_float()),
        ]
    });
    let terms = with_b.join_map(h, &["c1"], &["c1"], "ABH", &["t", "c2", "wbh"], |l, hh| {
        vec![
            l[0],
            hh[1],
            Value::Float(l[2].as_float() * hh[2].as_float()),
        ]
    });
    let full = sum_terms_with_cancellation_snap(&terms);
    // Targets with *no* parent edges yet (e.g. freshly reconnected nodes
    // whose parents are settled later) must still be overwritten — emit
    // explicit zero rows so the upsert clears stale beliefs. The number of
    // classes is read off H.
    let k = h.distinct_ints("c1").len();
    let have_rows: std::collections::HashSet<i64> = full.distinct_ints("v").into_iter().collect();
    let mut out = full;
    for t in targets.distinct_ints("v") {
        if !have_rows.contains(&t) {
            for c in 0..k {
                out.push(vec![Value::Int(t), Value::Int(c as i64), Value::Float(0.0)]);
            }
        }
    }
    out
}

/// Converts explicit beliefs to the `E(v,c,b)` relation (explicit nodes
/// only, all `k` class rows each).
pub fn explicit_to_table(explicit: &ExplicitBeliefs) -> Table {
    let mut e = Table::new("E", &["v", "c", "b"]);
    for v in explicit.explicit_nodes() {
        for (c, &val) in explicit.row(v).iter().enumerate() {
            e.push(vec![
                Value::Int(v as i64),
                Value::Int(c as i64),
                Value::Float(val),
            ]);
        }
    }
    e
}

/// Converts a `B(v,c,b)` relation back to a dense residual belief matrix
/// (missing pairs are 0).
pub fn belief_table_to_matrix(b: &Table, n: usize, k: usize) -> BeliefMatrix {
    let mut m = Mat::zeros(n, k);
    let vi = b.col("v");
    let ci = b.col("c");
    let bi = b.col("b");
    for r in b.rows() {
        let v = r[vi].as_int() as usize;
        let c = r[ci].as_int() as usize;
        m[(v, c)] += r[bi].as_float();
    }
    BeliefMatrix::from_mat(m)
}

/// Converts a `G(v,g)` relation to a per-node geodesic array
/// (`u32::MAX` = unreached), for comparison against the native SBP.
pub fn geodesic_table_to_vec(g: &Table, n: usize) -> Vec<u32> {
    let mut out = vec![u32::MAX; n];
    let vi = g.col("v");
    let gi = g.col("g");
    for r in g.rows() {
        out[r[vi].as_int() as usize] = r[gi].as_int() as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbp::coupling::CouplingMatrix;
    use lsbp::linbp::{linbp, linbp_star, LinBpOptions};
    use lsbp::sbp::{sbp, sbp_add_edges, sbp_add_explicit};
    use lsbp_graph::generators::{erdos_renyi_gnm, fig5c_torus, path};

    fn torus_db() -> (SqlDb, lsbp_graph::Graph, ExplicitBeliefs, Mat) {
        let g = fig5c_torus();
        let mut e = ExplicitBeliefs::new(8, 3);
        e.set_residual(0, &[2.0, -1.0, -1.0]).unwrap();
        e.set_residual(1, &[-1.0, 2.0, -1.0]).unwrap();
        e.set_residual(2, &[-1.0, -1.0, 2.0]).unwrap();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.1);
        let db = SqlDb::new(&g, &e, &h);
        (db, g, e, h)
    }

    #[test]
    fn derived_tables() {
        let (db, ..) = torus_db();
        let d = db.degree_table();
        // Pendant nodes have degree 1, inner nodes degree 3.
        let d_map: std::collections::HashMap<i64, f64> = d
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_float()))
            .collect();
        assert_eq!(d_map[&0], 1.0);
        assert_eq!(d_map[&4], 3.0);
        // H2 equals the dense Ĥ².
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.1);
        let h2_dense = h.matmul(&h);
        let h2 = db.h2_table();
        for r in h2.rows() {
            let (c1, c2) = (r[0].as_int() as usize, r[1].as_int() as usize);
            assert!((r[2].as_float() - h2_dense[(c1, c2)]).abs() < 1e-14);
        }
    }

    /// Algorithm 1 reproduces the in-memory LinBP iteration exactly
    /// (same fixed number of rounds, same starting point).
    #[test]
    fn sql_linbp_matches_native() {
        let (db, g, e, h) = torus_db();
        let adj = g.adjacency();
        for iters in [1, 3, 5] {
            let sql_b = db.linbp(iters, true);
            let native = linbp(
                &adj,
                &e,
                &h,
                &LinBpOptions {
                    max_iter: iters,
                    tol: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12,
                "iters = {iters}"
            );
        }
    }

    #[test]
    fn sql_linbp_star_matches_native() {
        let (db, g, e, h) = torus_db();
        let adj = g.adjacency();
        let sql_b = db.linbp(4, false);
        let native = linbp_star(
            &adj,
            &e,
            &h,
            &LinBpOptions {
                max_iter: 4,
                tol: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12);
    }

    /// The batched relational path answers every query exactly as the
    /// native batched solver (and the per-query relational path) does.
    #[test]
    fn sql_linbp_batch_matches_native_batch() {
        let (db, g, e, h) = torus_db();
        let adj = g.adjacency();
        // Three distinct seed-sets over the same graph, one empty.
        let mut e2 = ExplicitBeliefs::new(8, 3);
        e2.set_label(5, 1, 1.0).unwrap();
        let e3 = ExplicitBeliefs::new(8, 3);
        let queries = vec![e.clone(), e2, e3];
        for echo in [true, false] {
            let batched = db.linbp_batch(&queries, 4, echo);
            assert_eq!(batched.len(), 3);
            let opts = lsbp::linbp::LinBpOptions {
                max_iter: 4,
                tol: 0.0,
                ..Default::default()
            };
            let native = if echo {
                lsbp::batch::linbp_batch(&adj, &queries, &h, &opts).unwrap()
            } else {
                lsbp::batch::linbp_star_batch(&adj, &queries, &h, &opts).unwrap()
            };
            for (j, (sql_b, nat)) in batched.iter().zip(&native).enumerate() {
                assert!(
                    sql_b.residual().max_abs_diff(nat.beliefs.residual()) < 1e-12,
                    "echo={echo} query {j}"
                );
            }
        }
        // And the first query agrees with the single-query relational path.
        let single = db.linbp(4, true);
        let batched = db.linbp_batch(&queries, 4, true);
        assert!(batched[0].residual().max_abs_diff(single.residual()) < 1e-12);
    }

    #[test]
    fn sql_linbp_batch_empty() {
        let (db, ..) = torus_db();
        assert!(db.linbp_batch(&[], 3, true).is_empty());
    }

    /// The shard knob segments the hot probes without changing a single
    /// belief: sharded relational LinBP (single and batched) equals the
    /// monolithic relational run bitwise, at 1 and 4 threads.
    #[test]
    fn sql_linbp_sharded_matches_monolithic() {
        let g = erdos_renyi_gnm(40, 120, 11);
        let mut e = ExplicitBeliefs::new(40, 3);
        e.set_label(0, 0, 1.0).unwrap();
        e.set_label(17, 2, 1.0).unwrap();
        let h = CouplingMatrix::fig1c().unwrap().scaled_residual(0.05);
        let mut e2 = ExplicitBeliefs::new(40, 3);
        e2.set_label(31, 1, 1.0).unwrap();
        let queries = vec![e.clone(), e2];
        let reference_db = SqlDb::new(&g, &e, &h).with_parallelism(ParallelismConfig::serial());
        let reference = reference_db.linbp(4, true);
        let reference_batch = reference_db.linbp_batch(&queries, 4, true);
        for threads in [1usize, 4] {
            for shards in [2usize, 8] {
                let cfg = ParallelismConfig::with_threads(threads)
                    .with_min_work(1)
                    .with_shards(shards);
                let db = SqlDb::new(&g, &e, &h).with_parallelism(cfg);
                let got = db.linbp(4, true);
                let same = got
                    .residual()
                    .as_slice()
                    .iter()
                    .zip(reference.residual().as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "t={threads} shards={shards}");
                let got_batch = db.linbp_batch(&queries, 4, true);
                for (j, (got_q, want_q)) in got_batch.iter().zip(&reference_batch).enumerate() {
                    let same = got_q
                        .residual()
                        .as_slice()
                        .iter()
                        .zip(want_q.residual().as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "t={threads} shards={shards} query {j}");
                }
            }
        }
    }

    /// The SQL-text path (parsed and interpreted statements) produces the
    /// same beliefs as the query-plan path and the native implementation.
    #[test]
    fn sql_text_linbp_matches_plans() {
        let (db, g, e, h) = torus_db();
        for iters in [1, 3] {
            let via_text = db.linbp_sql_text(iters);
            let via_plans = db.linbp(iters, true);
            assert!(
                via_text.residual().max_abs_diff(via_plans.residual()) < 1e-12,
                "iters = {iters}"
            );
            let native = linbp(
                &g.adjacency(),
                &e,
                &h,
                &LinBpOptions {
                    max_iter: iters,
                    tol: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(via_text.residual().max_abs_diff(native.beliefs.residual()) < 1e-12);
        }
    }

    /// Fig. 9b's SQL read-out agrees with the in-memory top-belief
    /// assignment (for nodes with a unique top class).
    #[test]
    fn sql_text_top_beliefs() {
        let (db, ..) = torus_db();
        let beliefs = db.linbp(3, true);
        let mut b_table = Table::new("B", &["v", "c", "b"]);
        for v in 0..8 {
            for (c, &val) in beliefs.row(v).iter().enumerate() {
                b_table.push(vec![
                    Value::Int(v as i64),
                    Value::Int(c as i64),
                    Value::Float(val),
                ]);
            }
        }
        let pairs = SqlDb::top_beliefs_sql_text(&b_table);
        let native = beliefs.top_belief_assignment(0.0);
        for (v, tops) in native.iter().enumerate() {
            let sql_tops: Vec<i64> = pairs
                .iter()
                .filter(|(pv, _)| *pv == v as i64)
                .map(|(_, c)| *c)
                .collect();
            let expect: Vec<i64> = tops.iter().map(|&c| c as i64).collect();
            assert_eq!(sql_tops, expect, "node {v}");
        }
    }

    /// Algorithm 2 reproduces the native SBP (beliefs and geodesics).
    #[test]
    fn sql_sbp_matches_native() {
        let (db, g, e, _) = torus_db();
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let db_unscaled = SqlDb::new(&g, &e, &ho);
        let state = db_unscaled.sbp();
        let native = sbp(&g.adjacency(), &e, &ho).unwrap();
        let sql_beliefs = belief_table_to_matrix(&state.b, 8, 3);
        assert!(
            sql_beliefs
                .residual()
                .max_abs_diff(native.beliefs.residual())
                < 1e-12
        );
        assert_eq!(geodesic_table_to_vec(&state.g, 8), native.geodesics.g);
        let _ = db;
    }

    /// Algorithm 3 equals recomputation from scratch, on random graphs.
    #[test]
    fn sql_add_explicit_matches_scratch() {
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        for seed in 0..3u64 {
            let g = erdos_renyi_gnm(40, 90, seed);
            let mut base = ExplicitBeliefs::new(40, 3);
            base.set_label(0, 0, 1.0).unwrap();
            base.set_label(5, 1, 1.0).unwrap();
            let mut db = SqlDb::new(&g, &base, &ho);
            let mut state = db.sbp();

            let mut delta = ExplicitBeliefs::new(40, 3);
            delta.set_label(17, 2, 1.0).unwrap();
            delta.set_label(31, 1, 1.0).unwrap();
            db.sbp_add_explicit(&mut state, &delta);

            let mut full = base.clone();
            full.set_label(17, 2, 1.0).unwrap();
            full.set_label(31, 1, 1.0).unwrap();
            let scratch_db = SqlDb::new(&g, &full, &ho);
            let scratch = scratch_db.sbp();

            let a = belief_table_to_matrix(&state.b, 40, 3);
            let b = belief_table_to_matrix(&scratch.b, 40, 3);
            assert!(
                a.residual().max_abs_diff(b.residual()) < 1e-10,
                "seed {seed}"
            );
            assert_eq!(
                geodesic_table_to_vec(&state.g, 40),
                geodesic_table_to_vec(&scratch.g, 40),
                "seed {seed}"
            );
        }
    }

    /// Algorithm 3 also agrees with the native incremental implementation.
    #[test]
    fn sql_add_explicit_matches_native_incremental() {
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let g = erdos_renyi_gnm(30, 60, 11);
        let adj = g.adjacency();
        let mut base = ExplicitBeliefs::new(30, 3);
        base.set_label(2, 0, 1.0).unwrap();
        let mut db = SqlDb::new(&g, &base, &ho);
        let mut state = db.sbp();
        let native_prev = sbp(&adj, &base, &ho).unwrap();

        let mut delta = ExplicitBeliefs::new(30, 3);
        delta.set_label(19, 2, 1.0).unwrap();
        db.sbp_add_explicit(&mut state, &delta);
        let native = sbp_add_explicit(&adj, &ho, &native_prev, &delta).unwrap();

        let sql_b = belief_table_to_matrix(&state.b, 30, 3);
        assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-10);
        assert_eq!(geodesic_table_to_vec(&state.g, 30), native.geodesics.g);
    }

    /// Algorithm 4 equals recomputation from scratch, on random graphs.
    #[test]
    fn sql_add_edges_matches_scratch() {
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        for seed in 0..3u64 {
            let full_graph = erdos_renyi_gnm(35, 100, seed);
            let (base, extra) = full_graph.split_edges(80);
            let mut e = ExplicitBeliefs::new(35, 3);
            e.set_label(1, 0, 1.0).unwrap();
            e.set_label(8, 2, 1.0).unwrap();
            let mut db = SqlDb::new(&base, &e, &ho);
            let mut state = db.sbp();
            let new_edges: Vec<_> = extra.edges().collect();
            db.sbp_add_edges(&mut state, &new_edges);

            let scratch_db = SqlDb::new(&full_graph, &e, &ho);
            let scratch = scratch_db.sbp();
            let a = belief_table_to_matrix(&state.b, 35, 3);
            let b = belief_table_to_matrix(&scratch.b, 35, 3);
            assert_eq!(
                geodesic_table_to_vec(&state.g, 35),
                geodesic_table_to_vec(&scratch.g, 35),
                "seed {seed}"
            );
            assert!(
                a.residual().max_abs_diff(b.residual()) < 1e-10,
                "seed {seed}"
            );
        }
    }

    /// The Appendix C worked example: cascading updates through a chain.
    #[test]
    fn sql_add_edges_appendix_c() {
        let ho = CouplingMatrix::fig1c().unwrap().residual();
        let base = path(5);
        let mut e = ExplicitBeliefs::new(5, 3);
        e.set_label(0, 0, 1.0).unwrap();
        let mut db = SqlDb::new(&base, &e, &ho);
        let mut state = db.sbp();
        db.sbp_add_edges(&mut state, &[(0, 2, 1.0), (2, 4, 1.0)]);

        let mut full = base.clone();
        full.add_edge_unweighted(0, 2);
        full.add_edge_unweighted(2, 4);
        let native = sbp_add_edges(
            &full.adjacency(),
            &[(0, 2, 1.0), (2, 4, 1.0)],
            &ho,
            &sbp(&base.adjacency(), &e, &ho).unwrap(),
        )
        .unwrap();
        let sql_b = belief_table_to_matrix(&state.b, 5, 3);
        assert!(sql_b.residual().max_abs_diff(native.beliefs.residual()) < 1e-12);
        assert_eq!(geodesic_table_to_vec(&state.g, 5), native.geodesics.g);
    }
}

//! The relational operators.
//!
//! Deliberately small: just enough standard-SQL vocabulary (selection,
//! projection, equi-join, anti-join, grouped aggregation, union) to express
//! Algorithms 1–4 of the paper, with hash joins keyed on integer columns —
//! node ids and class ids, exactly like the paper's `A(s,t,w)`,
//! `E(v,c,b)`, `H(c1,c2,h)` schemas.

use crate::stats::TableStats;
use lsbp_linalg::{even_ranges, ParallelismConfig};
use std::collections::HashMap;
use std::fmt;

/// A cell value: SQL `BIGINT` or `DOUBLE PRECISION`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Integer (node ids, class ids, geodesic numbers).
    Int(i64),
    /// Float (weights, coupling strengths, beliefs).
    Float(f64),
}

impl Value {
    /// Integer content.
    ///
    /// # Panics
    /// Panics when the value is a float (a schema bug in the caller).
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => panic!("expected Int, found Float({f})"),
        }
    }

    /// Float content (ints widen losslessly for small magnitudes).
    #[inline]
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(f) => f,
            Value::Int(i) => i as f64,
        }
    }
}

/// Aggregate functions (the paper's algorithms need `SUM` over float
/// expressions and `MIN` over integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFun {
    /// `SUM(expr)` over floats.
    SumFloat,
    /// `MIN(expr)` over integers.
    MinInt,
}

/// An in-memory relation: named columns, row-major storage, plus
/// incrementally maintained [`TableStats`] feeding the query planner.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    stats: TableStats,
}

/// Equality compares name, schema, and rows *in order*; the derived
/// statistics are excluded (they are a function of the rows).
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.columns == other.columns && self.rows == other.rows
    }
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        let stats = TableStats::new(columns.len());
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
            stats,
        }
    }

    /// Builds a table from pre-materialized rows, computing statistics in
    /// one pass.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the column count.
    pub fn from_rows(name: impl Into<String>, columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        let name = name.into();
        for row in &rows {
            assert_eq!(row.len(), columns.len(), "row arity mismatch in {name}");
        }
        let stats = TableStats::from_rows(columns.len(), &rows);
        Self {
            name,
            columns,
            rows,
            stats,
        }
    }

    /// Table name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row access.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Resolves a column name to its index, or `None` if the table has no
    /// such column. This is the fallible lookup query execution uses — a
    /// bad column name in SQL becomes a typed `SqlError::UnknownColumn`,
    /// never a panic.
    pub fn try_col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Resolves a column name to its index.
    ///
    /// # Panics
    /// Panics on an unknown column (schema bug in *library* callers with
    /// fixed schemas; SQL execution goes through [`Table::try_col`]).
    pub fn col(&self, name: &str) -> usize {
        self.try_col(name)
            .unwrap_or_else(|| panic!("table {}: no column named {name}", self.name))
    }

    /// The maintained statistics (row count, per-column distinct counts
    /// and max join degrees) the planner costs joins with.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.name
        );
        self.stats.observe_row(&row);
        self.rows.push(row);
    }

    /// Reserves capacity for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
    }

    /// `SELECT * WHERE pred(row)`.
    pub fn filter(&self, name: &str, pred: impl Fn(&[Value]) -> bool) -> Table {
        Table::from_rows(
            name,
            self.columns.clone(),
            self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        )
    }

    /// The filtered rows themselves (no `Table` wrapper), evaluated over
    /// the same shard-segment structure as [`Table::join_map_with`]: the
    /// rows are split into `cfg.shards()` contiguous segments, each
    /// segment partitioned across the pool, and chunk outputs concatenated
    /// in order — so the output row order matches serial evaluation at any
    /// shard × thread combination. This is the scan path the query planner
    /// pushes predicates into.
    pub fn filter_rows_with(
        &self,
        pred: &(dyn Fn(&[Value]) -> bool + Sync),
        cfg: &ParallelismConfig,
    ) -> Vec<Vec<Value>> {
        let filter_chunk = |rows: &[Vec<Value>]| -> Vec<Vec<Value>> {
            rows.iter().filter(|r| pred(r)).cloned().collect()
        };
        let segments = even_ranges(self.rows.len(), cfg.shards());
        let mut out = Vec::new();
        for segment in segments {
            let seg_rows = &self.rows[segment];
            let parts = cfg.partitions(seg_rows.len());
            if parts <= 1 {
                out.extend(filter_chunk(seg_rows));
            } else {
                let ranges = even_ranges(seg_rows.len(), parts);
                let mut partials: Vec<Vec<Vec<Value>>> =
                    ranges.iter().map(|_| Vec::new()).collect();
                cfg.pool().scope(|s| {
                    for (slot, range) in partials.iter_mut().zip(ranges) {
                        let filter_chunk = &filter_chunk;
                        s.spawn(move || *slot = filter_chunk(&seg_rows[range]));
                    }
                });
                out.extend(partials.into_iter().flatten());
            }
        }
        out
    }

    /// `SELECT expr₁, expr₂, … FROM self` — projection with computed
    /// columns.
    pub fn project(
        &self,
        name: &str,
        out_columns: &[&str],
        f: impl Fn(&[Value]) -> Vec<Value>,
    ) -> Table {
        let mut out = Table::new(name, out_columns);
        out.reserve(self.len());
        for r in &self.rows {
            out.push(f(r));
        }
        out
    }

    fn key_of(row: &[Value], key_idx: &[usize]) -> Vec<i64> {
        key_idx.iter().map(|&i| row[i].as_int()).collect()
    }

    /// Hash equi-join with fused projection:
    /// `SELECT f(l, r) FROM self l JOIN other r ON l.keys = r.keys`.
    ///
    /// Join keys must be integer columns. The projection closure receives
    /// the matched `(left_row, right_row)` pair and emits an output row.
    /// Always serial — [`Table::join_map_with`] is the configurable
    /// variant this delegates to.
    pub fn join_map(
        &self,
        other: &Table,
        self_keys: &[&str],
        other_keys: &[&str],
        name: &str,
        out_columns: &[&str],
        f: impl Fn(&[Value], &[Value]) -> Vec<Value> + Sync,
    ) -> Table {
        self.join_map_with(
            other,
            self_keys,
            other_keys,
            name,
            out_columns,
            f,
            &ParallelismConfig::serial(),
        )
    }

    /// [`Table::join_map`] with an explicit execution configuration: the
    /// hash index is built on the smaller side serially, the probe side is
    /// partitioned into contiguous row chunks probed by independent tasks,
    /// and chunk outputs are concatenated in order — so the output row
    /// order is the same for every thread count (serial included:
    /// [`Table::join_map`] is this method at one thread).
    ///
    /// When `cfg` carries a shard count above 1 the probe side is first
    /// split into that many contiguous row segments, each executed as its
    /// own pool region in segment order — the relational mirror of the
    /// native engines' one-region-per-shard execution (all workers stream
    /// one storage segment at a time). Segment outputs concatenate in
    /// order, so the result is identical at any shard × thread
    /// combination.
    #[allow(clippy::too_many_arguments)] // join_map's surface + the config
    pub fn join_map_with(
        &self,
        other: &Table,
        self_keys: &[&str],
        other_keys: &[&str],
        name: &str,
        out_columns: &[&str],
        f: impl Fn(&[Value], &[Value]) -> Vec<Value> + Sync,
        cfg: &ParallelismConfig,
    ) -> Table {
        assert_eq!(self_keys.len(), other_keys.len(), "join key arity mismatch");
        let self_idx: Vec<usize> = self_keys.iter().map(|k| self.col(k)).collect();
        let other_idx: Vec<usize> = other_keys.iter().map(|k| other.col(k)).collect();
        // Build on the smaller side.
        let (probe, probe_idx, build, build_idx, probe_is_left) = if other.len() <= self.len() {
            (self, &self_idx, other, &other_idx, true)
        } else {
            (other, &other_idx, self, &self_idx, false)
        };
        let mut index: HashMap<Vec<i64>, Vec<usize>> = HashMap::with_capacity(build.len());
        let mut max_bucket = 0usize;
        for (i, r) in build.rows.iter().enumerate() {
            let bucket = index.entry(Self::key_of(r, build_idx)).or_default();
            bucket.push(i);
            max_bucket = max_bucket.max(bucket.len());
        }
        // Degree-based pessimistic output bound: every probe row matches at
        // most the largest build bucket. Capped so a hub key on a huge probe
        // side cannot pre-allocate gigabytes for a join that mostly misses.
        let reserve_bound = probe.len().saturating_mul(max_bucket).min(1 << 20);
        let probe_chunk = |rows: &[Vec<Value>]| -> Vec<Vec<Value>> {
            let mut out = Vec::new();
            for r in rows {
                if let Some(matches) = index.get(&Self::key_of(r, probe_idx)) {
                    for &i in matches {
                        out.push(if probe_is_left {
                            f(r, &build.rows[i])
                        } else {
                            f(&build.rows[i], r)
                        });
                    }
                }
            }
            out
        };
        // One probe segment per storage shard (1 = the whole probe side),
        // each segment its own pool region in order.
        let segments = even_ranges(probe.len(), cfg.shards());
        let mut out = Table::new(name, out_columns);
        out.reserve(reserve_bound);
        for segment in segments {
            let seg_rows = &probe.rows[segment];
            let parts = cfg.partitions(seg_rows.len().max(build.len()));
            let rows = if parts <= 1 {
                probe_chunk(seg_rows)
            } else {
                let ranges = even_ranges(seg_rows.len(), parts);
                let mut partials: Vec<Vec<Vec<Value>>> =
                    ranges.iter().map(|_| Vec::new()).collect();
                cfg.pool().scope(|s| {
                    for (slot, range) in partials.iter_mut().zip(ranges) {
                        let probe_chunk = &probe_chunk;
                        s.spawn(move || *slot = probe_chunk(&seg_rows[range]));
                    }
                });
                partials.into_iter().flatten().collect()
            };
            for row in rows {
                out.push(row);
            }
        }
        out
    }

    /// Anti-join: `SELECT * FROM self WHERE NOT EXISTS (SELECT 1 FROM other
    /// WHERE other.keys = self.keys)` — the `¬G(t, …)` constructs of
    /// Algorithms 2–4.
    pub fn anti_join(&self, other: &Table, self_keys: &[&str], other_keys: &[&str]) -> Table {
        let self_idx: Vec<usize> = self_keys.iter().map(|k| self.col(k)).collect();
        let other_idx: Vec<usize> = other_keys.iter().map(|k| other.col(k)).collect();
        let index: std::collections::HashSet<Vec<i64>> = other
            .rows
            .iter()
            .map(|r| Self::key_of(r, &other_idx))
            .collect();
        Table::from_rows(
            format!("{}∖{}", self.name, other.name),
            self.columns.clone(),
            self.rows
                .iter()
                .filter(|r| !index.contains(&Self::key_of(r, &self_idx)))
                .cloned()
                .collect(),
        )
    }

    /// `GROUP BY keys` with a single aggregate over `expr(row)`.
    /// Output columns: the key columns followed by `agg_name`.
    pub fn group_by_agg(
        &self,
        name: &str,
        keys: &[&str],
        agg_name: &str,
        fun: AggFun,
        expr: impl Fn(&[Value]) -> Value,
    ) -> Table {
        let key_idx: Vec<usize> = keys.iter().map(|k| self.col(k)).collect();
        let mut groups: HashMap<Vec<i64>, Value> = HashMap::new();
        for r in &self.rows {
            let key = Self::key_of(r, &key_idx);
            let v = expr(r);
            groups
                .entry(key)
                .and_modify(|acc| match fun {
                    AggFun::SumFloat => *acc = Value::Float(acc.as_float() + v.as_float()),
                    AggFun::MinInt => *acc = Value::Int(acc.as_int().min(v.as_int())),
                })
                .or_insert(v);
        }
        let mut out_cols: Vec<&str> = keys.to_vec();
        out_cols.push(agg_name);
        let mut out = Table::new(name, &out_cols);
        out.reserve(groups.len());
        // Deterministic output order: sort by key.
        let mut entries: Vec<(Vec<i64>, Value)> = groups.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, v) in entries {
            let mut row: Vec<Value> = key.into_iter().map(Value::Int).collect();
            row.push(v);
            out.push(row);
        }
        out
    }

    /// `UNION ALL` (schemas must have the same arity; column names are
    /// taken from `self`).
    pub fn union_all(&self, other: &Table) -> Table {
        assert_eq!(
            self.columns.len(),
            other.columns.len(),
            "UNION ALL arity mismatch: {} vs {}",
            self.name,
            other.name
        );
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Table::from_rows(
            format!("{}∪{}", self.name, other.name),
            self.columns.clone(),
            rows,
        )
    }

    /// Upsert by integer key columns: rows of `updates` replace any
    /// existing rows of `self` with the same key, otherwise insert — the
    /// paper's `!T(…)` notation (Fig. 9d: `DELETE … WHERE key IN updates;
    /// INSERT updates`).
    pub fn upsert(&mut self, updates: &Table, keys: &[&str]) {
        assert_eq!(
            self.columns.len(),
            updates.columns.len(),
            "upsert arity mismatch"
        );
        let self_idx: Vec<usize> = keys.iter().map(|k| self.col(k)).collect();
        let upd_idx: Vec<usize> = keys.iter().map(|k| updates.col(k)).collect();
        let updated: std::collections::HashSet<Vec<i64>> = updates
            .rows
            .iter()
            .map(|r| Self::key_of(r, &upd_idx))
            .collect();
        // Incremental like `push`: the per-column frequency maps are exact
        // reference counts, so deleted rows are un-observed and inserted
        // rows observed — cost proportional to the rows touched, not to the
        // whole table.
        let stats = &mut self.stats;
        self.rows.retain(|r| {
            let keep = !updated.contains(&Self::key_of(r, &self_idx));
            if !keep {
                stats.forget_row(r);
            }
            keep
        });
        stats.refresh_maxima();
        for r in &updates.rows {
            self.stats.observe_row(r);
        }
        self.rows.extend(updates.rows.iter().cloned());
    }

    /// Distinct values of one integer column.
    pub fn distinct_ints(&self, column: &str) -> Vec<i64> {
        let idx = self.col(column);
        let mut vals: Vec<i64> = self.rows.iter().map(|r| r[idx].as_int()).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({})", self.name, self.columns.join(", "))?;
        for r in self.rows.iter().take(20) {
            let cells: Vec<String> = r
                .iter()
                .map(|v| match v {
                    Value::Int(i) => i.to_string(),
                    Value::Float(x) => format!("{x:.6}"),
                })
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … ({} rows total)", self.rows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Table {
        let mut t = Table::new("A", &["s", "t", "w"]);
        t.push(vec![Value::Int(0), Value::Int(1), Value::Float(1.0)]);
        t.push(vec![Value::Int(1), Value::Int(0), Value::Float(1.0)]);
        t.push(vec![Value::Int(1), Value::Int(2), Value::Float(2.0)]);
        t.push(vec![Value::Int(2), Value::Int(1), Value::Float(2.0)]);
        t
    }

    #[test]
    fn filter_and_project() {
        let a = edges();
        let from1 = a.filter("f", |r| r[0].as_int() == 1);
        assert_eq!(from1.len(), 2);
        let doubled = a.project("p", &["s", "w2"], |r| {
            vec![r[0], Value::Float(r[2].as_float() * 2.0)]
        });
        assert_eq!(doubled.rows()[2][1], Value::Float(4.0));
    }

    #[test]
    fn join_map_basic() {
        let a = edges();
        let mut labels = Table::new("E", &["v", "b"]);
        labels.push(vec![Value::Int(1), Value::Float(0.5)]);
        // Join edges with source labels: propagate b·w to targets.
        let out = a.join_map(&labels, &["s"], &["v"], "V", &["t", "bw"], |l, r| {
            vec![l[1], Value::Float(l[2].as_float() * r[1].as_float())]
        });
        assert_eq!(out.len(), 2); // edges (1,0) and (1,2)
        let mut targets = out.distinct_ints("t");
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 2]);
    }

    #[test]
    fn join_builds_on_smaller_side_consistently() {
        // Same result regardless of which side is larger.
        let a = edges();
        let mut big = Table::new("big", &["v", "x"]);
        for i in 0..100 {
            big.push(vec![Value::Int(i % 3), Value::Float(i as f64)]);
        }
        let j1 = a.join_map(&big, &["s"], &["v"], "j", &["s", "x"], |l, r| {
            vec![l[0], r[1]]
        });
        let j2 = big.join_map(&a, &["v"], &["s"], "j", &["s", "x"], |l, r| {
            vec![r[0], l[1]]
        });
        assert_eq!(j1.len(), j2.len());
    }

    /// The parallel-probe join produces exactly `join_map`'s rows, in the
    /// same order, for every thread count.
    #[test]
    fn join_map_with_matches_serial() {
        let a = edges();
        let mut big = Table::new("big", &["v", "x"]);
        for i in 0..200 {
            big.push(vec![Value::Int(i % 3), Value::Float(i as f64)]);
        }
        let project = |l: &[Value], r: &[Value]| vec![l[0], r[1]];
        let serial = big.join_map(&a, &["v"], &["s"], "j", &["v", "w"], project);
        for threads in [1usize, 2, 8] {
            let cfg = ParallelismConfig::with_threads(threads).with_min_work(1);
            let par = big.join_map_with(&a, &["v"], &["s"], "j", &["v", "w"], project, &cfg);
            assert_eq!(par, serial, "threads = {threads}");
        }
        // Probe-side flip (left smaller) must match too.
        let serial_flip = a.join_map(&big, &["s"], &["v"], "j", &["s", "x"], project);
        let cfg = ParallelismConfig::with_threads(4).with_min_work(1);
        let par_flip = a.join_map_with(&big, &["s"], &["v"], "j", &["s", "x"], project, &cfg);
        assert_eq!(par_flip, serial_flip);
    }

    #[test]
    fn anti_join_not_exists() {
        let a = edges();
        let mut seen = Table::new("G", &["v"]);
        seen.push(vec![Value::Int(0)]);
        let unseen = a.anti_join(&seen, &["t"], &["v"]);
        // Rows whose target is NOT node 0: (0,1), (1,2), (2,1).
        assert_eq!(unseen.len(), 3);
    }

    #[test]
    fn group_by_sum() {
        let a = edges();
        let deg = a.group_by_agg("D", &["s"], "d", AggFun::SumFloat, |r| {
            let w = r[2].as_float();
            Value::Float(w * w)
        });
        assert_eq!(deg.len(), 3);
        // Deterministic order by key.
        assert_eq!(deg.rows()[0], vec![Value::Int(0), Value::Float(1.0)]);
        assert_eq!(deg.rows()[1], vec![Value::Int(1), Value::Float(5.0)]);
        assert_eq!(deg.rows()[2], vec![Value::Int(2), Value::Float(4.0)]);
    }

    #[test]
    fn group_by_min() {
        let mut g = Table::new("G", &["v", "g"]);
        g.push(vec![Value::Int(7), Value::Int(4)]);
        g.push(vec![Value::Int(7), Value::Int(2)]);
        g.push(vec![Value::Int(8), Value::Int(1)]);
        let m = g.group_by_agg("Gm", &["v"], "g", AggFun::MinInt, |r| r[1]);
        assert_eq!(m.rows()[0], vec![Value::Int(7), Value::Int(2)]);
        assert_eq!(m.rows()[1], vec![Value::Int(8), Value::Int(1)]);
    }

    #[test]
    fn union_and_upsert() {
        let mut b = Table::new("B", &["v", "c", "b"]);
        b.push(vec![Value::Int(0), Value::Int(0), Value::Float(1.0)]);
        b.push(vec![Value::Int(0), Value::Int(1), Value::Float(-1.0)]);
        b.push(vec![Value::Int(1), Value::Int(0), Value::Float(0.5)]);
        let mut upd = Table::new("Bn", &["v", "c", "b"]);
        upd.push(vec![Value::Int(0), Value::Int(0), Value::Float(9.0)]);
        upd.push(vec![Value::Int(0), Value::Int(1), Value::Float(-9.0)]);
        b.upsert(&upd, &["v"]);
        // Node 0 fully replaced, node 1 untouched.
        assert_eq!(b.len(), 3);
        let node0: Vec<f64> = b
            .rows()
            .iter()
            .filter(|r| r[0].as_int() == 0)
            .map(|r| r[2].as_float())
            .collect();
        assert_eq!(node0, vec![9.0, -9.0]);
        let u = b.union_all(&upd);
        assert_eq!(u.len(), 5);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        let a = edges();
        let _ = a.col("nope");
    }

    #[test]
    fn try_col_is_fallible() {
        let a = edges();
        assert_eq!(a.try_col("s"), Some(0));
        assert_eq!(a.try_col("nope"), None);
    }

    #[test]
    fn stats_track_appends_and_rebuilds_on_upsert() {
        let a = edges();
        // Column s: values 0,1,1,2 → 3 distinct, max degree 2.
        assert_eq!(a.stats().rows(), 4);
        assert_eq!(a.stats().column(0).distinct(), Some(3));
        assert_eq!(a.stats().column(0).max_freq(), Some(2));
        // Column w is float → untracked.
        assert_eq!(a.stats().column(2).distinct(), None);

        let mut b = Table::new("B", &["v", "b"]);
        b.push(vec![Value::Int(0), Value::Int(10)]);
        b.push(vec![Value::Int(1), Value::Int(11)]);
        let mut upd = Table::new("Bn", &["v", "b"]);
        upd.push(vec![Value::Int(1), Value::Int(12)]);
        upd.push(vec![Value::Int(2), Value::Int(13)]);
        b.upsert(&upd, &["v"]);
        // Rows now {0,1,2} → stats must reflect the rewrite, not the
        // append history.
        assert_eq!(b.stats().rows(), 3);
        assert_eq!(b.stats().column(0).distinct(), Some(3));
        assert_eq!(b.stats().column(0).max_freq(), Some(1));
    }

    /// Upsert maintains statistics incrementally; this pins the invariant
    /// that the incremental state is *equal* to a from-scratch rebuild over
    /// the post-upsert rows, through a sequence of upserts exercising the
    /// tricky paths: deleting a value at max multiplicity (max must drop),
    /// deleting the last float in a column (tracking must resume), and
    /// inserting floats (tracking must stop).
    #[test]
    fn upsert_stats_match_from_scratch_rebuild() {
        let mut t = Table::new("T", &["k", "v", "w"]);
        t.push(vec![Value::Int(0), Value::Int(5), Value::Float(0.5)]);
        t.push(vec![Value::Int(1), Value::Int(5), Value::Int(7)]);
        t.push(vec![Value::Int(2), Value::Int(5), Value::Int(7)]);
        t.push(vec![Value::Int(3), Value::Int(6), Value::Int(8)]);

        // Deletes the float row (column w becomes all-int again) and two of
        // the three rows holding v=5 (the max-frequency value of column v).
        let mut upd = Table::new("U", &["k", "v", "w"]);
        upd.push(vec![Value::Int(0), Value::Int(9), Value::Int(1)]);
        upd.push(vec![Value::Int(1), Value::Int(6), Value::Int(1)]);
        upd.push(vec![Value::Int(4), Value::Int(6), Value::Int(2)]);
        t.upsert(&upd, &["k"]);
        assert_eq!(
            t.stats(),
            &TableStats::from_rows(t.columns().len(), t.rows()),
            "incremental upsert stats diverged from a from-scratch rebuild"
        );
        assert!(t.stats().column(2).is_tracked());
        assert_eq!(t.stats().column(1).max_freq(), Some(3)); // v=6 three times
        assert_eq!(t.stats().column(2).max_freq(), Some(2)); // w=1 twice

        // Re-introduce a float, replacing every remaining original row.
        let mut upd2 = Table::new("U2", &["k", "v", "w"]);
        upd2.push(vec![Value::Int(2), Value::Int(5), Value::Float(1.5)]);
        upd2.push(vec![Value::Int(3), Value::Int(5), Value::Int(1)]);
        t.upsert(&upd2, &["k"]);
        assert_eq!(
            t.stats(),
            &TableStats::from_rows(t.columns().len(), t.rows()),
            "incremental upsert stats diverged after re-introducing a float"
        );
        assert!(!t.stats().column(2).is_tracked());
        assert_eq!(t.stats().rows(), 5);

        // Empty upsert is a no-op for stats as well.
        let empty = Table::new("E", &["k", "v", "w"]);
        t.upsert(&empty, &["k"]);
        assert_eq!(
            t.stats(),
            &TableStats::from_rows(t.columns().len(), t.rows())
        );
    }

    #[test]
    fn derived_tables_carry_stats() {
        let a = edges();
        let f = a.filter("f", |r| r[0].as_int() == 1);
        assert_eq!(f.stats().rows(), 2);
        assert_eq!(f.stats().column(0).distinct(), Some(1));
        assert_eq!(f.stats().column(0).max_freq(), Some(2));
        let u = a.union_all(&a);
        assert_eq!(u.stats().rows(), 8);
        assert_eq!(u.stats().column(0).max_freq(), Some(4));
    }

    /// The parallel segmented filter returns exactly the serial rows, in
    /// order, for every shard × thread combination.
    #[test]
    fn filter_rows_with_matches_serial() {
        let mut big = Table::new("big", &["v", "x"]);
        for i in 0..500 {
            big.push(vec![Value::Int(i % 7), Value::Float(i as f64)]);
        }
        let pred = |r: &[Value]| r[0].as_int() <= 2;
        let serial: Vec<Vec<Value>> = big.rows().iter().filter(|r| pred(r)).cloned().collect();
        for (threads, shards) in [(1, 1), (2, 1), (4, 3), (8, 5)] {
            let cfg = ParallelismConfig::with_threads(threads)
                .with_shards(shards)
                .with_min_work(1);
            let par = big.filter_rows_with(&pred, &cfg);
            assert_eq!(par, serial, "threads={threads} shards={shards}");
        }
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(4).as_float(), 4.0);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert_eq!(Value::Int(4).as_int(), 4);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn float_as_int_panics() {
        let _ = Value::Float(1.5).as_int();
    }
}

//! A small SQL dialect: tokenizer, AST and recursive-descent parser.
//!
//! Covers exactly what the paper's SQL formulations need (Sect. 5.3,
//! Sect. 6.3, Appendix D):
//!
//! * `SELECT expr [AS name], …` with `SUM`/`MIN`/`MAX` aggregates,
//! * `FROM table [alias], …` including parenthesized subqueries
//!   (`(SELECT …) AS x` — Fig. 9b),
//! * `WHERE` conjunctions of comparisons and `[NOT] IN (SELECT …)`
//!   (Fig. 9c's anti-join),
//! * `GROUP BY col, …`,
//! * `CREATE TABLE t AS SELECT …` (Fig. 9a),
//! * `INSERT INTO t SELECT … / (SELECT …)`,
//! * `DELETE FROM t WHERE col IN (SELECT …)` (Fig. 9d),
//! * arithmetic `+ − * /` over columns and numeric literals; quoted
//!   numeric literals (`'0'`, `'1'`) are accepted as integers, as the
//!   paper writes them.

use std::fmt;

/// Tokens of the dialect.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched case-
    /// insensitively; identifiers keep their original spelling).
    Ident(String),
    /// Numeric literal (integer or float; also produced by quoted numbers).
    Number(f64),
    /// `.` `,` `(` `)` `*` `+` `-` `/` `=` `<` `>` `<=` `>=` `<>` `;`
    Symbol(String),
}

/// Parse errors: a human-readable message plus, when known, the byte
/// offset into the original SQL string where the problem sits — so a
/// failure in a generated multi-line script reads
/// `unexpected character '%' at byte 17` instead of leaving the caller
/// to hunt through the whole statement.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character/token in the input, when
    /// the error can be pinned to one.
    pub offset: Option<usize>,
}

impl ParseError {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Shifts the recorded offset by `base` bytes — used to translate a
    /// per-statement offset into a whole-script offset.
    fn rebase(mut self, base: usize) -> Self {
        self.offset = self.offset.map(|o| o + base);
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.message)?;
        if let Some(offset) = self.offset {
            write!(f, " at byte {offset}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes a SQL string, tagging every token with the byte offset of
/// its first character in `sql`.
pub fn tokenize_spanned(sql: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = sql.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (at, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].1.is_ascii_alphanumeric() || chars[i].1 == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().map(|&(_, c)| c).collect();
            tokens.push((Token::Ident(text), at));
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].1.is_ascii_digit())
        {
            let start = i;
            while i < chars.len()
                && (chars[i].1.is_ascii_digit()
                    || chars[i].1 == '.'
                    || chars[i].1 == 'e'
                    || chars[i].1 == 'E'
                    || ((chars[i].1 == '+' || chars[i].1 == '-')
                        && matches!(chars[i - 1].1, 'e' | 'E')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().map(|&(_, c)| c).collect();
            let value: f64 = text
                .parse()
                .map_err(|_| ParseError::at(format!("bad number literal '{text}'"), at))?;
            tokens.push((Token::Number(value), at));
        } else if c == '\'' {
            // Quoted literal — the paper quotes integers ('0', '1').
            let start = i + 1;
            i += 1;
            while i < chars.len() && chars[i].1 != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(ParseError::at("unterminated string literal", at));
            }
            let text: String = chars[start..i].iter().map(|&(_, c)| c).collect();
            i += 1; // closing quote
            let value: f64 = text.parse().map_err(|_| {
                ParseError::at(
                    format!("only numeric quoted literals supported: '{text}'"),
                    at,
                )
            })?;
            tokens.push((Token::Number(value), at));
        } else if c == '<'
            && i + 1 < chars.len()
            && (chars[i + 1].1 == '=' || chars[i + 1].1 == '>')
        {
            tokens.push((Token::Symbol(format!("<{}", chars[i + 1].1)), at));
            i += 2;
        } else if c == '>' && i + 1 < chars.len() && chars[i + 1].1 == '=' {
            tokens.push((Token::Symbol(">=".into()), at));
            i += 2;
        } else if "().,*+-/=<>;".contains(c) {
            tokens.push((Token::Symbol(c.to_string()), at));
            i += 1;
        } else {
            return Err(ParseError::at(format!("unexpected character '{c}'"), at));
        }
    }
    Ok(tokens)
}

/// Tokenizes a SQL string (offsets discarded — see [`tokenize_spanned`]).
pub fn tokenize(sql: &str) -> Result<Vec<Token>, ParseError> {
    Ok(tokenize_spanned(sql)?.into_iter().map(|(t, _)| t).collect())
}

/// A (possibly qualified) column reference.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    /// Table alias, if written as `alias.column`.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Byte offset of the reference in the SQL text, when parsed from one
    /// — lets execution-time `UnknownColumn` errors point at the exact
    /// spot, like parse errors do.
    pub offset: Option<usize>,
}

/// Scalar expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Numeric literal.
    Literal(f64),
    /// Binary arithmetic: `+ - * /`.
    Binary(Box<Expr>, char, Box<Expr>),
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFun {
    /// `SUM(expr)`
    Sum,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One item of a SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Scalar expression with optional alias.
    Expr {
        /// The expression to evaluate per row.
        expr: Expr,
        /// Output column name (`AS name`).
        alias: Option<String>,
    },
    /// Aggregate with optional alias.
    Aggregate {
        /// Aggregate function.
        fun: AggregateFun,
        /// Argument expression.
        arg: Expr,
        /// Output column name (`AS name`).
        alias: Option<String>,
    },
}

/// A FROM-clause source.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Named {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `(SELECT …) [AS] alias`
    Subquery {
        /// The inner query.
        query: Box<Select>,
        /// Mandatory alias naming the derived table.
        alias: String,
    },
}

/// WHERE predicates (conjunction members).
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `expr op expr` with op ∈ {=, <, >, <=, >=, <>}.
    Compare(Expr, String, Expr),
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Probe expression.
        expr: Expr,
        /// The subquery whose first column is the membership set.
        query: Box<Select>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
}

/// A SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM sources (comma-joined, like the paper's SQL).
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
}

/// Top-level statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `SELECT …`
    Select(Select),
    /// `EXPLAIN SELECT …` — plan the query, run it, and report the plan
    /// tree with estimated bounds next to actual cardinalities.
    Explain {
        /// The query to plan and report on.
        query: Select,
    },
    /// `CREATE TABLE name AS SELECT …`
    CreateTableAs {
        /// New table name.
        name: String,
        /// Defining query.
        query: Select,
    },
    /// `INSERT INTO name [(]SELECT …[)]`
    InsertSelect {
        /// Target table.
        table: String,
        /// Source query.
        query: Select,
    },
    /// `DELETE FROM name WHERE predicates`
    Delete {
        /// Target table.
        table: String,
        /// Conjunctive deletion condition.
        predicates: Vec<Predicate>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table to remove.
        name: String,
    },
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Binary(l, op, r) => {
                let paren = |f: &mut fmt::Formatter<'_>, e: &Expr| -> fmt::Result {
                    if matches!(e, Expr::Binary(..)) {
                        write!(f, "({e})")
                    } else {
                        write!(f, "{e}")
                    }
                };
                paren(f, l)?;
                write!(f, " {op} ")?;
                paren(f, r)
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare(l, op, r) => write!(f, "{l} {op} {r}"),
            Predicate::InSubquery {
                expr,
                query,
                negated,
            } => {
                let not = if *negated { "not " } else { "" };
                write!(f, "{expr} {not}in ({query})")
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let alias_suffix = |f: &mut fmt::Formatter<'_>, a: &Option<String>| -> fmt::Result {
            match a {
                Some(a) => write!(f, " as {a}"),
                None => Ok(()),
            }
        };
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                alias_suffix(f, alias)
            }
            SelectItem::Aggregate { fun, arg, alias } => {
                let name = match fun {
                    AggregateFun::Sum => "sum",
                    AggregateFun::Min => "min",
                    AggregateFun::Max => "max",
                };
                write!(f, "{name}({arg})")?;
                alias_suffix(f, alias)
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => match alias {
                Some(a) => write!(f, "{name} {a}"),
                None => write!(f, "{name}"),
            },
            TableRef::Subquery { query, alias } => write!(f, "({query}) as {alias}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " from ")?;
        for (i, src) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{src}")?;
        }
        for (i, p) in self.predicates.iter().enumerate() {
            write!(f, " {} {p}", if i == 0 { "where" } else { "and" })?;
        }
        for (i, g) in self.group_by.iter().enumerate() {
            write!(f, "{} {g}", if i == 0 { " group by" } else { "," })?;
        }
        Ok(())
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    /// Byte length of the input — where errors at end-of-input point.
    end: usize,
}

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser {
        tokens: tokenize_spanned(sql)?,
        pos: 0,
        end: sql.len(),
    };
    let stmt = p.statement()?;
    p.eat_symbol(";"); // optional
    if p.pos != p.tokens.len() {
        return Err(ParseError::at(
            format!("trailing tokens after statement: {:?}", p.peek()),
            p.offset(),
        ));
    }
    Ok(stmt)
}

/// Parses a `;`-separated script. Error offsets refer to the whole
/// script string, not the failing statement alone.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let mut statements = Vec::new();
    let mut base = 0;
    for piece in sql.split(';') {
        let trimmed = piece.trim();
        if !trimmed.is_empty() {
            let lead = piece.len() - piece.trim_start().len();
            statements.push(parse(trimmed).map_err(|e| e.rebase(base + lead))?);
        }
        base += piece.len() + 1; // + the ';' separator
    }
    Ok(statements)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// Byte offset of the current token (end of input when exhausted).
    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.end, |&(_, o)| o)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected keyword {kw}, found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected '{sym}', found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let at = self.offset();
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::at(
                format!("expected identifier, found {other:?}"),
                at,
            )),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_keyword("explain") {
            Ok(Statement::Explain {
                query: self.select()?,
            })
        } else if self.eat_keyword("create") {
            self.expect_keyword("table")?;
            let name = self.ident()?;
            self.expect_keyword("as")?;
            let parenthesized = self.eat_symbol("(");
            let query = self.select()?;
            if parenthesized {
                self.expect_symbol(")")?;
            }
            Ok(Statement::CreateTableAs { name, query })
        } else if self.eat_keyword("insert") {
            self.expect_keyword("into")?;
            let table = self.ident()?;
            let parenthesized = self.eat_symbol("(");
            let query = self.select()?;
            if parenthesized {
                self.expect_symbol(")")?;
            }
            Ok(Statement::InsertSelect { table, query })
        } else if self.eat_keyword("delete") {
            self.expect_keyword("from")?;
            let table = self.ident()?;
            let predicates = if self.eat_keyword("where") {
                self.predicates()?
            } else {
                Vec::new()
            };
            Ok(Statement::Delete { table, predicates })
        } else if self.eat_keyword("drop") {
            self.expect_keyword("table")?;
            let name = self.ident()?;
            Ok(Statement::DropTable { name })
        } else {
            Err(ParseError::at(
                format!("expected a statement, found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let mut from = vec![self.table_ref()?];
        // Comma joins and explicit `[INNER] JOIN … ON …` mix freely; the ON
        // conjunction desugars into ordinary WHERE predicates (the planner
        // treats both spellings identically).
        let mut join_predicates = Vec::new();
        loop {
            if self.eat_symbol(",") {
                from.push(self.table_ref()?);
            } else if self.peek_keyword("join") || self.peek_keyword("inner") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                from.push(self.table_ref()?);
                self.expect_keyword("on")?;
                join_predicates.extend(self.predicates()?);
            } else {
                break;
            }
        }
        let mut predicates = join_predicates;
        if self.eat_keyword("where") {
            predicates.extend(self.predicates()?);
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.column_ref()?);
            while self.eat_symbol(",") {
                group_by.push(self.column_ref()?);
            }
        }
        Ok(Select {
            items,
            from,
            predicates,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        for (kw, fun) in [
            ("sum", AggregateFun::Sum),
            ("min", AggregateFun::Min),
            ("max", AggregateFun::Max),
        ] {
            if self.peek_keyword(kw)
                && matches!(self.tokens.get(self.pos + 1), Some((Token::Symbol(s), _)) if s == "(")
            {
                self.pos += 1;
                self.expect_symbol("(")?;
                let arg = self.expr()?;
                self.expect_symbol(")")?;
                let alias = self.optional_alias()?;
                return Ok(SelectItem::Aggregate { fun, arg, alias });
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.eat_symbol("(") {
            let query = Box::new(self.select()?);
            self.expect_symbol(")")?;
            self.eat_keyword("as");
            let alias = self.ident()?;
            Ok(TableRef::Subquery { query, alias })
        } else {
            let name = self.ident()?;
            // An alias is any identifier that is not a clause keyword.
            let alias = match self.peek() {
                Some(Token::Ident(s))
                    if !["where", "group", "on", "inner", "join", "order"]
                        .iter()
                        .any(|kw| s.eq_ignore_ascii_case(kw)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            };
            Ok(TableRef::Named { name, alias })
        }
    }

    fn predicates(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = vec![self.predicate()?];
        while self.eat_keyword("and") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let lhs = self.expr()?;
        // [NOT] IN (SELECT …)
        if self.eat_keyword("not") {
            self.expect_keyword("in")?;
            self.expect_symbol("(")?;
            let query = Box::new(self.select()?);
            self.expect_symbol(")")?;
            return Ok(Predicate::InSubquery {
                expr: lhs,
                query,
                negated: true,
            });
        }
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            let query = Box::new(self.select()?);
            self.expect_symbol(")")?;
            return Ok(Predicate::InSubquery {
                expr: lhs,
                query,
                negated: false,
            });
        }
        let at = self.offset();
        let op = match self.next() {
            Some(Token::Symbol(s)) if ["=", "<", ">", "<=", ">=", "<>"].contains(&s.as_str()) => s,
            other => {
                return Err(ParseError::at(
                    format!("expected comparison, found {other:?}"),
                    at,
                ))
            }
        };
        let rhs = self.expr()?;
        Ok(Predicate::Compare(lhs, op, rhs))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_symbol("+") {
                lhs = Expr::Binary(Box::new(lhs), '+', Box::new(self.term()?));
            } else if self.eat_symbol("-") {
                lhs = Expr::Binary(Box::new(lhs), '-', Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat_symbol("*") {
                lhs = Expr::Binary(Box::new(lhs), '*', Box::new(self.factor()?));
            } else if self.eat_symbol("/") {
                lhs = Expr::Binary(Box::new(lhs), '/', Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        if self.eat_symbol("-") {
            let e = self.factor()?;
            return Ok(Expr::Binary(Box::new(Expr::Literal(0.0)), '-', Box::new(e)));
        }
        let at = self.offset();
        match self.next() {
            Some(Token::Number(v)) => Ok(Expr::Literal(v)),
            Some(Token::Ident(name)) => {
                if self.eat_symbol(".") {
                    let column = self.ident()?;
                    Ok(Expr::Column(ColumnRef {
                        table: Some(name),
                        column,
                        offset: Some(at),
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        table: None,
                        column: name,
                        offset: Some(at),
                    }))
                }
            }
            other => Err(ParseError::at(
                format!("expected expression, found {other:?}"),
                at,
            )),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let at = self.offset();
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
                offset: Some(at),
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
                offset: Some(at),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        let t = tokenize("select a.b, 1.5e2 from T where x <> '0';").unwrap();
        assert!(t.contains(&Token::Number(150.0)));
        assert!(t.contains(&Token::Symbol("<>".into())));
        assert!(t.contains(&Token::Number(0.0)));
    }

    #[test]
    fn tokenizer_rejects_garbage() {
        assert!(tokenize("select @").is_err());
        assert!(tokenize("select 'abc' from t").is_err()); // non-numeric literal
        assert!(tokenize("select 'unterminated").is_err());
    }

    #[test]
    fn parse_simple_select() {
        let s = parse("select v, b from B where b > 0.5").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.from.len(), 1);
        assert_eq!(sel.predicates.len(), 1);
    }

    /// Fig. 9a verbatim: the H² computation.
    #[test]
    fn parse_fig9a() {
        let s = parse(
            "create table H2 as select H1.c1, H2.c2, sum(H1.h*H2.h) as h \
             from H H1, H H2 where H1.c2 = H2.c1 group by H1.c1, H2.c2",
        )
        .unwrap();
        let Statement::CreateTableAs { name, query } = s else {
            panic!()
        };
        assert_eq!(name, "H2");
        assert_eq!(query.from.len(), 2);
        assert_eq!(query.group_by.len(), 2);
        assert!(matches!(
            query.items[2],
            SelectItem::Aggregate {
                fun: AggregateFun::Sum,
                ..
            }
        ));
    }

    /// Fig. 9b verbatim: top-belief assignment with a FROM subquery.
    #[test]
    fn parse_fig9b() {
        let s = parse(
            "(select B.v, B.c from B, (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
             where B.v = X.v and B.b = X.b)",
        );
        // Outer parentheses around a bare SELECT are not a statement; strip
        // them like the paper's display and parse the inner statement.
        assert!(s.is_err());
        let inner = parse(
            "select B.v, B.c from B, (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
             where B.v = X.v and B.b = X.b",
        )
        .unwrap();
        let Statement::Select(sel) = inner else {
            panic!()
        };
        assert!(matches!(&sel.from[1], TableRef::Subquery { alias, .. } if alias == "X"));
        assert_eq!(sel.predicates.len(), 2);
    }

    /// Fig. 9c verbatim: NOT IN anti-join with quoted numeric literals.
    #[test]
    fn parse_fig9c() {
        let s = parse(
            "insert into G (select A.s, '1' from G, A where G.v = A.s and G.g = '0' \
             and A.t not in (select G.v from G))",
        )
        .unwrap();
        let Statement::InsertSelect { table, query } = s else {
            panic!()
        };
        assert_eq!(table, "G");
        assert!(matches!(
            query.predicates.last(),
            Some(Predicate::InSubquery { negated: true, .. })
        ));
    }

    /// Fig. 9d verbatim: the upsert as DELETE + INSERT.
    #[test]
    fn parse_fig9d() {
        let script = parse_script(
            "delete from B where v in (select Bn.v from Bn); insert into B select * from Bn;",
        )
        .unwrap();
        assert_eq!(script.len(), 2);
        assert!(matches!(&script[0], Statement::Delete { .. }));
        let Statement::InsertSelect { query, .. } = &script[1] else {
            panic!()
        };
        assert!(matches!(query.items[0], SelectItem::Wildcard));
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let s = parse("select a + b * c - 2 from T").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // ((a + (b*c)) - 2)
        let Expr::Binary(lhs, '-', _) = expr else {
            panic!("{expr:?}")
        };
        let Expr::Binary(_, '+', mul) = lhs.as_ref() else {
            panic!()
        };
        assert!(matches!(mul.as_ref(), Expr::Binary(_, '*', _)));
    }

    #[test]
    fn parse_unary_minus() {
        let s = parse("select -b from T").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(&sel.items[0], SelectItem::Expr { .. }));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("select from T").is_err());
        assert!(parse("select a T").is_err());
        assert!(parse("delete B").is_err());
        assert!(parse("select a from T where a ==").is_err());
        assert!(parse("select a from T group a").is_err());
    }

    #[test]
    fn parse_explain() {
        let s = parse("explain select a from T where a = 1").unwrap();
        let Statement::Explain { query } = s else {
            panic!("{s:?}")
        };
        assert_eq!(query.items.len(), 1);
        assert_eq!(query.predicates.len(), 1);
        // EXPLAIN requires a SELECT.
        assert!(parse("explain drop table T").is_err());
    }

    #[test]
    fn parse_join_on_desugars_to_predicates() {
        let s = parse(
            "select A.t from A join B on A.s = B.v inner join H on B.c = H.c1 \
             where H.h > 0",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 3);
        // Two ON equalities first, then the WHERE comparison.
        assert_eq!(sel.predicates.len(), 3);
        assert!(matches!(&sel.predicates[0], Predicate::Compare(_, op, _) if op == "="));
        assert!(matches!(&sel.predicates[2], Predicate::Compare(_, op, _) if op == ">"));
        // A JOIN without ON is rejected.
        assert!(parse("select * from A join B").is_err());
    }

    #[test]
    fn column_refs_carry_byte_offsets() {
        let sql = "select a from T where T.b = 1";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        let SelectItem::Expr {
            expr: Expr::Column(a),
            ..
        } = &sel.items[0]
        else {
            panic!()
        };
        assert_eq!(a.offset, Some(7));
        let Predicate::Compare(Expr::Column(b), _, _) = &sel.predicates[0] else {
            panic!()
        };
        assert_eq!(b.offset, Some(sql.find("T.b").unwrap()));
    }

    #[test]
    fn select_display_reparses_to_same_ast() {
        for sql in [
            "select B.v, B.c from B, (select B2.v, max(B2.b) as b from B B2 group by B2.v) as X \
             where B.v = X.v and B.b = X.b",
            "select A.s, sum(A.w * B.b) as b from A, B where A.s = B.v group by A.s",
            "select s from A where t not in (select v from G) and s > 0.5",
        ] {
            let Statement::Select(sel) = parse(sql).unwrap() else {
                panic!()
            };
            let rendered = sel.to_string();
            let Statement::Select(again) = parse(&rendered).unwrap() else {
                panic!("rendered SQL failed to parse: {rendered}")
            };
            // Offsets shift between spellings; compare offset-free shapes.
            assert_eq!(format!("{again}"), rendered);
        }
    }

    #[test]
    fn drop_table() {
        assert!(matches!(
            parse("drop table Bn").unwrap(),
            Statement::DropTable { name } if name == "Bn"
        ));
    }

    #[test]
    fn lexer_errors_carry_byte_offsets() {
        // "select a from t %" — the '%' sits at byte 16.
        let err = tokenize("select a from t %").unwrap_err();
        assert_eq!(err.offset, Some(16));
        assert_eq!(
            err.to_string(),
            "SQL parse error: unexpected character '%' at byte 16"
        );

        // Multi-byte characters before the bad one (U+00A0 no-break
        // space): offsets are *byte* offsets, not char counts.
        let sql = "select\u{00A0}a from t %";
        let err = tokenize(sql).unwrap_err();
        assert_eq!(err.offset, Some(sql.find('%').unwrap()));

        let err = tokenize("select 'abc' from t").unwrap_err();
        assert_eq!(err.offset, Some(7)); // the opening quote
        let err = tokenize("select 1.2.3").unwrap_err();
        assert_eq!(err.offset, Some(7)); // start of the bad number
        let err = tokenize("select 'oops").unwrap_err();
        assert_eq!(err.offset, Some(7)); // the unterminated quote
    }

    #[test]
    fn parser_errors_carry_byte_offsets() {
        // The offending token (not just "somewhere in the statement").
        let err = parse("select a frm t").unwrap_err();
        assert_eq!(err.offset, Some(9)); // "frm"
        let err = parse("select a from t where a ==").unwrap_err();
        assert_eq!(err.offset, Some(25)); // the second '='
                                          // Exhausted input points at end-of-string.
        let err = parse("select a from").unwrap_err();
        assert_eq!(err.offset, Some(13));
        let err = parse("select a from t extra junk").unwrap_err();
        assert_eq!(err.offset, Some(22)); // "junk" (t..extra parse as table+alias)
    }

    #[test]
    fn script_errors_rebase_to_whole_script_offsets() {
        let script = "delete from B where v in (select Bn.v from Bn); select %";
        let err = parse_script(script).unwrap_err();
        assert_eq!(err.offset, Some(script.find('%').unwrap()));
        assert!(err
            .to_string()
            .ends_with(&format!("at byte {}", script.find('%').unwrap())));
    }
}

//! Incrementally maintained per-table statistics feeding the query planner.
//!
//! Every [`crate::Table`](crate::engine::Table) carries a [`TableStats`]:
//! the exact row count plus, for each column that has only ever held
//! integer values, the number of distinct values and the multiplicity of
//! the most frequent value (the *max degree* of that column viewed as a
//! join key). The planner in [`crate::plan`] turns these into pessimistic
//! cardinality bounds — upper bounds that hold for *any* data, never
//! optimistic guesses — in the style of worst-case output bounds for
//! joins (AGM / functional-dependency bounds).
//!
//! Maintenance is incremental on both the append path
//! ([`TableStats::observe_row`], called from `Table::push`) and the delete
//! path ([`TableStats::forget_row`], called from `Table::upsert`): the
//! per-value frequency maps are exact reference counts, so removed rows
//! are un-observed rather than triggering an `O(rows)` rebuild. Columns
//! currently holding at least one float value are untracked (`Float` join
//! keys are legal in the SQL layer but rare; the planner falls back to
//! row-count-only bounds there) — tracking resumes exactly once the last
//! float row is deleted, matching a from-scratch rebuild bit for bit.

use crate::engine::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A tiny Fx-style multiply-rotate hasher for `i64` keys.
///
/// The frequency maps sit on the row-append hot path; SipHash (the std
/// default) costs more than the surrounding work for 8-byte keys. This is
/// the classic `FxHasher` construction (wrapping multiply by a golden-ratio
/// derived constant, rotate, xor) specialised to the `write_i64` calls the
/// stats maps actually make. Not DoS-resistant — fine for statistics.
#[derive(Default)]
pub struct FxHasher64 {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(FX_SEED);
    }
}

type FxFreqMap = HashMap<i64, u32, BuildHasherDefault<FxHasher64>>;

/// Statistics for one column: distinct count and max frequency.
///
/// Tracking is *exact* while the column currently holds only `Value::Int`
/// values. While at least one float is present the column reports as
/// untracked (the planner then knows nothing about it beyond the table's
/// row count, which is still a valid upper bound on both distinct count
/// and max frequency), but the integer frequency map keeps being
/// maintained underneath — so when the last float row is deleted, exact
/// tracking resumes with the same state a from-scratch rebuild would
/// produce.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnStats {
    /// Integer value → multiplicity (an exact reference count).
    freq: FxFreqMap,
    /// Number of float values currently present in the column.
    floats: u64,
    /// Multiplicity of the most frequent integer value currently present.
    max_freq: u32,
    /// Set when an [`unobserve`](ColumnStats::unobserve) may have lowered
    /// the maximum; cleared by [`refresh_max`](ColumnStats::refresh_max).
    max_dirty: bool,
}

impl ColumnStats {
    /// Number of distinct values, or `None` if the column is untracked.
    pub fn distinct(&self) -> Option<usize> {
        self.is_tracked().then_some(self.freq.len())
    }

    /// Multiplicity of the most frequent value (max join degree), or
    /// `None` if the column is untracked.
    pub fn max_freq(&self) -> Option<usize> {
        debug_assert!(
            !self.max_dirty,
            "ColumnStats::max_freq read while dirty — missing refresh after forget_row"
        );
        self.is_tracked().then_some(self.max_freq as usize)
    }

    /// Whether the column currently has exact distinct/degree tracking.
    pub fn is_tracked(&self) -> bool {
        self.floats == 0
    }

    #[inline]
    fn observe(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                let slot = self.freq.entry(*i).or_insert(0);
                *slot += 1;
                if *slot > self.max_freq {
                    self.max_freq = *slot;
                }
            }
            Value::Float(_) => self.floats += 1,
        }
    }

    /// Reverses one [`observe`](ColumnStats::observe). May leave the max
    /// stale (flagged via `max_dirty`); callers must run a
    /// [`refresh_max`](ColumnStats::refresh_max) before the next read.
    #[inline]
    fn unobserve(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                let slot = self
                    .freq
                    .get_mut(i)
                    .expect("unobserve of an integer value that was never observed");
                *slot -= 1;
                if *slot + 1 == self.max_freq {
                    self.max_dirty = true;
                }
                if *slot == 0 {
                    self.freq.remove(i);
                }
            }
            Value::Float(_) => {
                assert!(self.floats > 0, "unobserve of a float on an all-int column");
                self.floats -= 1;
            }
        }
    }

    /// Recomputes the max multiplicity if deletions may have lowered it.
    /// One pass over *distinct* values, and only when actually dirty.
    fn refresh_max(&mut self) {
        if self.max_dirty {
            self.max_freq = self.freq.values().copied().max().unwrap_or(0);
            self.max_dirty = false;
        }
    }
}

/// Exact statistics for a table: row count plus per-column [`ColumnStats`].
///
/// Kept in sync by the owning [`crate::engine::Table`]: appends stream
/// through [`observe_row`](TableStats::observe_row), deletions through
/// [`forget_row`](TableStats::forget_row) followed by one
/// [`refresh_maxima`](TableStats::refresh_maxima) per batch. The result is
/// always equal to a [`from_rows`](TableStats::from_rows) rebuild over the
/// table's current rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStats {
    rows: usize,
    cols: Vec<ColumnStats>,
}

impl TableStats {
    /// Empty statistics for a table with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        TableStats {
            rows: 0,
            cols: (0..ncols).map(|_| ColumnStats::default()).collect(),
        }
    }

    /// Statistics computed in one pass over existing rows.
    pub fn from_rows(ncols: usize, rows: &[Vec<Value>]) -> Self {
        let mut s = TableStats::new(ncols);
        for row in rows {
            s.observe_row(row);
        }
        s
    }

    /// Exact row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Per-column statistics, in column order.
    pub fn columns(&self) -> &[ColumnStats] {
        &self.cols
    }

    /// Statistics for column `i`.
    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.cols[i]
    }

    /// Folds one appended row into the statistics.
    #[inline]
    pub fn observe_row(&mut self, row: &[Value]) {
        self.rows += 1;
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.observe(v);
        }
    }

    /// Removes one previously observed row from the statistics — the exact
    /// inverse of [`observe_row`](TableStats::observe_row).
    ///
    /// Per-column maxima may be left stale; call
    /// [`refresh_maxima`](TableStats::refresh_maxima) once after a batch of
    /// deletions (reads in between are guarded by a debug assertion).
    #[inline]
    pub fn forget_row(&mut self, row: &[Value]) {
        debug_assert!(self.rows > 0, "forget_row on empty statistics");
        self.rows -= 1;
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.unobserve(v);
        }
    }

    /// Recomputes any per-column maxima that deletions may have lowered.
    /// No-op for columns untouched since the last refresh.
    pub fn refresh_maxima(&mut self) {
        for c in &mut self.cols {
            c.refresh_max();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_distinct_and_max_freq() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(7)],
            vec![Value::Int(1), Value::Int(8)],
            vec![Value::Int(2), Value::Int(9)],
        ];
        let s = TableStats::from_rows(2, &rows);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.column(0).distinct(), Some(2));
        assert_eq!(s.column(0).max_freq(), Some(2));
        assert_eq!(s.column(1).distinct(), Some(3));
        assert_eq!(s.column(1).max_freq(), Some(1));
    }

    #[test]
    fn float_disables_tracking() {
        let mut s = TableStats::new(1);
        s.observe_row(&[Value::Int(3)]);
        assert!(s.column(0).is_tracked());
        s.observe_row(&[Value::Float(0.5)]);
        assert!(!s.column(0).is_tracked());
        assert_eq!(s.column(0).distinct(), None);
        assert_eq!(s.column(0).max_freq(), None);
        // Row count keeps working regardless.
        assert_eq!(s.rows(), 2);
    }

    #[test]
    fn empty_table() {
        let s = TableStats::new(3);
        assert_eq!(s.rows(), 0);
        for c in s.columns() {
            assert_eq!(c.distinct(), Some(0));
            assert_eq!(c.max_freq(), Some(0));
        }
    }
}

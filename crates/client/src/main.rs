//! The `lsbp-client` binary.
//!
//! ```text
//! lsbp-client ping     [--addr HOST:PORT] [--connect-timeout-ms N]
//! lsbp-client health   [--addr HOST:PORT] [--connect-timeout-ms N]
//! lsbp-client stats    [--addr HOST:PORT] [--connect-timeout-ms N]
//! lsbp-client shutdown [--addr HOST:PORT] [--connect-timeout-ms N]
//! lsbp-client selftest [--addr HOST:PORT] [--connect-timeout-ms N]
//!                      [--shutdown] [--chaos-seed N]
//! ```
//!
//! `selftest` drives a live server through the full protocol — register,
//! LinBP/LinBP\*/RWR solves (sequential and concurrent), cache hits, an
//! edge delta plus patched re-query — and **bitwise**-compares every
//! belief vector against the same solves run in-process through the
//! `lsbp` library (valid across processes by the workspace's
//! bitwise-determinism invariant: results do not depend on thread or
//! shard counts). Exits nonzero on any mismatch.
//!
//! `--chaos-seed N` additionally runs a seeded saboteur thread for the
//! duration of the selftest: it hammers the same server with garbage
//! bytes, byte-dribbled oversized frame headers, truncated frames,
//! bit-corrupted requests, instant disconnects, and mid-frame stalls.
//! The selftest still has to pass bitwise — and a final health check
//! proves the server outlived the abuse.

use lsbp::prelude::*;
use lsbp_client::{Client, ClientConfig};
use lsbp_graph::Graph;
use lsbp_linalg::Mat;
use lsbp_net::{
    LinBpParams, Request, RequestEnvelope, RwrParams, ServedVia, WireEdge, WireNorm, WireSeed,
};
use lsbp_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lsbp-client <ping|health|stats|shutdown|selftest> [--addr HOST:PORT] \
         [--connect-timeout-ms N] [--shutdown] [--chaos-seed N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut addr = String::from("127.0.0.1:7461");
    let mut shutdown_after = false;
    let mut chaos_seed: Option<u64> = None;
    let mut config = ClientConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--connect-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.connect_timeout = Some(Duration::from_millis(ms)),
                None => usage(),
            },
            "--chaos-seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => chaos_seed = Some(seed),
                None => usage(),
            },
            "--shutdown" => shutdown_after = true,
            _ => usage(),
        }
    }

    let run = || -> Result<(), String> {
        match command.as_str() {
            "ping" => {
                let mut client = connect(&addr, &config)?;
                let version = client.ping().map_err(|e| e.to_string())?;
                println!("pong (protocol version {version})");
                Ok(())
            }
            "health" => {
                let mut client = connect(&addr, &config)?;
                let health = client.health().map_err(|e| e.to_string())?;
                println!("{health:#?}");
                Ok(())
            }
            "stats" => {
                let mut client = connect(&addr, &config)?;
                let stats = client.stats().map_err(|e| e.to_string())?;
                println!("{stats:#?}");
                Ok(())
            }
            "shutdown" => {
                let mut client = connect(&addr, &config)?;
                client.shutdown().map_err(|e| e.to_string())?;
                println!("server shutting down");
                Ok(())
            }
            "selftest" => selftest(&addr, &config, shutdown_after, chaos_seed),
            _ => usage(),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn connect(addr: &str, config: &ClientConfig) -> Result<Client, String> {
    Client::connect_with(addr, config).map_err(|e| format!("connect {addr}: {e}"))
}

// ---------------------------------------------------------------------------
// saboteur (selftest --chaos-seed)
// ---------------------------------------------------------------------------

/// Hostile traffic generator: every round opens a fresh connection and
/// misbehaves in one of six seeded ways. All I/O errors are swallowed —
/// the saboteur's job is to provoke, the selftest's job is to prove the
/// server did not care.
fn sabotage(addr: &str, seed: u64, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rounds {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            continue;
        };
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .ok();
        match rng.gen_range(0u8..6) {
            // Raw garbage: bytes that are not even a plausible frame.
            0 => {
                let n = rng.gen_range(1usize..64);
                let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0u16..256) as u8).collect();
                let _ = stream.write_all(&junk);
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut sink = [0u8; 256];
                let _ = stream.read(&mut sink);
            }
            // Oversized frame header, dribbled one byte at a time — the
            // server must reject at the 4th byte, not buffer toward the
            // claimed gigabytes.
            1 => {
                let claimed = (rng.gen_range(257u64..4096) * 1024 * 1024) as u32;
                for byte in claimed.to_le_bytes() {
                    if stream.write_all(&[byte]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                let mut sink = [0u8; 256];
                let _ = stream.read(&mut sink);
            }
            // Truncated frame: honest header, partial body, gone.
            2 => {
                let payload =
                    RequestEnvelope::new(rng.gen_range(0u64..u64::MAX), Request::Ping).encode();
                let keep = rng.gen_range(1usize..payload.len());
                let _ = stream.write_all(&(payload.len() as u32).to_le_bytes());
                let _ = stream.write_all(&payload[..keep]);
            }
            // Bit-corrupted request: valid framing, garbled content.
            3 => {
                let mut payload =
                    RequestEnvelope::new(rng.gen_range(0u64..u64::MAX), Request::Ping).encode();
                let flips = rng.gen_range(1usize..4);
                for _ in 0..flips {
                    let at = rng.gen_range(0..payload.len());
                    payload[at] ^= 1 << rng.gen_range(0u32..8);
                }
                let _ = stream.write_all(&(payload.len() as u32).to_le_bytes());
                let _ = stream.write_all(&payload);
                let mut sink = [0u8; 256];
                let _ = stream.read(&mut sink);
            }
            // Connect-and-vanish.
            4 => {}
            // Mid-frame stall, then vanish.
            _ => {
                let payload =
                    RequestEnvelope::new(rng.gen_range(0u64..u64::MAX), Request::Ping).encode();
                let _ = stream.write_all(&(payload.len() as u32).to_le_bytes());
                let _ = stream.write_all(&payload[..payload.len() / 2]);
                std::thread::sleep(Duration::from_millis(rng.gen_range(1u64..20)));
            }
        }
        drop(stream);
    }
}

// ---------------------------------------------------------------------------
// selftest
// ---------------------------------------------------------------------------

const K: usize = 3;
const EPS: f64 = 0.06;

/// 12-node ring with chords — small but multi-cycle, so echo
/// cancellation and convergence behavior are all exercised.
fn fixture_edges() -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(usize, usize, f64)> = (0..12).map(|i| (i, (i + 1) % 12, 1.0)).collect();
    edges.extend_from_slice(&[(0, 6, 0.5), (2, 9, 1.5), (4, 10, 0.75), (1, 7, 1.25)]);
    edges
}

fn fixture_adjacency() -> CsrMatrix {
    let mut g = Graph::new(12);
    for (s, t, w) in fixture_edges() {
        g.add_edge(s, t, w);
    }
    g.adjacency()
}

fn coupling() -> Mat {
    CouplingMatrix::fig1c()
        .expect("fig1c coupling is valid")
        .scaled_residual(EPS)
}

fn wire_params(echo: bool, h: &Mat) -> LinBpParams {
    LinBpParams {
        echo,
        k: K as u32,
        h_residual: h.as_slice().to_vec(),
        max_iter: 200,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
    }
}

fn lib_opts() -> LinBpOptions {
    LinBpOptions {
        max_iter: 200,
        tol: 1e-12,
        norm: ToleranceNorm::MaxAbs,
        damping: 0.0,
        divergence_guard: 1e12,
        parallelism: ParallelismConfig::from_env(),
    }
}

/// One seeded node per class, offset by `shift` around the ring, so
/// every thread in the concurrent phase asks a distinct query.
fn seed_rows(shift: usize) -> Vec<(usize, [f64; K])> {
    vec![
        ((shift) % 12, [2.0, -1.0, -1.0]),
        ((4 + shift) % 12, [-1.0, 2.0, -1.0]),
        ((8 + shift) % 12, [-1.0, -1.0, 2.0]),
    ]
}

fn wire_seeds(shift: usize) -> Vec<WireSeed> {
    seed_rows(shift)
        .into_iter()
        .map(|(node, row)| WireSeed {
            node: node as u64,
            residual: row.to_vec(),
        })
        .collect()
}

fn lib_seeds(shift: usize) -> ExplicitBeliefs {
    let mut e = ExplicitBeliefs::new(12, K);
    for (node, row) in seed_rows(shift) {
        e.set_residual(node, &row).expect("seed rows are centered");
    }
    e
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{label}: length mismatch ({} vs {})",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            return Err(format!(
                "{label}: beliefs differ at flat index {i}: {g:e} vs {w:e} \
                 (bits {:#018x} vs {:#018x})",
                g.to_bits(),
                w.to_bits()
            ));
        }
    }
    Ok(())
}

fn selftest(
    addr: &str,
    config: &ClientConfig,
    shutdown_after: bool,
    chaos_seed: Option<u64>,
) -> Result<(), String> {
    // Start the saboteur before the first real query so hostile traffic
    // overlaps every phase below.
    let saboteur = chaos_seed.map(|seed| {
        println!("[selftest] chaos: saboteur running with seed {seed}");
        let addr = addr.to_string();
        std::thread::spawn(move || sabotage(&addr, seed, 48))
    });

    let mut client = connect(addr, config)?;
    let version = client.ping().map_err(|e| format!("ping: {e}"))?;
    println!("[selftest] connected, protocol version {version}");

    // Distinct id per run so selftest can repeat against one server.
    let graph_id = u64::from(std::process::id()) << 16 | 0x5e1f;
    let edges: Vec<WireEdge> = fixture_edges()
        .into_iter()
        .map(|(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect();
    let (gversion, nnz) = client
        .register_graph(graph_id, 12, true, edges)
        .map_err(|e| format!("register: {e}"))?;
    let adj = fixture_adjacency();
    if nnz != adj.nnz() as u64 {
        return Err(format!("register: nnz {nnz} != local {}", adj.nnz()));
    }
    println!("[selftest] registered graph {graph_id} v{gversion} ({nnz} nnz)");

    let h = coupling();
    let opts = lib_opts();

    // Sequential solves: LinBP (echo), LinBP* (no echo), RWR — each
    // bitwise against the library.
    let payload_linbp = client
        .solve_linbp(graph_id, wire_params(true, &h), wire_seeds(0))
        .map_err(|e| format!("linbp solve: {e}"))?;
    let reference = linbp(&adj, &lib_seeds(0), &h, &opts).map_err(|e| e.to_string())?;
    if !payload_linbp.converged || !reference.converged {
        return Err("linbp: expected convergence on the fixture".into());
    }
    assert_bitwise(
        "linbp",
        &payload_linbp.beliefs,
        reference.beliefs.residual().as_slice(),
    )?;
    println!(
        "[selftest] linbp: bitwise match ({:?})",
        payload_linbp.served
    );

    let payload_star = client
        .solve_linbp(graph_id, wire_params(false, &h), wire_seeds(1))
        .map_err(|e| format!("linbp* solve: {e}"))?;
    let reference_star = linbp_star(&adj, &lib_seeds(1), &h, &opts).map_err(|e| e.to_string())?;
    assert_bitwise(
        "linbp*",
        &payload_star.beliefs,
        reference_star.beliefs.residual().as_slice(),
    )?;
    println!("[selftest] linbp*: bitwise match");

    let rwr_params = RwrParams {
        k: K as u32,
        restart: 0.15,
        max_iter: 200,
        tol: 1e-12,
        norm: WireNorm::MaxAbs,
    };
    let payload_rwr = client
        .solve_rwr(graph_id, rwr_params, wire_seeds(2))
        .map_err(|e| format!("rwr solve: {e}"))?;
    let rwr_opts = RwrOptions {
        restart: 0.15,
        max_iter: 200,
        tol: 1e-12,
        norm: ToleranceNorm::MaxAbs,
        parallelism: ParallelismConfig::from_env(),
    };
    let reference_rwr = rwr(&adj, &lib_seeds(2), &rwr_opts).map_err(|e| e.to_string())?;
    assert_bitwise(
        "rwr",
        &payload_rwr.beliefs,
        reference_rwr.beliefs.residual().as_slice(),
    )?;
    println!("[selftest] rwr: bitwise match");

    // Cache: repeating a query must serve from cache, bitwise identical.
    let cached = client
        .solve_linbp(graph_id, wire_params(true, &h), wire_seeds(0))
        .map_err(|e| format!("cached solve: {e}"))?;
    if cached.served != ServedVia::Cache {
        return Err(format!("expected cache hit, served {:?}", cached.served));
    }
    assert_bitwise("cache", &cached.beliefs, &payload_linbp.beliefs)?;
    println!("[selftest] repeat query served from cache");

    // Concurrent phase: distinct queries from parallel connections, every
    // answer bitwise equal to the library regardless of how the server
    // chose to coalesce them.
    let threads = 6;
    let barrier = std::sync::Barrier::new(threads);
    let concurrent: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (barrier, h, addr) = (&barrier, &h, addr);
                scope.spawn(move || -> Result<(), String> {
                    let shift = 2 + t; // distinct from the cached queries
                    let mut c = connect(addr, &ClientConfig::default())?;
                    barrier.wait();
                    let payload = c
                        .solve_linbp(graph_id, wire_params(true, h), wire_seeds(shift))
                        .map_err(|e| format!("thread {t}: {e}"))?;
                    let adj = fixture_adjacency();
                    let reference = linbp(&adj, &lib_seeds(shift), h, &lib_opts())
                        .map_err(|e| format!("thread {t}: {e}"))?;
                    assert_bitwise(
                        &format!("concurrent[{t}]"),
                        &payload.beliefs,
                        reference.beliefs.residual().as_slice(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in concurrent {
        r?;
    }
    let stats = client.stats().map_err(|e| e.to_string())?;
    println!(
        "[selftest] {} concurrent queries bitwise-clean (server so far: {} served, \
         {} coalesced in {} batches, largest batch {})",
        threads,
        stats.queries_served,
        stats.coalesced_queries,
        stats.coalesced_batches,
        stats.largest_batch
    );

    // Edge delta: server patches its cache; the patched re-query must be
    // bitwise equal to the library patch path on the same inputs.
    let raw_deltas = [(0usize, 1usize, 0.25), (0, 3, 0.5)];
    let wire_deltas: Vec<WireEdge> = raw_deltas
        .iter()
        .map(|&(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect();
    let (new_version, patched, invalidated) = client
        .edge_delta(graph_id, true, wire_deltas)
        .map_err(|e| format!("edge delta: {e}"))?;
    println!(
        "[selftest] delta applied: graph now v{new_version}, {patched} cache entries patched, \
         {invalidated} invalidated"
    );
    if patched == 0 {
        return Err("edge delta: expected at least one patched cache entry".into());
    }
    if invalidated == 0 {
        return Err("edge delta: expected the cached RWR entry to be invalidated".into());
    }

    let requeried = client
        .solve_linbp(graph_id, wire_params(true, &h), wire_seeds(0))
        .map_err(|e| format!("patched re-query: {e}"))?;
    if requeried.served != ServedVia::CachePatched {
        return Err(format!(
            "expected patched cache hit, served {:?}",
            requeried.served
        ));
    }
    // Library patch path: both delta directions, seeded from the beliefs
    // the server had cached (= payload_linbp), solved on the new graph.
    let mut both_dirs: Vec<(usize, usize, f64)> = Vec::new();
    for &(s, t, w) in &raw_deltas {
        both_dirs.push((s, t, w));
        both_dirs.push((t, s, w));
    }
    let new_adj = adj
        .try_with_edge_deltas(&both_dirs)
        .map_err(|e| e.to_string())?;
    let previous = BeliefMatrix::from_mat(Mat::from_vec(12, K, payload_linbp.beliefs.clone()));
    let seed =
        linbp_edge_delta_seed(&adj, &both_dirs, &previous, &h, true).map_err(|e| e.to_string())?;
    let patched_reference =
        linbp_update(&new_adj, &previous, &seed, &h, &opts, true).map_err(|e| e.to_string())?;
    assert_bitwise(
        "patched",
        &requeried.beliefs,
        patched_reference.beliefs.residual().as_slice(),
    )?;
    println!("[selftest] patched cache entry bitwise-matches the library patch path");

    // Frontier phase: the fixture embedded in a wider graph whose extra
    // nodes are isolated. Their rows freeze bitwise after the first
    // sweep, so the active-frontier execution (on by default) must skip
    // them on every later sweep — and the repeated solves below must
    // leave nonzero skip counters in `Health`, while every answer stays
    // bitwise equal to the library on the same wide graph.
    let frontier_id = u64::from(std::process::id()) << 16 | 0xf407;
    let frontier_nodes = 24usize;
    let frontier_edges: Vec<WireEdge> = fixture_edges()
        .into_iter()
        .map(|(s, t, w)| WireEdge {
            src: s as u64,
            dst: t as u64,
            weight: w,
        })
        .collect();
    client
        .register_graph(frontier_id, frontier_nodes as u64, true, frontier_edges)
        .map_err(|e| format!("frontier register: {e}"))?;
    let wide_adj = {
        let mut g = Graph::new(frontier_nodes);
        for (s, t, w) in fixture_edges() {
            g.add_edge(s, t, w);
        }
        g.adjacency()
    };
    for shift in [5usize, 6, 7] {
        let payload = client
            .solve_linbp(frontier_id, wire_params(true, &h), wire_seeds(shift))
            .map_err(|e| format!("frontier solve (shift {shift}): {e}"))?;
        let mut wide_seeds = ExplicitBeliefs::new(frontier_nodes, K);
        for (node, row) in seed_rows(shift) {
            wide_seeds
                .set_residual(node, &row)
                .expect("seed rows are centered");
        }
        let reference = linbp(&wide_adj, &wide_seeds, &h, &opts).map_err(|e| e.to_string())?;
        assert_bitwise(
            &format!("frontier[{shift}]"),
            &payload.beliefs,
            reference.beliefs.residual().as_slice(),
        )?;
    }
    let health = client
        .health()
        .map_err(|e| format!("post-frontier health: {e}"))?;
    if health.frontier_rows_skipped == 0 {
        return Err(
            "frontier: repeated solves on a graph with isolated nodes left zero \
             skipped rows — is the server running with LSBP_FRONTIER=off?"
                .into(),
        );
    }
    println!(
        "[selftest] frontier: bitwise match ({} rows active, {} skipped)",
        health.frontier_rows_active, health.frontier_rows_skipped
    );

    // Out-of-core phase: when the server runs with `--spill-dir`, every
    // registered graph is served from an on-disk shard store through the
    // budgeted buffer pool. Register a fresh copy of the fixture under a
    // distinct id, solve it over the wire, and check both the bitwise
    // answer and that the pager actually did the serving.
    let health = client.health().map_err(|e| format!("health: {e}"))?;
    if health.spill_enabled {
        let paged_id = u64::from(std::process::id()) << 16 | 0x9a6e;
        let paged_edges: Vec<WireEdge> = fixture_edges()
            .into_iter()
            .map(|(s, t, w)| WireEdge {
                src: s as u64,
                dst: t as u64,
                weight: w,
            })
            .collect();
        client
            .register_graph(paged_id, 12, true, paged_edges)
            .map_err(|e| format!("paged register: {e}"))?;
        let payload_paged = client
            .solve_linbp(paged_id, wire_params(true, &h), wire_seeds(3))
            .map_err(|e| format!("paged solve: {e}"))?;
        let reference_paged = linbp(&adj, &lib_seeds(3), &h, &opts).map_err(|e| e.to_string())?;
        assert_bitwise(
            "paged",
            &payload_paged.beliefs,
            reference_paged.beliefs.residual().as_slice(),
        )?;
        let health = client
            .health()
            .map_err(|e| format!("post-paged health: {e}"))?;
        if health.pager_misses == 0 {
            return Err(
                "paged: spill is enabled but the pager reports zero misses — \
                 the solve cannot have streamed from disk"
                    .into(),
            );
        }
        println!(
            "[selftest] out-of-core: bitwise match (pager: {} hits, {} misses, \
             {} evictions, {} prefetches)",
            health.pager_hits, health.pager_misses, health.pager_evictions, health.pager_prefetches
        );
    } else {
        println!("[selftest] out-of-core: skipped (server has no --spill-dir)");
    }

    if let Some(handle) = saboteur {
        handle.join().map_err(|_| "saboteur thread panicked")?;
        // The abuse is over; the server must still answer like nothing
        // happened.
        let health = client
            .health()
            .map_err(|e| format!("post-chaos health: {e}"))?;
        println!(
            "[selftest] chaos: server survived (queue depth {}, {} graphs, {} cached entries, \
             up {} ms)",
            health.queue_depth, health.graphs, health.cached_entries, health.uptime_ms
        );
    }

    if shutdown_after {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("[selftest] server shutdown requested");
    }
    println!("[selftest] PASS");
    Ok(())
}

#![warn(missing_docs)]

//! # lsbp-client — typed client for the propagation service
//!
//! A thin blocking client over the [`lsbp_net`] wire protocol: one
//! request in flight per connection (open more connections for
//! concurrency — that is what the server's admission layer coalesces
//! across). [`Client`] offers typed helpers per request; the raw
//! [`Client::request`] escape hatch sends any [`Request`].
//!
//! Every request travels in a [`RequestEnvelope`] carrying a
//! client-chosen correlation id (verified against the echoed id — a
//! mismatch is a protocol error, never silently accepted) and an
//! optional per-request deadline the server enforces.
//!
//! [`RetryingClient`] layers a [`RetryPolicy`] on top: exponential
//! backoff with deterministic seeded jitter, honoring the server's
//! `retry_after_ms` hint, reconnecting on dropped connections — and it
//! only exposes idempotent operations, so a retry after an ambiguous
//! failure (request sent, connection died before the reply) can never
//! double-apply a mutation.

use lsbp_net::{
    read_frame, write_frame, BeliefsPayload, ErrorCode, HealthInfo, LinBpParams, Request,
    RequestEnvelope, Response, ResponseEnvelope, RwrParams, ServerStats, WireEdge, WireError,
    WireSeed,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, protocol, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Wire(WireError),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Server's backoff hint for transient errors (`Overloaded`,
        /// `DeadlineExceeded`): wait at least this long before retrying.
        retry_after_ms: Option<u64>,
    },
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
    /// The response envelope echoed a different correlation id than the
    /// one sent — a stale reply from a previous request on this stream.
    CorrelationMismatch {
        /// Id this client attached to the request.
        sent: u64,
        /// Id the server echoed back.
        got: u64,
    },
    /// The connection closed before a response arrived.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(wanted) => {
                write!(f, "unexpected response variant (wanted {wanted})")
            }
            ClientError::CorrelationMismatch { sent, got } => {
                write!(
                    f,
                    "response correlation id {got} does not match request id {sent}"
                )
            }
            ClientError::Disconnected => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Socket timeout knobs for [`Client::connect_with`]. `None` everywhere
/// (the default) means fully blocking, matching [`Client::connect`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Budget for establishing the TCP connection (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Budget for each blocking read while awaiting a response.
    pub read_timeout: Option<Duration>,
    /// Budget for each blocking write while sending a request.
    pub write_timeout: Option<Duration>,
}

/// A blocking connection to an `lsbp-server`.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    deadline_ms: Option<u64>,
}

impl Client {
    /// Connects with no socket timeouts (with `TCP_NODELAY`, so small
    /// request frames do not sit in Nagle buffers while the server's
    /// coalesce window runs).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit timeout knobs. A `connect_timeout` is
    /// applied to each resolved candidate address in turn; the first
    /// success wins.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> io::Result<Self> {
        let mut last_err = None;
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            let attempt = match config.connect_timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                }))
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Self {
            stream,
            next_id: 1,
            deadline_ms: None,
        })
    }

    /// Sets a sticky per-request deadline (milliseconds of server-side
    /// budget) attached to every subsequent request; `None` clears it.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Sends one request and blocks for its response, verifying the
    /// echoed correlation id.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let envelope = RequestEnvelope {
            request_id: id,
            deadline_ms: self.deadline_ms,
            request: request.clone(),
        };
        write_frame(&mut self.stream, &envelope.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => {
                let envelope = ResponseEnvelope::decode(&payload)?;
                if envelope.request_id != id {
                    return Err(ClientError::CorrelationMismatch {
                        sent: id,
                        got: envelope.request_id,
                    });
                }
                Ok(envelope.response)
            }
            None => Err(ClientError::Disconnected),
        }
    }

    /// Pings; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong { protocol_version } => Ok(protocol_version),
            _ => Err(ClientError::Unexpected("Pong")),
        }
    }

    /// Fetches the liveness snapshot (queue depth, cache size, uptime).
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        match self.checked(&Request::Health)? {
            Response::Health(info) => Ok(info),
            _ => Err(ClientError::Unexpected("Health")),
        }
    }

    /// Registers a graph; returns `(version, nnz)`.
    pub fn register_graph(
        &mut self,
        graph_id: u64,
        n_nodes: u64,
        symmetric: bool,
        edges: Vec<WireEdge>,
    ) -> Result<(u64, u64), ClientError> {
        let req = Request::RegisterGraph {
            graph_id,
            n_nodes,
            symmetric,
            edges,
        };
        match self.checked(&req)? {
            Response::Registered { version, nnz, .. } => Ok((version, nnz)),
            _ => Err(ClientError::Unexpected("Registered")),
        }
    }

    /// Runs a LinBP (or LinBP\*) solve.
    pub fn solve_linbp(
        &mut self,
        graph_id: u64,
        params: LinBpParams,
        seeds: Vec<WireSeed>,
    ) -> Result<BeliefsPayload, ClientError> {
        let req = Request::SolveLinBp {
            graph_id,
            params,
            seeds,
        };
        match self.checked(&req)? {
            Response::Beliefs(payload) => Ok(payload),
            _ => Err(ClientError::Unexpected("Beliefs")),
        }
    }

    /// Runs an RWR solve.
    pub fn solve_rwr(
        &mut self,
        graph_id: u64,
        params: RwrParams,
        seeds: Vec<WireSeed>,
    ) -> Result<BeliefsPayload, ClientError> {
        let req = Request::SolveRwr {
            graph_id,
            params,
            seeds,
        };
        match self.checked(&req)? {
            Response::Beliefs(payload) => Ok(payload),
            _ => Err(ClientError::Unexpected("Beliefs")),
        }
    }

    /// Applies additive edge deltas; returns `(new_version, patched,
    /// invalidated)` cache-entry counts.
    pub fn edge_delta(
        &mut self,
        graph_id: u64,
        symmetric: bool,
        deltas: Vec<WireEdge>,
    ) -> Result<(u64, u64, u64), ClientError> {
        let req = Request::EdgeDelta {
            graph_id,
            symmetric,
            deltas,
        };
        match self.checked(&req)? {
            Response::DeltaApplied {
                version,
                patched,
                invalidated,
                ..
            } => Ok((version, patched, invalidated)),
            _ => Err(ClientError::Unexpected("DeltaApplied")),
        }
    }

    /// Fetches serving counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("ShuttingDown")),
        }
    }

    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => Err(ClientError::Server {
                code,
                message,
                retry_after_ms,
            }),
            other => Ok(other),
        }
    }
}

/// Exponential-backoff retry schedule with deterministic seeded jitter.
///
/// Attempt `i` (zero-based) sleeps `min(max_delay, base_delay · 2^i)`
/// scaled by a jitter factor in `[0.5, 1.0)` drawn from a seeded RNG —
/// deterministic for reproducible tests, decorrelated across clients
/// with different seeds so a thundering herd spreads out. When the
/// server supplies a `retry_after_ms` hint the sleep is floored at the
/// hint: the server knows its own queue better than the schedule does.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff for the first retry; doubles each further attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Jitter RNG seed; same seed ⇒ same sleep sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// `true` when the error is transient: retrying the same idempotent
    /// request may succeed. Typed server rejections other than
    /// `Overloaded`/`DeadlineExceeded` (bad request, unknown graph,
    /// internal) are permanent — retrying them only re-fails.
    pub fn is_retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
            }
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
            ),
            // A garbled reply frame usually means the stream died
            // mid-response; a fresh connection gets a fresh answer.
            ClientError::Wire(_) => true,
            ClientError::Disconnected => true,
            ClientError::Unexpected(_) | ClientError::CorrelationMismatch { .. } => false,
        }
    }

    fn backoff(&self, attempt: u32, rng: &mut StdRng, hint_ms: Option<u64>) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let jittered = exp.mul_f64(rng.gen_range(0.5..1.0));
        match hint_ms {
            Some(ms) => jittered.max(Duration::from_millis(ms)),
            None => jittered,
        }
    }
}

/// A self-healing client wrapper: reconnects on connection loss and
/// retries transient failures per its [`RetryPolicy`].
///
/// Only **idempotent** operations are exposed (`ping`, `health`,
/// `stats`, `solve_linbp`, `solve_rwr`) — solves are pure functions of
/// registered state, so replaying one after an ambiguous failure is
/// safe and, by the serving invariant, bitwise identical. Mutations
/// (`register_graph`, `edge_delta`, `shutdown`) must go through a plain
/// [`Client`] where the caller decides how to disambiguate.
pub struct RetryingClient {
    addr: String,
    config: ClientConfig,
    policy: RetryPolicy,
    rng: StdRng,
    sticky_deadline: Option<u64>,
    conn: Option<Client>,
}

impl RetryingClient {
    /// Creates the wrapper; no connection is opened until the first call.
    pub fn new(addr: impl Into<String>, config: ClientConfig, policy: RetryPolicy) -> Self {
        let rng = StdRng::seed_from_u64(policy.seed);
        Self {
            addr: addr.into(),
            config,
            policy,
            rng,
            sticky_deadline: None,
            conn: None,
        }
    }

    /// Sticky per-request deadline applied to every subsequent request
    /// (survives reconnects); `None` clears it.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        if let Some(conn) = self.conn.as_mut() {
            conn.set_deadline_ms(deadline_ms);
        }
        self.sticky_deadline = deadline_ms;
    }

    /// Pings with retry; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        self.with_retry(|c| c.ping())
    }

    /// Health snapshot with retry.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        self.with_retry(|c| c.health())
    }

    /// Serving counters with retry.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.with_retry(|c| c.stats())
    }

    /// LinBP / LinBP\* solve with retry.
    pub fn solve_linbp(
        &mut self,
        graph_id: u64,
        params: LinBpParams,
        seeds: &[WireSeed],
    ) -> Result<BeliefsPayload, ClientError> {
        self.with_retry(|c| c.solve_linbp(graph_id, params.clone(), seeds.to_vec()))
    }

    /// RWR solve with retry.
    pub fn solve_rwr(
        &mut self,
        graph_id: u64,
        params: RwrParams,
        seeds: &[WireSeed],
    ) -> Result<BeliefsPayload, ClientError> {
        self.with_retry(|c| c.solve_rwr(graph_id, params, seeds.to_vec()))
    }

    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            let result = match self.connected() {
                Ok(conn) => op(conn),
                Err(e) => Err(e),
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            // Connection-level failures poison the stream (a late reply
            // would desynchronise correlation ids) — reconnect next try.
            if !matches!(error, ClientError::Server { .. }) {
                self.conn = None;
            }
            if !RetryPolicy::is_retryable(&error) || attempt + 1 == attempts {
                return Err(error);
            }
            let hint = match &error {
                ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
                _ => None,
            };
            std::thread::sleep(self.policy.backoff(attempt, &mut self.rng, hint));
            last = Some(error);
        }
        Err(last.unwrap_or(ClientError::Disconnected))
    }

    fn connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut client = Client::connect_with(self.addr.as_str(), &self.config)?;
            client.set_deadline_ms(self.sticky_deadline);
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }
}

#![warn(missing_docs)]

//! # lsbp-client — typed client for the propagation service
//!
//! A thin blocking client over the [`lsbp_net`] wire protocol: one
//! request in flight per connection (open more connections for
//! concurrency — that is what the server's admission layer coalesces
//! across). [`Client`] offers typed helpers per request; the raw
//! [`Client::request`] escape hatch sends any [`Request`].

use lsbp_net::{
    read_frame, write_frame, BeliefsPayload, ErrorCode, LinBpParams, Request, Response, RwrParams,
    ServerStats, WireEdge, WireError, WireSeed,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Wire(WireError),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
    /// The connection closed before a response arrived.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(wanted) => {
                write!(f, "unexpected response variant (wanted {wanted})")
            }
            ClientError::Disconnected => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to an `lsbp-server`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so small request frames do not sit
    /// in Nagle buffers while the server's coalesce window runs).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Pings; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong { protocol_version } => Ok(protocol_version),
            _ => Err(ClientError::Unexpected("Pong")),
        }
    }

    /// Registers a graph; returns `(version, nnz)`.
    pub fn register_graph(
        &mut self,
        graph_id: u64,
        n_nodes: u64,
        symmetric: bool,
        edges: Vec<WireEdge>,
    ) -> Result<(u64, u64), ClientError> {
        let req = Request::RegisterGraph {
            graph_id,
            n_nodes,
            symmetric,
            edges,
        };
        match self.checked(&req)? {
            Response::Registered { version, nnz, .. } => Ok((version, nnz)),
            _ => Err(ClientError::Unexpected("Registered")),
        }
    }

    /// Runs a LinBP (or LinBP\*) solve.
    pub fn solve_linbp(
        &mut self,
        graph_id: u64,
        params: LinBpParams,
        seeds: Vec<WireSeed>,
    ) -> Result<BeliefsPayload, ClientError> {
        let req = Request::SolveLinBp {
            graph_id,
            params,
            seeds,
        };
        match self.checked(&req)? {
            Response::Beliefs(payload) => Ok(payload),
            _ => Err(ClientError::Unexpected("Beliefs")),
        }
    }

    /// Runs an RWR solve.
    pub fn solve_rwr(
        &mut self,
        graph_id: u64,
        params: RwrParams,
        seeds: Vec<WireSeed>,
    ) -> Result<BeliefsPayload, ClientError> {
        let req = Request::SolveRwr {
            graph_id,
            params,
            seeds,
        };
        match self.checked(&req)? {
            Response::Beliefs(payload) => Ok(payload),
            _ => Err(ClientError::Unexpected("Beliefs")),
        }
    }

    /// Applies additive edge deltas; returns `(new_version, patched,
    /// invalidated)` cache-entry counts.
    pub fn edge_delta(
        &mut self,
        graph_id: u64,
        symmetric: bool,
        deltas: Vec<WireEdge>,
    ) -> Result<(u64, u64, u64), ClientError> {
        let req = Request::EdgeDelta {
            graph_id,
            symmetric,
            deltas,
        };
        match self.checked(&req)? {
            Response::DeltaApplied {
                version,
                patched,
                invalidated,
                ..
            } => Ok((version, patched, invalidated)),
            _ => Err(ClientError::Unexpected("DeltaApplied")),
        }
    }

    /// Fetches serving counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("ShuttingDown")),
        }
    }

    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }
}

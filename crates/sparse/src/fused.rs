//! The fused LinBP update step — one cache-resident pass per iteration.
//!
//! The unfused LinBP iteration (Eq. 6) makes five full sweeps over `n × k`
//! matrices per round: the SpMM `A·B̂`, the dense `·Ĥ` product, the `+Ê`
//! add, the echo-cancellation `−D·B̂·Ĥ²` (itself a scale + matmul +
//! subtract), and finally the convergence-norm pass over old vs. new
//! beliefs. Each sweep re-streams matrices that were in cache moments
//! before.
//!
//! [`CsrMatrix::linbp_step_fused_with`] collapses all of that into one
//! row-partitioned pass: per output row, the SpMM gather, the `·Ĥ` apply,
//! the explicit-belief add, the echo subtraction, damping, and the
//! per-query max-abs residual all happen while the row is resident in L1.
//! The belief matrix `B̂` is read once and the output written once; every
//! intermediate lives in a few `k·q`-length task-local buffers.
//!
//! ```text
//!   row r:  A(r,·) ──gather(4-lane axpy)──▶ ab = Σ_c A(r,c)·B̂(c,·)
//!           ab ──·Ĥ (per k-block)──▶ out(r,·)
//!           out(r,·) += Ê(r,·)
//!           out(r,·) −= (d_r·B̂(r,·))·Ĥ²     (echo cancellation)
//!           out(r,·) = (1−λ)·out(r,·) + λ·B̂(r,·)   (damping)
//!           Δ_q = max(Δ_q, max|out(r,·) − B̂(r,·)| per k-block)
//! ```
//!
//! **Bitwise contract.** Every sub-step reproduces the accumulation order
//! of the unfused kernels it replaces (`spmm_rows`' gather-axpy order,
//! `matmul_rows`' zero-skipping `·Ĥ` order, element-wise add/sub/damp,
//! order-independent max), so the fused step is *bitwise identical* to
//! the unfused composition — and, since row blocks write disjoint output
//! and the residual reduction is a max, bitwise identical across thread
//! counts. The multi-query layout (`q` side-by-side `k`-column blocks,
//! `Ĥ` applied block-diagonally) makes one kernel serve both the
//! single-query solver (`q = 1`) and the batched path.
//!
//! The L2 tolerance norm is *not* fused: summing per-row-block partials
//! would make the total depend on the partition, i.e. the thread count.
//! L2 callers run the existing fixed-order `l2_diff` pass after the step.

use crate::csr::{CsrMatrix, SCRATCH_WIDTH};
use crate::frontier::{FrontierPlan, FrontierStep, FrontierTask, NodeBitset};
use lsbp_linalg::simd::{axpy4, prefetch_read, GATHER_PREFETCH_DISTANCE};
use lsbp_linalg::{weight_balanced_ranges, Mat, ParallelismConfig};
use std::ops::Range;

/// The per-iteration constants of the LinBP update (Eq. 6/7), borrowed by
/// [`CsrMatrix::linbp_step_fused_with`] (and the sharded backend's
/// implementation of the same operation).
#[derive(Clone, Copy, Debug)]
pub struct FusedLinBpStep<'a> {
    /// Explicit residual beliefs `Ê` (`n × k·q`).
    pub e_hat: &'a Mat,
    /// Scaled residual coupling `Ĥ` (`k × k`), applied per `k`-column
    /// block.
    pub h: &'a Mat,
    /// `Ĥ²` for the echo-cancellation term; `None` runs LinBP\* (Eq. 7).
    pub h2: Option<&'a Mat>,
    /// Squared-weight degrees `d_s = Σ_t w(s,t)²` (ignored without `h2`,
    /// but must still have length `n`).
    pub degrees: &'a [f64],
    /// Update damping `λ ∈ [0, 1)`; 0.0 is the paper's plain update.
    pub damping: f64,
}

/// Validates the shapes of one fused LinBP step against an `n × n`
/// adjacency operator and returns `(k, q)`. Shared by the monolithic
/// [`CsrMatrix::linbp_step_fused_with`] and the sharded backend so both
/// reject malformed inputs with identical messages.
pub(crate) fn validate_fused_step(
    n_rows: usize,
    n_cols: usize,
    b: &Mat,
    step: &FusedLinBpStep<'_>,
    out: &Mat,
    deltas: &[f64],
) -> (usize, usize) {
    let n = n_rows;
    let kt = b.cols();
    let k = step.h.rows();
    assert_eq!(n_cols, n, "fused LinBP step needs a square adjacency");
    assert_eq!(b.rows(), n, "fused LinBP step: B row count");
    assert!(step.h.is_square(), "fused LinBP step: Ĥ must be square");
    assert!(
        k > 0 && kt.is_multiple_of(k),
        "fused LinBP step: B column count {kt} is not a multiple of k = {k}"
    );
    assert_eq!(
        (out.rows(), out.cols()),
        (n, kt),
        "fused LinBP step: out shape"
    );
    assert_eq!(
        (step.e_hat.rows(), step.e_hat.cols()),
        (n, kt),
        "fused LinBP step: Ê shape"
    );
    if let Some(h2) = step.h2 {
        assert_eq!((h2.rows(), h2.cols()), (k, k), "fused LinBP step: Ĥ² shape");
    }
    assert_eq!(step.degrees.len(), n, "fused LinBP step: degrees length");
    let q = kt / k;
    assert_eq!(deltas.len(), q, "fused LinBP step: deltas length");
    (k, q)
}

/// The task-local `k·q` intermediates of the generic fused kernel — the
/// whole point of the fusion is that these stay in L1 instead of being
/// `n × k·q` matrices. For every realistic width they are stack arrays
/// (no per-iteration heap traffic, the design rule `LinBpScratch`
/// established); only `kt > SCRATCH_WIDTH` falls back to one allocation
/// per task. One value serves one row-block task — monolithic row
/// partitions and shard-local tasks build their own, so shards own their
/// scratch by construction.
pub(crate) struct FusedScratch {
    stack: [f64; 2 * SCRATCH_WIDTH],
    heap: Vec<f64>,
    kt: usize,
}

impl FusedScratch {
    pub(crate) fn new(kt: usize) -> Self {
        Self {
            stack: [0.0; 2 * SCRATCH_WIDTH],
            heap: if 2 * kt > 2 * SCRATCH_WIDTH {
                vec![0.0; 2 * kt]
            } else {
                Vec::new()
            },
            kt,
        }
    }

    /// The `(ab, echo)` buffer pair, each `k·q` long.
    pub(crate) fn ab_echo(&mut self) -> (&mut [f64], &mut [f64]) {
        let buf: &mut [f64] = if 2 * self.kt <= self.stack.len() {
            &mut self.stack[..2 * self.kt]
        } else {
            &mut self.heap
        };
        buf.split_at_mut(self.kt)
    }
}

/// Max-merges per-task residual partials into `deltas`. `max` is
/// order-independent, so any partition of the rows (thread tasks, shards,
/// or both) accumulates the exact serial result.
pub(crate) fn merge_delta_partials(deltas: &mut [f64], partials: &[Vec<f64>]) {
    for partial in partials {
        for (d, &p) in deltas.iter_mut().zip(partial) {
            *d = d.max(p);
        }
    }
}

impl CsrMatrix {
    /// Applies one fused LinBP update `out = Ê + A·B·Ĥ [− D·B·Ĥ²]`
    /// (damped) and accumulates the per-query max-abs belief change into
    /// `deltas` — all in a single row-partitioned pass (see the module
    /// docs). `B` holds `q = B.cols() / Ĥ.rows()` queries side by side;
    /// `deltas` must have length `q`.
    ///
    /// # Panics
    /// Panics on any dimension mismatch (square adjacency of size
    /// `B.rows()`, square `Ĥ` dividing `B.cols()`, `out`/`e_hat` shaped
    /// like `B`, `degrees` of length `n`, `deltas` of length `q`).
    pub fn linbp_step_fused_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols(), b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        self.fused_block_with(b, step, 0, out.as_mut_slice(), deltas, k, cfg);
    }

    /// The frontier-aware variant of [`CsrMatrix::linbp_step_fused_with`]:
    /// bitwise-identical `out` and `deltas`, but rows whose inputs did not
    /// change a single bit since the last committed iteration are skipped
    /// (see [`crate::frontier`]), and each computed row's changed bit is
    /// recorded into `fr`. The caller owns the iteration protocol:
    /// [`crate::FrontierState::begin`] before the step,
    /// [`crate::FrontierState::commit`] after the buffers swap.
    ///
    /// # Panics
    /// Panics on the same dimension mismatches as the full step.
    pub fn linbp_step_fused_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols(), b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        self.fused_block_frontier_with(b, step, 0, out.as_mut_slice(), deltas, k, fr, cfg);
    }

    /// The partitioned body of the fused step over *this matrix's* rows,
    /// writing the flat row-major `block` (exactly `n_rows · b.cols()`
    /// slots) and max-accumulating per-query residuals into `deltas`
    /// (NOT zeroed here — the caller owns the across-call accumulation).
    /// `base` is the global-row offset (see
    /// [`CsrMatrix::fused_rows_dispatch`]): 0 for the monolithic path,
    /// the shard's first global row for the sharded backend, which calls
    /// this once per shard as its own persistent-pool region.
    #[allow(clippy::too_many_arguments)] // one slot per fused-step term
    pub(crate) fn fused_block_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
        k: usize,
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        if n == 0 {
            return;
        }
        let parts = cfg.partitions((self.nnz() + n) * kt);
        if parts <= 1 {
            self.fused_rows_dispatch(b, step, 0..n, base, block, deltas, k);
            return;
        }
        let ranges = weight_balanced_ranges(self.row_offsets(), parts);
        let mut partials: Vec<Vec<f64>> = vec![vec![0.0; deltas.len()]; ranges.len()];
        let mut rest: &mut [f64] = block;
        cfg.pool().scope(|s| {
            for (range, partial) in ranges.into_iter().zip(partials.iter_mut()) {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * kt);
                rest = tail;
                s.spawn(move || self.fused_rows_dispatch(b, step, range, base, chunk, partial, k));
            }
        });
        // Combine the per-task residual maxima — order-independent, so
        // this equals the serial accumulation bitwise.
        merge_delta_partials(deltas, &partials);
    }

    /// The frontier-aware variant of [`CsrMatrix::fused_block_with`]:
    /// identical arithmetic in the identical order, but rows whose inputs
    /// are bitwise unchanged since the last iteration are skipped — their
    /// output slots already hold the exact bits a recomputation would
    /// write (the double-buffer invariant, `debug_assert`ed per skip) and
    /// their residual terms are exactly `0.0`, so `block` and `deltas`
    /// come out bitwise identical to the full pass. Whole inactive row
    /// blocks are rejected by the plan's summary test without touching
    /// their nnz. Computed rows' changed bits land in `fr` (parallel
    /// tasks record into task-local bitsets that are OR-merged — bit-OR
    /// is order-independent, so the merged set equals the serial one).
    #[allow(clippy::too_many_arguments)] // one slot per fused-step term
    pub(crate) fn fused_block_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
        k: usize,
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        if n == 0 {
            return;
        }
        let parts = cfg.partitions((self.nnz() + n) * kt);
        if parts <= 1 {
            let mut task = FrontierTask {
                changed: fr.changed,
                bits: &mut *fr.next_changed,
                active_cols: fr.active_cols,
                k,
                rows_active: 0,
                rows_skipped: 0,
            };
            self.fused_rows_frontier(
                b,
                step,
                0..n,
                base,
                block,
                deltas,
                k,
                fr.plan,
                fr.summary,
                &mut task,
            );
            fr.rows_active += task.rows_active;
            fr.rows_skipped += task.rows_skipped;
            return;
        }
        let ranges = weight_balanced_ranges(self.row_offsets(), parts);
        let mut partials: Vec<Vec<f64>> = vec![vec![0.0; deltas.len()]; ranges.len()];
        // Task-local changed bitsets in the *global* row frame, merged
        // with the order-independent OR after the scope (the bitset
        // analogue of `merge_delta_partials`), plus per-task counters.
        let mut bit_partials: Vec<NodeBitset> = (0..ranges.len())
            .map(|_| NodeBitset::new(fr.changed.len()))
            .collect();
        let mut counters: Vec<(u64, u64)> = vec![(0, 0); ranges.len()];
        let (plan, summary, changed, active_cols) =
            (fr.plan, fr.summary, fr.changed, fr.active_cols);
        let mut rest: &mut [f64] = block;
        cfg.pool().scope(|s| {
            for ((range, partial), (bits, counter)) in ranges
                .into_iter()
                .zip(partials.iter_mut())
                .zip(bit_partials.iter_mut().zip(counters.iter_mut()))
            {
                let (chunk, tail) = rest.split_at_mut((range.end - range.start) * kt);
                rest = tail;
                s.spawn(move || {
                    let mut task = FrontierTask {
                        changed,
                        bits,
                        active_cols,
                        k,
                        rows_active: 0,
                        rows_skipped: 0,
                    };
                    self.fused_rows_frontier(
                        b, step, range, base, chunk, partial, k, plan, summary, &mut task,
                    );
                    *counter = (task.rows_active, task.rows_skipped);
                });
            }
        });
        merge_delta_partials(deltas, &partials);
        for bits in &bit_partials {
            fr.next_changed.or_assign(bits);
        }
        for &(active, skipped) in &counters {
            fr.rows_active += active;
            fr.rows_skipped += skipped;
        }
    }

    /// Walks the task's row range in plan-block-aligned subranges: an
    /// inactive block (no dependency on any changed block) is skipped
    /// wholesale — its nnz is never touched — while active blocks run the
    /// per-row frontier refinement. Consecutive active rows are batched
    /// into runs and each run goes through the ordinary
    /// [`CsrMatrix::fused_rows_dispatch`] — the hot kernels carry no
    /// frontier code at all, so a dense frontier pays one bit test per
    /// row and the kernels run at full-recomputation speed. `rows`
    /// indexes this matrix's rows; blocks live in the global frame
    /// (`base + r`), so shard boundaries mid-block simply yield shorter
    /// subranges.
    #[allow(clippy::too_many_arguments)] // one slot per fused-step term
    fn fused_rows_frontier(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        rows: Range<usize>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
        k: usize,
        plan: &FrontierPlan,
        summary: &NodeBitset,
        task: &mut FrontierTask<'_>,
    ) {
        let kt = b.cols();
        let bs = plan.block_rows();
        let mut r = rows.start;
        while r < rows.end {
            let blk = (base + r) / bs;
            let end = rows.end.min((blk + 1) * bs - base);
            if plan.block_active(blk, summary) {
                let mut i = r;
                while i < end {
                    if task.row_active(self, i, base + i) {
                        let run_start = i;
                        i += 1;
                        while i < end && task.row_active(self, i, base + i) {
                            i += 1;
                        }
                        let chunk =
                            &mut block[(run_start - rows.start) * kt..(i - rows.start) * kt];
                        self.fused_rows_dispatch(b, step, run_start..i, base, chunk, deltas, k);
                        for rr in run_start..i {
                            let out_row =
                                &block[(rr - rows.start) * kt..(rr - rows.start) * kt + kt];
                            task.record(base + rr, out_row, b.row(base + rr));
                        }
                        // Row `i` (if any) already tested inactive: the
                        // inner loop above stopped on it.
                        if i < end {
                            task.rows_skipped += 1;
                            #[cfg(debug_assertions)]
                            task.debug_assert_skip_invariant(
                                base + i,
                                &block[(i - rows.start) * kt..(i - rows.start) * kt + kt],
                                b.row(base + i),
                            );
                            i += 1;
                        }
                    } else {
                        task.rows_skipped += 1;
                        #[cfg(debug_assertions)]
                        task.debug_assert_skip_invariant(
                            base + i,
                            &block[(i - rows.start) * kt..(i - rows.start) * kt + kt],
                            b.row(base + i),
                        );
                        i += 1;
                    }
                }
            } else {
                task.rows_skipped += (end - r) as u64;
                #[cfg(debug_assertions)]
                for rr in r..end {
                    task.debug_assert_skip_invariant(
                        base + rr,
                        &block[(rr - rows.start) * kt..(rr - rows.start + 1) * kt],
                        b.row(base + rr),
                    );
                }
            }
            r = end;
        }
    }

    /// Routes a row block to the width-specialized kernel for the paper's
    /// common single-query class counts (`k = q·k' ∈ {2, 3, 4}` columns
    /// total) or the generic multi-query kernel otherwise. Both compute
    /// the identical arithmetic in the identical order — the
    /// specialization only turns the tiny per-row loops into fully
    /// unrolled register code (property-tested bitwise equal).
    ///
    /// `rows` indexes *this matrix's* rows; `base` is the global-row
    /// offset of row 0 into `b`/`Ê`/`degrees`/`deltas`' coordinate frame.
    /// The monolithic path passes `base = 0` (its rows *are* global); the
    /// sharded backend passes each shard's first global row, running the
    /// identical kernel on the shard-local block.
    #[allow(clippy::too_many_arguments)] // one slot per fused-step term
    pub(crate) fn fused_rows_dispatch(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        rows: Range<usize>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
        k: usize,
    ) {
        if b.cols() == k {
            match k {
                2 => return self.fused_rows_k::<2>(b, step, rows, base, block, deltas),
                3 => return self.fused_rows_k::<3>(b, step, rows, base, block, deltas),
                4 => return self.fused_rows_k::<4>(b, step, rows, base, block, deltas),
                _ => {}
            }
        }
        self.fused_rows(b, step, rows, base, block, deltas, k)
    }

    /// Width-specialized single-query fused kernel: every per-row
    /// intermediate is a `[f64; K]` register array and the inner loops
    /// unroll at compile time. Accumulation orders (entry-order gather,
    /// zero-skipping `·Ĥ` apply, `(o + ê) − echo`, damping blend, max
    /// residual) are element-for-element those of [`CsrMatrix::fused_rows`].
    fn fused_rows_k<const K: usize>(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        rows: Range<usize>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
    ) {
        // Ĥ / Ĥ² staged as fixed-size arrays once per task.
        let mut h = [[0.0f64; K]; K];
        let mut h2 = [[0.0f64; K]; K];
        for i in 0..K {
            h[i].copy_from_slice(step.h.row(i));
            if let Some(m) = step.h2 {
                h2[i].copy_from_slice(m.row(i));
            }
        }
        let echo_on = step.h2.is_some();
        let lambda = step.damping;
        let mut dmax = 0.0f64;
        for r in rows.clone() {
            // ab = A(r,·)·B accumulated in CSR entry order per element —
            // the exact `spmm_rows` axpy order, in K registers. The
            // belief rows gathered here are the loop's only unpredictable
            // reads; hint each row a fixed distance ahead (pure cache
            // hint — bitwise identical with or without).
            let mut ab = [0.0f64; K];
            let cols = self.row_cols(r);
            for (p, (&c, &v)) in cols.iter().zip(self.row_values(r)).enumerate() {
                if let Some(&ahead) = cols.get(p + GATHER_PREFETCH_DISTANCE) {
                    prefetch_read(b.as_slice(), ahead as usize * K);
                }
                let b_row = b.row(c as usize);
                for j in 0..K {
                    ab[j] += v * b_row[j];
                }
            }
            // o = ab·Ĥ, zero-skipping in `matmul_rows` order.
            let mut o = [0.0f64; K];
            for (i, &a) in ab.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for j in 0..K {
                    o[j] += a * h[i][j];
                }
            }
            // echo = (d_r·B(r,·))·Ĥ², zero-skipping the scaled entries.
            let b_row = b.row(base + r);
            let mut echo = [0.0f64; K];
            if echo_on {
                let d = step.degrees[base + r];
                for i in 0..K {
                    let a = d * b_row[i];
                    if a == 0.0 {
                        continue;
                    }
                    for j in 0..K {
                        echo[j] += a * h2[i][j];
                    }
                }
            }
            // Combine, damp, write, residual — one unrolled pass. The
            // element order matches the unfused composition exactly:
            // (o + ê) − echo, then the blend, then |new − old|.
            let e_row = step.e_hat.row(base + r);
            let o_out = &mut block[(r - rows.start) * K..(r - rows.start + 1) * K];
            for j in 0..K {
                let mut x = o[j] + e_row[j];
                if echo_on {
                    x -= echo[j];
                }
                if lambda > 0.0 {
                    x = (1.0 - lambda) * x + lambda * b_row[j];
                }
                o_out[j] = x;
                dmax = dmax.max((x - b_row[j]).abs());
            }
        }
        deltas[0] = deltas[0].max(dmax);
    }

    /// The generic multi-query fused kernel over the row block `rows`,
    /// writing into `block` (the flat row-major storage of exactly those
    /// output rows) and max-accumulating per-query residuals into
    /// `deltas`. Shared verbatim by the serial path and every parallel
    /// task.
    #[allow(clippy::too_many_arguments)] // one slot per fused-step term
    fn fused_rows(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        rows: Range<usize>,
        base: usize,
        block: &mut [f64],
        deltas: &mut [f64],
        k: usize,
    ) {
        let kt = b.cols();
        let q = kt / k;
        // Task-local intermediates (see [`FusedScratch`]): stack arrays
        // for every realistic width, one allocation per row-block task
        // beyond SCRATCH_WIDTH.
        let mut scratch = FusedScratch::new(kt);
        let (ab, echo) = scratch.ab_echo();
        for r in rows.clone() {
            let o = &mut block[(r - rows.start) * kt..(r - rows.start + 1) * kt];
            // ab = A(r,·)·B — the exact `spmm_rows` gather-axpy order,
            // with the gathered rows hinted ahead like the K-specialized
            // kernel (pure cache hint, no result change).
            ab.iter_mut().for_each(|x| *x = 0.0);
            let cols = self.row_cols(r);
            for (p, (&c, &v)) in cols.iter().zip(self.row_values(r)).enumerate() {
                if let Some(&ahead) = cols.get(p + GATHER_PREFETCH_DISTANCE) {
                    prefetch_read(b.as_slice(), ahead as usize * kt);
                }
                axpy4(v, b.row(c as usize), ab);
            }
            // o = ab·(I_q ⊗ Ĥ) — the zero-skipping `matmul_rows` order,
            // applied per k-block (columns never mix across queries).
            o.iter_mut().for_each(|x| *x = 0.0);
            for blk in 0..q {
                let a_blk = &ab[blk * k..(blk + 1) * k];
                let o_blk = &mut o[blk * k..(blk + 1) * k];
                for (j, &a) in a_blk.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    axpy4(a, step.h.row(j), o_blk);
                }
            }
            // Echo term: (d_r·B(r,·))·(I_q ⊗ Ĥ²), the scaled entries
            // computed inline (same values and zero skip as the unfused
            // `scaled_rows_into` + block-diagonal matmul composition).
            let b_row = b.row(base + r);
            let echo_on = if let Some(h2) = step.h2 {
                let d = step.degrees[base + r];
                echo.iter_mut().for_each(|x| *x = 0.0);
                for blk in 0..q {
                    let b_blk = &b_row[blk * k..(blk + 1) * k];
                    let e_blk = &mut echo[blk * k..(blk + 1) * k];
                    for (j, &x) in b_blk.iter().enumerate() {
                        let a = d * x;
                        if a == 0.0 {
                            continue;
                        }
                        axpy4(a, h2.row(j), e_blk);
                    }
                }
                true
            } else {
                false
            };
            // Combine `(o + ê) − echo`, damp, and accumulate the
            // per-query residual in one pass — the element order of the
            // unfused add/sub/blend/max passes.
            let e_row = step.e_hat.row(base + r);
            let lambda = step.damping;
            for (blk, slot) in deltas.iter_mut().enumerate() {
                let cols = blk * k..(blk + 1) * k;
                let mut dmax = *slot;
                for j in cols {
                    let mut x = o[j] + e_row[j];
                    if echo_on {
                        x -= echo[j];
                    }
                    if lambda > 0.0 {
                        x = (1.0 - lambda) * x + lambda * b_row[j];
                    }
                    o[j] = x;
                    dmax = dmax.max((x - b_row[j]).abs());
                }
                *slot = dmax;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn toy() -> (CsrMatrix, Mat, Mat, Mat, Vec<f64>) {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_symmetric(0, 1, 1.0);
        coo.push_symmetric(1, 2, 2.0);
        coo.push_symmetric(2, 3, 0.5);
        let adj = coo.to_csr();
        let e = Mat::from_fn(4, 2, |r, c| if r == 0 { [0.1, -0.1][c] } else { 0.0 });
        let h = Mat::from_rows(&[&[0.2, -0.2], &[-0.2, 0.2]]);
        let h2 = h.matmul(&h);
        let degrees = adj.squared_weight_degrees();
        (adj, e, h, h2, degrees)
    }

    /// The fused step equals the unfused composition
    /// `Ê + A·B·Ĥ − D·B·Ĥ²` computed with separate dense ops — bitwise.
    #[test]
    fn fused_matches_unfused_composition_bitwise() {
        let (adj, e, h, h2, degrees) = toy();
        let b = Mat::from_fn(4, 2, |r, c| {
            0.01 * (r as f64 + 1.0) * if c == 0 { 1.0 } else { -0.7 }
        });
        for (use_echo, damping) in [(true, 0.0), (false, 0.0), (true, 0.25)] {
            let cfg = ParallelismConfig::serial();
            // Unfused reference.
            let ab = adj.spmm_with(&b, &cfg);
            let mut reference = ab.matmul_with(&h, &cfg);
            reference.add_assign(&e);
            if use_echo {
                let mut db = Mat::zeros(4, 2);
                b.scaled_rows_into(&degrees, &mut db);
                let tmp = db.matmul_with(&h2, &cfg);
                reference.sub_assign(&tmp);
            }
            if damping > 0.0 {
                for (new, &old) in reference.as_mut_slice().iter_mut().zip(b.as_slice()) {
                    *new = (1.0 - damping) * *new + damping * old;
                }
            }
            let expected_delta = reference.max_abs_diff(&b);

            let mut out = Mat::from_fn(4, 2, |_, _| f64::NAN); // must be overwritten
            let mut deltas = [f64::NAN];
            adj.linbp_step_fused_with(
                &b,
                &FusedLinBpStep {
                    e_hat: &e,
                    h: &h,
                    h2: use_echo.then_some(&h2),
                    degrees: &degrees,
                    damping,
                },
                &mut out,
                &mut deltas,
                &cfg,
            );
            for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "echo={use_echo} damping={damping}"
                );
            }
            assert_eq!(deltas[0].to_bits(), expected_delta.to_bits());
        }
    }

    /// Multi-query stacking: each k-column block equals the single-query
    /// fused step on that block alone, and per-query deltas match.
    #[test]
    fn stacked_queries_match_single_runs() {
        let (adj, e1, h, h2, degrees) = toy();
        let e2 = Mat::from_fn(4, 2, |r, c| if r == 3 { [-0.2, 0.2][c] } else { 0.0 });
        let stack = |a: &Mat, b: &Mat| {
            Mat::from_fn(4, 4, |r, c| if c < 2 { a[(r, c)] } else { b[(r, c - 2)] })
        };
        let e = stack(&e1, &e2);
        let b = stack(
            &Mat::from_fn(4, 2, |r, c| 0.02 * (r + c) as f64 - 0.03),
            &Mat::from_fn(4, 2, |r, c| -0.01 * (r as f64) + 0.005 * c as f64),
        );
        let cfg = ParallelismConfig::serial();
        let step = |e_hat: &Mat, bq: &Mat, out: &mut Mat, deltas: &mut [f64]| {
            adj.linbp_step_fused_with(
                bq,
                &FusedLinBpStep {
                    e_hat,
                    h: &h,
                    h2: Some(&h2),
                    degrees: &degrees,
                    damping: 0.0,
                },
                out,
                deltas,
                &cfg,
            );
        };
        let mut stacked_out = Mat::zeros(4, 4);
        let mut stacked_deltas = [0.0f64; 2];
        step(&e, &b, &mut stacked_out, &mut stacked_deltas);
        for (j, (eq, cols)) in [(&e1, 0..2), (&e2, 2..4)].into_iter().enumerate() {
            let bq = Mat::from_fn(4, 2, |r, c| b[(r, cols.start + c)]);
            let mut single_out = Mat::zeros(4, 2);
            let mut single_delta = [0.0f64];
            step(eq, &bq, &mut single_out, &mut single_delta);
            for r in 0..4 {
                for c in 0..2 {
                    assert_eq!(
                        stacked_out[(r, cols.start + c)].to_bits(),
                        single_out[(r, c)].to_bits(),
                        "query {j}"
                    );
                }
            }
            assert_eq!(stacked_deltas[j].to_bits(), single_delta[0].to_bits());
        }
    }

    #[test]
    fn empty_graph_zeroes_deltas() {
        let adj = CsrMatrix::empty(0, 0);
        let e = Mat::zeros(0, 3);
        let h = Mat::identity(3);
        let mut out = Mat::zeros(0, 3);
        let mut deltas = [f64::NAN];
        adj.linbp_step_fused_with(
            &e.clone(),
            &FusedLinBpStep {
                e_hat: &e,
                h: &h,
                h2: None,
                degrees: &[],
                damping: 0.0,
            },
            &mut out,
            &mut deltas,
            &ParallelismConfig::serial(),
        );
        assert_eq!(deltas[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "deltas length")]
    fn wrong_delta_length_rejected() {
        let (adj, e, h, _, degrees) = toy();
        let b = e.clone();
        let mut out = Mat::zeros(4, 2);
        adj.linbp_step_fused_with(
            &b,
            &FusedLinBpStep {
                e_hat: &e,
                h: &h,
                h2: None,
                degrees: &degrees,
                damping: 0.0,
            },
            &mut out,
            &mut [0.0, 0.0],
            &ParallelismConfig::serial(),
        );
    }
}

//! Row-partitioned graph shards — the scale-out storage layout.
//!
//! [`ShardedCsr`] splits a graph into nnz-balanced, contiguous row-range
//! shards (the partition computed by
//! [`lsbp_linalg::weight_balanced_ranges`], exactly like the kernels'
//! thread partitions). Each shard is an independent, compact
//! (`u32`-indexed) CSR block over its own rows with *global* column
//! indices, so a shard can gather from the full belief matrix without any
//! index translation — and, in a future out-of-core or distributed
//! deployment, can live in its own file, memory arena, or process.
//!
//! Execution model: every kernel walks the shards **in row order**, and
//! each shard runs as **one persistent-pool region** (further
//! row-partitioned inside per the [`ParallelismConfig`]). All workers
//! therefore stream one shard's arrays at a time — shard affinity and
//! cache residency — and the region boundary is exactly where an
//! out-of-core engine would page the next shard in.
//!
//! **Bitwise contract.** Shards are row-aligned and run the *same* row
//! kernels as the monolithic [`CsrMatrix`] (the canonical 4-lane
//! accumulation order per output element); cross-shard reductions are
//! order-independent maxima. Every result is therefore bitwise identical
//! to the monolithic path at any shard × thread combination — re-sharding
//! a live system never changes an answer (property-tested in
//! `tests/sharded_engine.rs`).

use crate::csr::CsrMatrix;
use crate::frontier::{FrontierPlan, FrontierStep};
use crate::fused::{validate_fused_step, FusedLinBpStep};
use crate::operator::{PropagationOperator, RowIter};
use lsbp_linalg::{weight_balanced_ranges, Mat, ParallelismConfig};
use std::ops::Range;

/// A sparse square-or-rectangular matrix stored as nnz-balanced,
/// contiguous row-range shards behind the [`PropagationOperator`]
/// interface — see the module docs for layout, execution model and the
/// bitwise contract.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedCsr {
    n_cols: usize,
    nnz: usize,
    /// Shard row boundaries: shard `i` covers global rows
    /// `starts[i]..starts[i + 1]`; `starts[0] == 0`,
    /// `starts[len - 1] == n_rows`. Non-decreasing (empty shards allowed).
    starts: Vec<usize>,
    /// Per-shard CSR blocks (`starts[i+1] − starts[i]` rows × `n_cols`
    /// columns, global column indices).
    shards: Vec<CsrMatrix>,
}

impl ShardedCsr {
    /// Splits `m` into at most `shards` nnz-balanced row-range shards
    /// (fewer when the graph has fewer non-empty row ranges than
    /// requested — exactly [`weight_balanced_ranges`]' contract).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn from_csr(m: &CsrMatrix, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        let ranges = weight_balanced_ranges(m.row_offsets(), shards);
        Self::from_csr_ranges(m, &ranges)
    }

    /// Splits `m` along an explicit row partition. The ranges must tile
    /// `0..n_rows` in order; empty ranges are allowed (they become empty
    /// shards — a layout a rebalancer can produce transiently).
    ///
    /// # Panics
    /// Panics if the ranges do not tile `0..n_rows` contiguously.
    pub fn from_csr_ranges(m: &CsrMatrix, ranges: &[Range<usize>]) -> Self {
        let mut starts = Vec::with_capacity(ranges.len() + 1);
        starts.push(0usize);
        let mut shards = Vec::with_capacity(ranges.len());
        for range in ranges {
            assert_eq!(
                range.start,
                *starts.last().unwrap(),
                "shard ranges must tile the rows contiguously"
            );
            assert!(range.end >= range.start, "inverted shard range");
            assert!(range.end <= m.n_rows(), "shard range beyond the matrix");
            starts.push(range.end);
            shards.push(Self::extract_block(m, range.clone()));
        }
        assert_eq!(
            *starts.last().unwrap(),
            m.n_rows(),
            "shard ranges must cover every row"
        );
        Self {
            n_cols: m.n_cols(),
            nnz: m.nnz(),
            starts,
            shards,
        }
    }

    /// Carves the CSR block of `rows` out of `m`: local row pointers,
    /// global (unchanged) column indices.
    fn extract_block(m: &CsrMatrix, rows: Range<usize>) -> CsrMatrix {
        let off = m.row_offsets();
        let lo = off[rows.start];
        let hi = off[rows.end];
        let row_ptr: Vec<usize> = off[rows.start..=rows.end].iter().map(|&p| p - lo).collect();
        CsrMatrix::from_trusted_parts(
            rows.end - rows.start,
            m.n_cols(),
            row_ptr,
            m.raw_col_idx()[lo..hi].to_vec(),
            m.raw_values()[lo..hi].to_vec(),
        )
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global row range of shard `i`.
    pub fn shard_rows(&self, i: usize) -> Range<usize> {
        self.starts[i]..self.starts[i + 1]
    }

    /// The CSR block of shard `i` (local rows, global columns).
    pub fn shard(&self, i: usize) -> &CsrMatrix {
        &self.shards[i]
    }

    /// Reassembles the monolithic [`CsrMatrix`] (the inverse of
    /// [`ShardedCsr::from_csr`] — bit-for-bit, since shard extraction
    /// only slices the original arrays).
    pub fn to_csr(&self) -> CsrMatrix {
        let n_rows = self.n_rows();
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for shard in &self.shards {
            let base = *row_ptr.last().unwrap();
            row_ptr.extend(shard.row_offsets()[1..].iter().map(|&p| base + p));
            col_idx.extend_from_slice(shard.raw_col_idx());
            values.extend_from_slice(shard.raw_values());
        }
        CsrMatrix::from_trusted_parts(n_rows, self.n_cols, row_ptr, col_idx, values)
    }

    /// Column indices of row `r` (sorted ascending, global coordinates)
    /// — zero-copy, straight out of the owning shard's arrays.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        let (s, local) = self.locate(r);
        self.shards[s].row_cols(local)
    }

    /// Values of row `r`, parallel to [`ShardedCsr::row_cols`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        let (s, local) = self.locate(r);
        self.shards[s].row_values(local)
    }

    /// The shard holding global row `r` and `r`'s local row index within
    /// it. Empty shards are skipped by construction (`starts` jumps past
    /// them).
    #[inline]
    fn locate(&self, r: usize) -> (usize, usize) {
        debug_assert!(r < self.n_rows(), "row {r} out of range");
        // First boundary strictly past r, minus one — the unique shard
        // with starts[s] <= r < starts[s + 1].
        let s = self.starts.partition_point(|&x| x <= r) - 1;
        (s, r - self.starts[s])
    }
}

impl PropagationOperator for ShardedCsr {
    #[inline]
    fn n_rows(&self) -> usize {
        *self.starts.last().unwrap()
    }

    #[inline]
    fn n_cols(&self) -> usize {
        self.n_cols
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.nnz
    }

    #[inline]
    fn row_nnz(&self, r: usize) -> usize {
        let (s, local) = self.locate(r);
        self.shards[s].row_nnz(local)
    }

    #[inline]
    fn row_iter(&self, r: usize) -> RowIter<'_> {
        RowIter::borrowed(self.row_cols(r), self.row_values(r))
    }

    /// `y = A·x`, one persistent-pool region per shard in row order; each
    /// shard's rows run the monolithic SpMV kernel on its own block.
    fn spmv_into_with(&self, x: &[f64], y: &mut [f64], cfg: &ParallelismConfig) {
        assert_eq!(x.len(), self.n_cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.n_rows(), "spmv output dimension mismatch");
        for (i, shard) in self.shards.iter().enumerate() {
            let rows = self.shard_rows(i);
            shard.spmv_into_with(x, &mut y[rows], cfg);
        }
    }

    /// `out = A·B`, one persistent-pool region per shard in row order;
    /// each shard streams its block through the monolithic SpMM row
    /// kernels (width-specialized like the reference path).
    fn spmm_into_with(&self, b: &Mat, out: &mut Mat, cfg: &ParallelismConfig) {
        assert_eq!(b.rows(), self.n_cols, "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows(), "spmm output rows");
        assert_eq!(out.cols(), b.cols(), "spmm output cols");
        let kt = b.cols();
        let flat = out.as_mut_slice();
        for (i, shard) in self.shards.iter().enumerate() {
            let rows = self.shard_rows(i);
            shard.spmm_block_with(b, &mut flat[rows.start * kt..rows.end * kt], cfg);
        }
    }

    /// The fused LinBP step, one persistent-pool region per shard in row
    /// order. Each shard gathers from the full belief matrix (global
    /// column indices) but reads `Ê`/`B`/`degrees` rows at its own
    /// global offset; per-query residual maxima accumulate across shards
    /// with the order-independent `max`, so the result equals the
    /// monolithic step bitwise.
    fn linbp_step_fused_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols, b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        let flat = out.as_mut_slice();
        for (i, shard) in self.shards.iter().enumerate() {
            let rows = self.shard_rows(i);
            shard.fused_block_with(
                b,
                step,
                rows.start,
                &mut flat[rows.start * kt..rows.end * kt],
                deltas,
                k,
                cfg,
            );
        }
    }

    fn frontier_plan(&self) -> FrontierPlan {
        let n = self.n_rows();
        let mut plan = FrontierPlan::empty(n, FrontierPlan::block_rows_for(n));
        for (i, shard) in self.shards.iter().enumerate() {
            let rows = self.shard_rows(i);
            for local in 0..shard.n_rows() {
                // Shard columns are global, so rows fold in unchanged.
                plan.add_row(rows.start + local, shard.row_cols(local));
            }
        }
        plan
    }

    /// The frontier-aware fused step: shard-granular skipping first — a
    /// shard whose overlapping plan blocks are all inactive is passed
    /// over without touching its arrays at all — then the per-shard
    /// kernel applies block- and row-granular skipping inside. Bitwise
    /// identical to [`ShardedCsr::linbp_step_fused_with`] (and hence to
    /// the monolithic step) at any shard × thread combination.
    fn linbp_step_fused_frontier_with(
        &self,
        b: &Mat,
        step: &FusedLinBpStep<'_>,
        out: &mut Mat,
        deltas: &mut [f64],
        fr: &mut FrontierStep<'_>,
        cfg: &ParallelismConfig,
    ) {
        let n = self.n_rows();
        let kt = b.cols();
        let (k, _q) = validate_fused_step(n, self.n_cols, b, step, out, deltas);
        deltas.iter_mut().for_each(|d| *d = 0.0);
        if n == 0 || kt == 0 {
            return;
        }
        let flat = out.as_mut_slice();
        for (i, shard) in self.shards.iter().enumerate() {
            let rows = self.shard_rows(i);
            if fr.plan.range_inactive(rows.clone(), fr.summary) {
                fr.rows_skipped += (rows.end - rows.start) as u64;
                continue;
            }
            shard.fused_block_frontier_with(
                b,
                step,
                rows.start,
                &mut flat[rows.start * kt..rows.end * kt],
                deltas,
                k,
                fr,
                cfg,
            );
        }
    }

    fn transpose_with(&self, cfg: &ParallelismConfig) -> CsrMatrix {
        self.to_csr().transpose_with(cfg)
    }

    fn row_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rows());
        for shard in &self.shards {
            out.extend(shard.row_sums());
        }
        out
    }

    fn squared_weight_degrees(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rows());
        for shard in &self.shards {
            out.extend(shard.squared_weight_degrees());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// A small weighted graph with hubs, leaves and an isolated row.
    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(7, 7);
        coo.push_symmetric(0, 1, 2.0);
        coo.push_symmetric(0, 2, 1.0);
        coo.push_symmetric(0, 3, 0.5);
        coo.push_symmetric(1, 4, 3.0);
        coo.push_symmetric(2, 4, 1.5);
        coo.push_symmetric(4, 5, 0.25);
        // Node 6 is isolated.
        coo.to_csr()
    }

    #[test]
    fn roundtrip_is_exact() {
        let m = sample();
        for shards in [1usize, 2, 3, 7, 20] {
            let sh = ShardedCsr::from_csr(&m, shards);
            assert_eq!(sh.to_csr(), m, "{shards} shards");
            assert_eq!(sh.nnz(), m.nnz());
            assert_eq!(sh.n_rows(), m.n_rows());
            assert_eq!(sh.n_cols(), m.n_cols());
        }
    }

    #[test]
    fn row_access_matches_monolithic() {
        let m = sample();
        let sh = ShardedCsr::from_csr(&m, 3);
        for r in 0..m.n_rows() {
            assert_eq!(sh.row_nnz(r), m.row_nnz(r), "row {r}");
            assert_eq!(sh.row_cols(r), m.row_cols(r), "row {r}");
            assert_eq!(sh.row_values(r), m.row_values(r), "row {r}");
            assert_eq!(
                sh.row_iter(r).collect::<Vec<_>>(),
                m.row_iter(r).collect::<Vec<_>>(),
                "row {r}"
            );
        }
    }

    #[test]
    fn empty_and_single_row_shards() {
        let m = sample();
        // Empty shard in the middle, single-row shards at both ends.
        let ranges = [0..1, 1..1, 1..2, 2..6, 6..7];
        let sh = ShardedCsr::from_csr_ranges(&m, &ranges);
        assert_eq!(sh.num_shards(), 5);
        assert_eq!(sh.shard(1).n_rows(), 0);
        assert_eq!(sh.to_csr(), m);
        // Row lookups skip the empty shard.
        assert_eq!(sh.row_cols(1), m.row_cols(1));
        let cfg = ParallelismConfig::serial();
        let x: Vec<f64> = (0..7).map(|i| i as f64 * 0.3 - 1.0).collect();
        let mut y_mono = vec![0.0; 7];
        let mut y_shard = vec![0.0; 7];
        m.spmv_into_with(&x, &mut y_mono, &cfg);
        sh.spmv_into_with(&x, &mut y_shard, &cfg);
        assert_eq!(y_mono, y_shard);
    }

    #[test]
    fn empty_matrix_shards() {
        let m = CsrMatrix::empty(0, 0);
        let sh = ShardedCsr::from_csr(&m, 4);
        assert_eq!(sh.n_rows(), 0);
        assert_eq!(sh.to_csr(), m);
    }

    #[test]
    fn kernels_match_monolithic_bitwise() {
        let m = sample();
        let n = m.n_rows();
        let b = Mat::from_fn(n, 3, |r, c| ((r * 3 + c) % 11) as f64 * 0.07 - 0.3);
        for shards in [1usize, 2, 4, 7] {
            let sh = ShardedCsr::from_csr(&m, shards);
            for cfg in [
                ParallelismConfig::serial(),
                ParallelismConfig::with_threads(4).with_min_work(1),
            ] {
                let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.2 - 0.4).collect();
                let mut y_mono = vec![0.0; n];
                let mut y_shard = vec![0.0; n];
                m.spmv_into_with(&x, &mut y_mono, &cfg);
                sh.spmv_into_with(&x, &mut y_shard, &cfg);
                let same = y_mono
                    .iter()
                    .zip(&y_shard)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "spmv, {shards} shards");

                let mut o_mono = Mat::zeros(n, 3);
                let mut o_shard = Mat::zeros(n, 3);
                m.spmm_into_with(&b, &mut o_mono, &cfg);
                sh.spmm_into_with(&b, &mut o_shard, &cfg);
                let same = o_mono
                    .as_slice()
                    .iter()
                    .zip(o_shard.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "spmm, {shards} shards");

                assert_eq!(sh.transpose_with(&cfg), m.transpose_with(&cfg));
            }
            assert_eq!(sh.row_sums(), m.row_sums(), "{shards} shards");
            assert_eq!(
                sh.squared_weight_degrees(),
                m.squared_weight_degrees(),
                "{shards} shards"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tile the rows contiguously")]
    fn gapped_ranges_rejected() {
        let m = sample();
        let _ = ShardedCsr::from_csr_ranges(&m, &[0..2, 3..7]);
    }

    #[test]
    #[should_panic(expected = "cover every row")]
    fn short_ranges_rejected() {
        let m = sample();
        let _ = ShardedCsr::from_csr_ranges(&m, &[0..2, 2..6]);
    }
}

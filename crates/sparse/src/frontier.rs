//! Active-frontier execution for the fused LinBP path — bitwise-exact
//! iteration skipping.
//!
//! LinBP solves converge non-uniformly: after a few iterations most of
//! the graph has *frozen* — a row's inputs are bitwise unchanged from the
//! previous iteration, so the fused step would recompute exactly the
//! value it already holds. Skipping such rows is a pure-function
//! identity, which makes it a rare perf lever that preserves the
//! workspace's bitwise-determinism invariant *exactly*.
//!
//! The machinery:
//!
//! * a **changed-node bitset** ([`NodeBitset`]) — bit `r` set iff row
//!   `r`'s belief block changed a single bit in the last committed
//!   iteration (computed for free inside the fused residual pass);
//! * the **dependency rule** — row `r` must be recomputed iff `r` itself
//!   changed (the residual `|new − old|`, the echo term and the damping
//!   blend all read the own row) or any column in `r`'s adjacency row
//!   changed (the gather reads those belief rows);
//! * a **block-granular plan** ([`FrontierPlan`]) — rows grouped into
//!   [`FrontierPlan::block_rows`]-sized blocks, each with a precomputed
//!   bitset of the row-blocks it depends on, so a per-iteration *summary*
//!   bitset (bit `i` = any changed row in block `i`) lets whole blocks —
//!   and whole shards, and for [`crate::PagedCsr`] whole on-disk pages —
//!   be skipped without touching their nnz at all.
//!
//! **Why skipping is bitwise-exact.** The solver iterates on a double
//! buffer, so a skipped row's output slot still holds that row's value
//! from two iterations ago. The invariant making that correct: *if row
//! `r`'s changed bit is clear, both buffers hold bit-identical values for
//! row `r`* (on every column block still being solved). By induction: the
//! first iteration computes every row, and a computed row only gets a
//! clear bit when its new bits equal its old bits — at which point the
//! buffers agree — while a skipped row touches neither buffer. A skipped
//! row therefore needs no copy-forward at all, contributes exactly-0
//! terms to every residual norm (max or fixed-order L2), and recomputing
//! it would reproduce its bits verbatim (same pure function, bitwise
//! identical inputs). Outputs, iteration counts and convergence points
//! are bitwise identical to full recomputation at any frontier × shard ×
//! thread × budget combination (property-tested in `tests/frontier.rs`,
//! asserted in-process by `perf_baseline`, and `debug_assert`ed on every
//! skipped row).

use crate::csr::CsrMatrix;

/// A fixed-length bitset over node (row) or block indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitset {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitset {
    /// An all-zero bitset over `len` indices.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the bitset covers zero indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets every bit (trailing padding bits in the last word stay
    /// clear, so `count_ones` and word-level scans remain exact).
    pub fn fill(&mut self) {
        self.words.iter_mut().for_each(|w| *w = !0);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = !0 >> (64 - tail);
            }
        }
    }

    /// `self |= other` (lengths must match) — the order-independent merge
    /// the parallel tasks' partial changed-bitsets combine with.
    pub fn or_assign(&mut self, other: &NodeBitset) {
        debug_assert_eq!(self.len, other.len, "bitset length mismatch");
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff `self ∩ other ≠ ∅` (lengths must match).
    #[inline]
    pub fn intersects(&self, other: &NodeBitset) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// The backing words (64 indices per word, LSB first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The static dependency plan of one graph: rows grouped into
/// `block_rows`-sized blocks, each block carrying the bitset of row
/// blocks any of its rows gathers from (its own block always included —
/// the residual/echo/damping terms read the own row). Built once per
/// solve in `O(nnz)`; per-iteration block tests are a couple of word
/// ANDs against the summary bitset.
#[derive(Clone, Debug)]
pub struct FrontierPlan {
    n_rows: usize,
    /// Rows per block — always a multiple of 64 so every word of a
    /// row-bitset maps to exactly one block.
    block_rows: usize,
    /// Per block: the set of blocks it depends on.
    deps: Vec<NodeBitset>,
}

impl FrontierPlan {
    /// The block size used for an `n`-row graph: a power of two between
    /// 64 and 4096, aiming for a few hundred blocks so block tests stay
    /// a handful of words while shard-granular skips remain possible on
    /// small graphs.
    pub fn block_rows_for(n: usize) -> usize {
        (n / 256).next_power_of_two().clamp(64, 4096)
    }

    /// An empty plan (no dependencies recorded yet) for an `n`-row graph.
    pub fn empty(n_rows: usize, block_rows: usize) -> Self {
        assert!(
            block_rows >= 64 && block_rows.is_multiple_of(64),
            "block_rows must be a positive multiple of 64"
        );
        let n_blocks = n_rows.div_ceil(block_rows);
        let mut deps = vec![NodeBitset::new(n_blocks); n_blocks];
        // Every row reads its own row (residual, echo, damping), so a
        // block always depends on itself — recorded up front rather than
        // left to the builder.
        for (blk, dep) in deps.iter_mut().enumerate() {
            dep.set(blk);
        }
        Self {
            n_rows,
            block_rows,
            deps,
        }
    }

    /// Folds one adjacency row into the plan: row `r` (global) depends on
    /// its own block and on the block of every column it gathers from.
    #[inline]
    pub fn add_row(&mut self, r: usize, cols: &[u32]) {
        let blk = r / self.block_rows;
        self.deps[blk].set(blk);
        for &c in cols {
            self.deps[blk].set(c as usize / self.block_rows);
        }
    }

    /// Records that block `blk` depends on block `dep` — the per-edge
    /// primitive behind [`FrontierPlan::add_row`] for builders that walk
    /// rows through an iterator instead of a column slice.
    #[inline]
    pub fn set_dep(&mut self, blk: usize, dep: usize) {
        self.deps[blk].set(dep);
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of row blocks.
    pub fn n_blocks(&self) -> usize {
        self.deps.len()
    }

    /// The block holding row `r`.
    #[inline]
    pub fn block_of(&self, r: usize) -> usize {
        r / self.block_rows
    }

    /// Whether any row of block `blk` may need recomputation, given the
    /// summary bitset of the last committed iteration (bit `i` = block
    /// `i` contains a changed row): the block is active iff it depends on
    /// any changed block.
    #[inline]
    pub fn block_active(&self, blk: usize, summary: &NodeBitset) -> bool {
        self.deps[blk].intersects(summary)
    }

    /// Whether every block overlapping the global row range `rows` is
    /// inactive — the shard-granular skip test ([`crate::ShardedCsr`]
    /// skips the shard's kernel region entirely; [`crate::PagedCsr`]
    /// additionally never faults the shard back in).
    pub fn range_inactive(&self, rows: std::ops::Range<usize>, summary: &NodeBitset) -> bool {
        if rows.is_empty() {
            return true;
        }
        let first = rows.start / self.block_rows;
        let last = (rows.end - 1) / self.block_rows;
        (first..=last).all(|blk| !self.block_active(blk, summary))
    }
}

/// Per-solve frontier state owned by a solver op: the plan, the committed
/// changed/summary bitsets of the last iteration, the scratch bitset the
/// next iteration's changed bits accumulate into, and the cumulative
/// skip/active row counters surfaced through `Health`/`Stats`.
#[derive(Clone, Debug)]
pub struct FrontierState {
    plan: FrontierPlan,
    changed: NodeBitset,
    summary: NodeBitset,
    scratch: NodeBitset,
    /// Total row recomputations across committed iterations.
    pub rows_active: u64,
    /// Total rows skipped (inputs bitwise unchanged) across committed
    /// iterations.
    pub rows_skipped: u64,
}

impl FrontierState {
    /// Fresh state for one solve: everything marked changed, so the first
    /// iteration computes every row (establishing the double-buffer
    /// invariant), after which real change bits take over.
    pub fn new(plan: FrontierPlan) -> Self {
        let n = plan.n_rows();
        let mut changed = NodeBitset::new(n);
        changed.fill();
        let mut summary = NodeBitset::new(plan.n_blocks());
        summary.fill();
        let scratch = NodeBitset::new(n);
        Self {
            plan,
            changed,
            summary,
            scratch,
            rows_active: 0,
            rows_skipped: 0,
        }
    }

    /// The dependency plan.
    pub fn plan(&self) -> &FrontierPlan {
        &self.plan
    }

    /// Rows changed by the last committed iteration.
    pub fn changed(&self) -> &NodeBitset {
        &self.changed
    }

    /// Begins one iteration: clears the scratch bitset and hands out the
    /// borrowed per-step context the frontier-aware fused step fills in.
    /// `active_cols` masks which `k`-column query blocks participate in
    /// change detection (`None` = all) — the batched solver passes its
    /// not-frozen mask, which is exact because the update is
    /// block-diagonal per query and the frozen set only grows.
    pub fn begin<'a>(&'a mut self, active_cols: Option<&'a [bool]>) -> FrontierStep<'a> {
        self.scratch.clear();
        FrontierStep {
            plan: &self.plan,
            changed: &self.changed,
            summary: &self.summary,
            next_changed: &mut self.scratch,
            active_cols,
            rows_active: 0,
            rows_skipped: 0,
        }
    }

    /// Commits one iteration: the scratch bits become the committed
    /// changed set, the block summary is rebuilt (`O(n/64)`), and the
    /// step's counters fold into the totals. `rows_active`/`rows_skipped`
    /// are the counters read out of the consumed [`FrontierStep`].
    pub fn commit(&mut self, rows_active: u64, rows_skipped: u64) {
        std::mem::swap(&mut self.changed, &mut self.scratch);
        self.summary.clear();
        let block_words = self.plan.block_rows() / 64;
        for (w, &word) in self.changed.words().iter().enumerate() {
            if word != 0 {
                self.summary.set(w / block_words);
            }
        }
        self.rows_active += rows_active;
        self.rows_skipped += rows_skipped;
    }
}

/// The borrowed per-iteration context a frontier-aware fused step runs
/// against: the last iteration's change information (inputs), the bitset
/// this iteration's changed rows accumulate into, the query-block mask,
/// and the step's row counters. Produced by [`FrontierState::begin`];
/// read the counters back and [`FrontierState::commit`] after the step.
pub struct FrontierStep<'a> {
    /// Static block-dependency plan.
    pub plan: &'a FrontierPlan,
    /// Rows changed by the last committed iteration (global indices).
    pub changed: &'a NodeBitset,
    /// Block summary of `changed` (bit `i` = block `i` has a changed row).
    pub summary: &'a NodeBitset,
    /// Output: rows whose active column blocks changed this iteration.
    /// Cleared by [`FrontierState::begin`]; parallel tasks merge partial
    /// bitsets into it with the order-independent OR.
    pub next_changed: &'a mut NodeBitset,
    /// Which `k`-column query blocks participate in change detection
    /// (`None` = all — the single-query path).
    pub active_cols: Option<&'a [bool]>,
    /// Rows recomputed by this step.
    pub rows_active: u64,
    /// Rows skipped by this step.
    pub rows_skipped: u64,
}

/// The per-task slice of frontier work handed into the row kernels: the
/// read-only change information plus a (possibly partial, task-local)
/// changed-bit accumulator and counters. Serial callers point `bits` at
/// the shared `next_changed`; parallel tasks use task-local bitsets that
/// are OR-merged afterwards (bit-OR is order-independent, so the merged
/// set equals the serial one exactly).
pub(crate) struct FrontierTask<'a> {
    pub changed: &'a NodeBitset,
    pub bits: &'a mut NodeBitset,
    pub active_cols: Option<&'a [bool]>,
    pub k: usize,
    pub rows_active: u64,
    pub rows_skipped: u64,
}

impl FrontierTask<'_> {
    /// The dependency rule for one row: recompute iff the row itself
    /// changed or any of its in-row column dependencies changed (early
    /// exit on the first hit).
    #[inline]
    pub fn row_active(&self, m: &CsrMatrix, local_row: usize, global_row: usize) -> bool {
        self.changed.get(global_row)
            || m.row_cols(local_row)
                .iter()
                .any(|&c| self.changed.get(c as usize))
    }

    /// Records a computed row's changed bit: set iff any *active* column
    /// block's bits differ between the new and old row.
    #[inline]
    pub fn record(&mut self, global_row: usize, new_row: &[f64], old_row: &[f64]) {
        self.rows_active += 1;
        if self.blocks_differ(new_row, old_row) {
            self.bits.set(global_row);
        }
    }

    /// Bitwise row comparison restricted to active query blocks.
    #[inline]
    fn blocks_differ(&self, new_row: &[f64], old_row: &[f64]) -> bool {
        debug_assert_eq!(new_row.len(), old_row.len());
        match self.active_cols {
            None => new_row
                .iter()
                .zip(old_row)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            Some(mask) => mask.iter().enumerate().any(|(blk, &on)| {
                on && new_row[blk * self.k..(blk + 1) * self.k]
                    .iter()
                    .zip(&old_row[blk * self.k..(blk + 1) * self.k])
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            }),
        }
    }

    /// Debug-only check of the skip invariant: a skipped row's output
    /// slot (holding the value from two iterations ago, via the double
    /// buffer) must be bit-identical to its current value on every active
    /// column block — i.e. skipping really does leave the exact bits a
    /// recomputation would have produced.
    #[inline]
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub fn debug_assert_skip_invariant(&self, global_row: usize, out_row: &[f64], b_row: &[f64]) {
        debug_assert!(
            !self.blocks_differ(out_row, b_row),
            "frontier skip invariant violated at row {global_row}: \
             output buffer differs from current beliefs on an active block"
        );
        let _ = (global_row, out_row, b_row);
    }
}

/// Reference changed-bit computation over a full output: compares every
/// row (active column blocks only) and sets bits for rows that changed.
/// This is the semantics any skipping implementation must reproduce —
/// used by the default (non-skipping) trait implementation and as the
/// test oracle.
pub fn record_changed_full(
    fr: &mut FrontierStep<'_>,
    b: &lsbp_linalg::Mat,
    out: &lsbp_linalg::Mat,
    k: usize,
) {
    let n = b.rows();
    for r in 0..n {
        let (new_row, old_row) = (out.row(r), b.row(r));
        let differs = match fr.active_cols {
            None => new_row
                .iter()
                .zip(old_row)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            Some(mask) => mask.iter().enumerate().any(|(blk, &on)| {
                on && new_row[blk * k..(blk + 1) * k]
                    .iter()
                    .zip(&old_row[blk * k..(blk + 1) * k])
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            }),
        };
        if differs {
            fr.next_changed.set(r);
        }
    }
    fr.rows_active += n as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn bitset_basics() {
        let mut b = NodeBitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        let mut o = NodeBitset::new(130);
        o.set(1);
        assert!(!o.intersects(&NodeBitset::new(130)));
        o.or_assign(&b);
        assert_eq!(o.count_ones(), 5);
        assert!(o.intersects(&b));
        o.clear();
        assert_eq!(o.count_ones(), 0);
        o.fill();
        assert!(o.get(129) && o.get(0));
        assert!(NodeBitset::new(0).is_empty());
    }

    #[test]
    fn block_rows_heuristic_bounds() {
        for n in [0usize, 1, 63, 64, 512, 5_000, 1 << 20, 1 << 24] {
            let bs = FrontierPlan::block_rows_for(n);
            assert!(
                (64..=4096).contains(&bs) && bs.is_multiple_of(64),
                "n={n}: {bs}"
            );
        }
        assert_eq!(FrontierPlan::block_rows_for(512), 64);
        assert_eq!(FrontierPlan::block_rows_for(1 << 22), 4096);
    }

    #[test]
    fn plan_dependencies_and_block_tests() {
        // 3 blocks of 64 rows; row 0 gathers from rows 70 and 130, row
        // 100 only from row 1.
        let mut plan = FrontierPlan::empty(192, 64);
        assert_eq!(plan.n_blocks(), 3);
        plan.add_row(0, &[70, 130]);
        plan.add_row(100, &[1]);
        let mut summary = NodeBitset::new(3);
        // Nothing changed: every block is inactive.
        for blk in 0..3 {
            assert!(!plan.block_active(blk, &summary));
        }
        assert!(plan.range_inactive(0..192, &summary));
        // A change in block 2 activates block 0 (row 0 depends on it)
        // but not block 1 (row 100 depends only on block 0).
        summary.set(2);
        assert!(plan.block_active(0, &summary));
        assert!(!plan.block_active(1, &summary));
        assert!(plan.block_active(2, &summary)); // self-dependency
        assert!(!plan.range_inactive(0..64, &summary));
        assert!(plan.range_inactive(64..128, &summary));
        assert!(plan.range_inactive(64..64, &summary), "empty range");
    }

    #[test]
    fn state_lifecycle_first_iteration_all_active() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_symmetric(0, 1, 1.0);
        let m = coo.to_csr();
        let plan = {
            use crate::operator::PropagationOperator;
            PropagationOperator::frontier_plan(&m)
        };
        let mut st = FrontierState::new(plan);
        // Fresh state: everything marked changed.
        assert_eq!(st.changed().count_ones(), 4);
        {
            let step = st.begin(None);
            // Simulate: only row 2 changed this iteration.
            step.next_changed.set(2);
        }
        st.commit(4, 0);
        assert_eq!(st.changed().count_ones(), 1);
        assert!(st.changed().get(2));
        assert_eq!(st.rows_active, 4);
        // Summary reflects the block holding row 2.
        let step = st.begin(None);
        assert!(step.plan.block_active(0, step.summary));
        let _ = step;
        st.commit(0, 4);
        // Nothing changed: summary empty, every range inactive.
        let step = st.begin(None);
        assert!(step.plan.range_inactive(0..4, step.summary));
        assert_eq!(st.rows_skipped, 4);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_block_rows_rejected() {
        let _ = FrontierPlan::empty(100, 100);
    }
}
